//! The ledger differ: find the first diverging interval and component.

use crate::ledger::RunLedger;
use std::fmt;

/// What the differ found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Every shared field matched and both ledgers have the same length.
    Identical,
    /// The ledgers disagree structurally (different component or counter
    /// name sets) — interval comparison is meaningless.
    Structural(String),
    /// The first interval at which any component's chained hash (or any
    /// counter) disagrees.
    FirstDivergence {
        /// Zero-based interval index.
        interval: u64,
        /// Simulation nanos at the end of that interval (left ledger).
        at_nanos: u64,
        /// The first diverging component label (or `counter:<name>`).
        component: String,
        /// Left ledger's chained hash (or counter value).
        left: u64,
        /// Right ledger's chained hash (or counter value).
        right: u64,
        /// Human-readable counter deltas at the diverging interval.
        counter_deltas: Vec<String>,
    },
    /// All shared intervals match but one ledger has more of them.
    Truncated {
        /// Interval count of the left ledger.
        left_intervals: u64,
        /// Interval count of the right ledger.
        right_intervals: u64,
    },
}

/// A full diff result: non-fatal header notes plus the finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Header-field mismatches (seed, fingerprint, versions). These are
    /// notes, not findings: a perturbed-seed pair *should* still get its
    /// first diverging interval named.
    pub header_notes: Vec<String>,
    /// The finding.
    pub finding: Divergence,
}

impl DivergenceReport {
    /// True if the ledgers were identical (header notes may still be
    /// present, e.g. differing worker counts, which are informational).
    #[must_use]
    pub fn is_identical(&self) -> bool {
        matches!(self.finding, Divergence::Identical)
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for note in &self.header_notes {
            writeln!(f, "note: {note}")?;
        }
        match &self.finding {
            Divergence::Identical => writeln!(f, "ledgers identical"),
            Divergence::Structural(why) => writeln!(f, "structural divergence: {why}"),
            Divergence::FirstDivergence {
                interval,
                at_nanos,
                component,
                left,
                right,
                counter_deltas,
            } => {
                writeln!(
                    f,
                    "first divergence: interval {interval} (t={:.3}s), component {component}",
                    *at_nanos as f64 / 1e9
                )?;
                writeln!(f, "  left  {left:016x}")?;
                writeln!(f, "  right {right:016x}")?;
                for delta in counter_deltas {
                    writeln!(f, "  counter {delta}")?;
                }
                Ok(())
            }
            Divergence::Truncated {
                left_intervals,
                right_intervals,
            } => writeln!(
                f,
                "truncated: shared intervals identical, but left has {left_intervals} \
                 intervals and right has {right_intervals}"
            ),
        }
    }
}

/// Compares two ledgers and reports the first diverging interval and
/// component.
///
/// Header mismatches (seed, spec fingerprint, versions) are reported as
/// notes and never abort the interval walk — a deliberately perturbed
/// pair is exactly the case where naming the first diverging interval
/// matters most. The `workers` field is informational and not compared:
/// `MAFIC_JOBS=1` and `MAFIC_JOBS=4` runs of the same spec must diff
/// clean.
#[must_use]
pub fn diff_ledgers(left: &RunLedger, right: &RunLedger) -> DivergenceReport {
    let mut notes = Vec::new();
    if left.header.ledger_version != right.header.ledger_version {
        notes.push(format!(
            "ledger versions differ: {} vs {}",
            left.header.ledger_version, right.header.ledger_version
        ));
    }
    if left.header.crate_version != right.header.crate_version {
        notes.push(format!(
            "crate versions differ: {} vs {}",
            left.header.crate_version, right.header.crate_version
        ));
    }
    if left.header.seed != right.header.seed {
        notes.push(format!(
            "seeds differ: {} vs {}",
            left.header.seed, right.header.seed
        ));
    }
    if left.header.spec_fingerprint != right.header.spec_fingerprint {
        notes.push(format!(
            "spec fingerprints differ: {:016x} vs {:016x}",
            left.header.spec_fingerprint, right.header.spec_fingerprint
        ));
    }

    if left.components != right.components {
        return DivergenceReport {
            header_notes: notes,
            finding: Divergence::Structural(format!(
                "component sets differ: {:?} vs {:?}",
                left.components, right.components
            )),
        };
    }
    if left.counters != right.counters {
        return DivergenceReport {
            header_notes: notes,
            finding: Divergence::Structural(format!(
                "counter sets differ: {:?} vs {:?}",
                left.counters, right.counters
            )),
        };
    }

    for (l, r) in left.intervals.iter().zip(&right.intervals) {
        let mut first: Option<(String, u64, u64)> = None;
        if l.at_nanos != r.at_nanos {
            first = Some(("interval-clock".to_string(), l.at_nanos, r.at_nanos));
        }
        if first.is_none() {
            for (i, (lh, rh)) in l.hashes.iter().zip(&r.hashes).enumerate() {
                if lh != rh {
                    first = Some((left.components[i].clone(), *lh, *rh));
                    break;
                }
            }
        }
        if first.is_none() {
            for (i, (lc, rc)) in l.counters.iter().zip(&r.counters).enumerate() {
                if lc != rc {
                    first = Some((format!("counter:{}", left.counters[i]), *lc, *rc));
                    break;
                }
            }
        }
        if let Some((component, lv, rv)) = first {
            let counter_deltas = left
                .counters
                .iter()
                .zip(l.counters.iter().zip(&r.counters))
                .filter(|(_, (lc, rc))| lc != rc)
                .map(|(name, (lc, rc))| format!("{name}: {lc} vs {rc}"))
                .collect();
            return DivergenceReport {
                header_notes: notes,
                finding: Divergence::FirstDivergence {
                    interval: l.index,
                    at_nanos: l.at_nanos,
                    component,
                    left: lv,
                    right: rv,
                    counter_deltas,
                },
            };
        }
    }

    if left.intervals.len() != right.intervals.len() {
        return DivergenceReport {
            header_notes: notes,
            finding: Divergence::Truncated {
                left_intervals: left.intervals.len() as u64,
                right_intervals: right.intervals.len() as u64,
            },
        };
    }

    DivergenceReport {
        header_notes: notes,
        finding: Divergence::Identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{IntervalProbe, LedgerBuilder, LedgerHeader};

    fn build(seed: u64, per_interval: &[&[(&str, u64)]], counters: &[&[(&str, u64)]]) -> RunLedger {
        let mut b = LedgerBuilder::new(LedgerHeader {
            ledger_version: 0,
            crate_version: "0.1.0".into(),
            seed,
            spec_fingerprint: 0xfeed,
            workers: 0,
        });
        for (i, comps) in per_interval.iter().enumerate() {
            let mut p = IntervalProbe::new();
            for &(name, v) in comps.iter() {
                p.component(name, |h| h.write_u64(v));
            }
            for &(name, v) in counters[i].iter() {
                p.counter(name, v);
            }
            b.record_interval((i as u64 + 1) * 100_000_000, &p);
        }
        b.finish(Vec::new())
    }

    #[test]
    fn identical_ledgers_have_no_finding() {
        let a = build(1, &[&[("x", 1)], &[("x", 2)]], &[&[("c", 1)], &[("c", 2)]]);
        let b = build(1, &[&[("x", 1)], &[("x", 2)]], &[&[("c", 1)], &[("c", 2)]]);
        let report = diff_ledgers(&a, &b);
        assert!(report.is_identical());
        assert!(report.header_notes.is_empty());
    }

    #[test]
    fn first_diverging_interval_and_component_are_named() {
        let a = build(
            1,
            &[&[("x", 1), ("y", 1)], &[("x", 2), ("y", 2)]],
            &[&[], &[]],
        );
        let b = build(
            1,
            &[&[("x", 1), ("y", 1)], &[("x", 2), ("y", 9)]],
            &[&[], &[]],
        );
        let report = diff_ledgers(&a, &b);
        match report.finding {
            Divergence::FirstDivergence {
                interval,
                component,
                ..
            } => {
                assert_eq!(interval, 1);
                assert_eq!(component, "y");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn perturbed_seed_notes_header_and_still_walks_intervals() {
        let a = build(1, &[&[("x", 1)]], &[&[]]);
        let b = build(2, &[&[("x", 5)]], &[&[]]);
        let report = diff_ledgers(&a, &b);
        assert!(report.header_notes.iter().any(|n| n.contains("seeds")));
        assert!(matches!(
            report.finding,
            Divergence::FirstDivergence { interval: 0, .. }
        ));
    }

    #[test]
    fn truncation_is_reported_when_prefix_matches() {
        let a = build(1, &[&[("x", 1)], &[("x", 2)]], &[&[], &[]]);
        let b = build(1, &[&[("x", 1)]], &[&[]]);
        let report = diff_ledgers(&a, &b);
        assert_eq!(
            report.finding,
            Divergence::Truncated {
                left_intervals: 2,
                right_intervals: 1
            }
        );
    }

    #[test]
    fn counter_only_divergence_is_caught() {
        let a = build(1, &[&[("x", 1)]], &[&[("drops", 3)]]);
        let b = build(1, &[&[("x", 1)]], &[&[("drops", 4)]]);
        let report = diff_ledgers(&a, &b);
        match report.finding {
            Divergence::FirstDivergence {
                ref component,
                left,
                right,
                ..
            } => {
                assert_eq!(component, "counter:drops");
                assert_eq!((left, right), (3, 4));
            }
            ref other => panic!("expected counter divergence, got {other:?}"),
        }
    }

    #[test]
    fn display_names_interval_and_component() {
        let a = build(3, &[&[("dom3/coord", 1)]], &[&[]]);
        let b = build(3, &[&[("dom3/coord", 2)]], &[&[]]);
        let text = diff_ledgers(&a, &b).to_string();
        assert!(text.contains("interval 0"), "{text}");
        assert!(text.contains("dom3/coord"), "{text}");
    }
}
