//! Control-plane health counters of one run.
//!
//! The trust-aware pushback protocol produces observables of its own,
//! beyond the paper's packet metrics: how many escalation requests were
//! denied (and why), whether the victim ever stood the defense down,
//! and how long the teardown took to sweep the whole chain. The
//! workload runner aggregates them across every domain coordinator into
//! one [`ControlPlaneReport`] per run.

use std::fmt;

/// Aggregated control-plane counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControlPlaneReport {
    /// `Request` envelopes injected into the control plane — one per
    /// admitted upstream target per escalation decision, honest
    /// coordinators and any malicious requester alike. Comparable
    /// against the per-receiver denial counters below.
    pub requests_sent: u64,
    /// Fresh filter installs granted by trust ledgers.
    pub installs_granted: u64,
    /// Denials for a stale protocol version.
    pub denied_bad_version: u64,
    /// Denials of authentic but unauthorized requesters.
    pub denied_untrusted: u64,
    /// Denials of replayed (non-advancing nonce) envelopes.
    pub denied_replayed: u64,
    /// Denials of claims the local meter could not corroborate —
    /// malicious pushback stopped by attestation.
    pub denied_uncorroborated: u64,
    /// Denials after a requester exhausted its install budget.
    pub denied_budget: u64,
    /// Forged envelopes dropped at the channels (claimed requester did
    /// not match the packet source).
    pub forged_dropped: u64,
    /// Victim-initiated `Stop` envelopes sent.
    pub stops_sent: u64,
    /// `Withdraw` envelopes sent (stand-down cascades, lease expiry).
    pub withdraws_sent: u64,
    /// Seconds from the victim's stand-down decision until every
    /// coordinator in the chain was idle again with zero live leases.
    /// `None` when the victim never stood down during the run.
    pub stand_down_latency_s: Option<f64>,
}

impl ControlPlaneReport {
    /// Total denials across every reason.
    #[must_use]
    pub fn denied_total(&self) -> u64 {
        self.denied_bad_version
            + self.denied_untrusted
            + self.denied_replayed
            + self.denied_uncorroborated
            + self.denied_budget
    }
}

impl fmt::Display for ControlPlaneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests {:>5}   installs {:>5}   denied {:>5} \
             (version {}, untrusted {}, replay {}, uncorroborated {}, budget {})",
            self.requests_sent,
            self.installs_granted,
            self.denied_total(),
            self.denied_bad_version,
            self.denied_untrusted,
            self.denied_replayed,
            self.denied_uncorroborated,
            self.denied_budget,
        )?;
        write!(
            f,
            "forged {:>7}   stops {:>8}   withdraws {:>2}   stand-down ",
            self.forged_dropped, self.stops_sent, self.withdraws_sent,
        )?;
        match self.stand_down_latency_s {
            Some(s) => write!(f, "{s:.3} s"),
            None => f.write_str("n/a"),
        }
    }
}

/// Renders a titled control-plane table for the figure binaries.
#[must_use]
pub fn control_table(title: &str, report: &ControlPlaneReport) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for line in report.to_string().lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ControlPlaneReport {
        ControlPlaneReport {
            requests_sent: 12,
            installs_granted: 3,
            denied_bad_version: 1,
            denied_untrusted: 2,
            denied_replayed: 0,
            denied_uncorroborated: 5,
            denied_budget: 1,
            forged_dropped: 4,
            stops_sent: 1,
            withdraws_sent: 2,
            stand_down_latency_s: Some(0.35),
        }
    }

    #[test]
    fn denied_total_sums_every_reason() {
        assert_eq!(report().denied_total(), 9);
        assert_eq!(ControlPlaneReport::default().denied_total(), 0);
    }

    #[test]
    fn display_names_every_counter() {
        let text = report().to_string();
        for needle in [
            "requests",
            "installs",
            "denied",
            "uncorroborated 5",
            "budget 1",
            "stand-down 0.350 s",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        let idle = ControlPlaneReport::default().to_string();
        assert!(idle.contains("stand-down n/a"));
    }

    #[test]
    fn table_includes_title_and_indented_rows() {
        let table = control_table("Control plane", &report());
        assert!(table.starts_with("Control plane\n"));
        assert!(table.contains("  requests"));
    }
}
