//! Multi-domain internet builder.
//!
//! Wires several stub domains and a configurable transit tier into one
//! simulator — the substrate for *inter-domain cascaded pushback*. The
//! victim's stub domain sits at the bottom; provider (transit) domains
//! stack upstream of it as a chain or a tree; the remaining stub domains
//! (where remote zombies and remote legitimate clients live) hang off
//! the deepest transit level. Every domain reuses the single-domain
//! [`Domain`] builder with its own non-overlapping address base, and the
//! inter-domain links have their own bandwidth/delay/queue class.
//!
//! Terminology (all relative to the victim):
//!
//! * **downstream** — one hop toward the victim domain,
//! * **upstream** — one hop toward the traffic sources,
//! * **gateway** — the router of a domain facing its downstream neighbor,
//! * **border** — the router of a domain where an upstream neighbor's
//!   link terminates; these are the domain's Attack Transit Routers when
//!   a pushback request escalates to it.
//!
//! Each domain also gets a **control address** (`base.250.0.1`, bound by
//! the workload layer at the gateway router) so inter-domain pushback
//! messages travel as routed packets over the same links as the flood —
//! never as an instantaneous side channel.

use crate::domain::{install_host_routes, Domain, DomainConfig};
use mafic_netsim::{Addr, LinkId, LinkSpec, NodeId, Simulator};

/// Shape of the transit (provider) tier upstream of the victim domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitTopology {
    /// `depth` provider domains in a single path: the victim's provider,
    /// its provider, and so on. `depth = 0` attaches the source stubs
    /// directly to the victim domain.
    Chain {
        /// Number of provider domains on the path.
        depth: usize,
    },
    /// A complete tree of provider domains: level 1 is the victim's
    /// provider (one domain), level `l` has `fanout^(l-1)` domains.
    /// Source stubs attach round-robin to the deepest level.
    Tree {
        /// Number of provider levels (`0` = no transit tier).
        depth: usize,
        /// Children per provider domain.
        fanout: usize,
    },
}

impl TransitTopology {
    /// Total number of provider domains this topology creates.
    /// Saturates instead of overflowing on absurd tree parameters —
    /// [`TransitTopology::validate`] rejects anything near saturation.
    #[must_use]
    pub fn domain_count(&self) -> usize {
        match *self {
            TransitTopology::Chain { depth } => depth,
            TransitTopology::Tree { depth, fanout } => {
                let mut total = 0usize;
                let mut level = 1usize;
                for _ in 0..depth {
                    total = total.saturating_add(level);
                    level = level.saturating_mul(fanout);
                }
                total
            }
        }
    }

    /// Number of provider levels between the victim domain and the
    /// source stubs.
    #[must_use]
    pub fn levels(&self) -> usize {
        match *self {
            TransitTopology::Chain { depth } | TransitTopology::Tree { depth, .. } => depth,
        }
    }

    /// Validates the topology parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if let TransitTopology::Tree { fanout, .. } = *self {
            if fanout == 0 {
                return Err("transit tree fanout must be >= 1".into());
            }
        }
        // Bound the tier before anyone exponentiates with it: the whole
        // internet is capped at 100 domains (address bases), so reject
        // out-of-range tiers here with an error instead of overflowing
        // (or building half the cap in providers alone).
        let count = self.domain_count();
        if count > 100 {
            return Err(format!(
                "transit tier of {count} provider domains exceeds the 100-domain cap"
            ));
        }
        Ok(())
    }
}

/// What part a domain plays in the internet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainRole {
    /// The stub domain hosting the victim.
    Victim,
    /// A provider domain on the pushback path.
    Transit,
    /// A source stub domain (remote clients and zombies).
    Stub,
}

/// One inter-domain link arriving from an upstream neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpstreamEdge {
    /// Index of the upstream domain in [`Internet::domains`].
    pub domain: usize,
    /// The local border router terminating the link — an ATR candidate.
    pub border: NodeId,
    /// The simplex link carrying upstream→local (victim-bound) traffic.
    pub in_link: LinkId,
}

/// One domain of the built internet, with its pushback-path wiring.
#[derive(Debug, Clone)]
pub struct InternetDomain {
    /// The domain itself (nodes, hosts, address plan).
    pub domain: Domain,
    /// The domain's role.
    pub role: DomainRole,
    /// Hops from the victim domain along the pushback path (victim = 0).
    pub level: u32,
    /// Index of the downstream neighbor (`None` for the victim domain).
    pub downstream: Option<usize>,
    /// Upstream neighbors, in construction order.
    pub upstream: Vec<UpstreamEdge>,
    /// The router facing the downstream neighbor (the domain's last-hop
    /// router; unused as a gateway on the victim domain itself).
    pub gateway: NodeId,
    /// The simplex link gateway → downstream border, if any.
    pub egress_link: Option<LinkId>,
    /// The domain coordinator's control address (routable to the
    /// gateway router; the workload layer binds the receiving agent).
    pub ctrl_addr: Addr,
}

/// Parameters of the multi-domain internet.
#[derive(Debug, Clone, PartialEq)]
pub struct InternetConfig {
    /// Stub domain configurations; index 0 is the victim's domain. Base
    /// octets and seeds are overridden per domain by the builder.
    pub stubs: Vec<DomainConfig>,
    /// Shape of the transit tier.
    pub transit: TransitTopology,
    /// Template for every transit domain.
    pub transit_domain: DomainConfig,
    /// Link class of every inter-domain link.
    pub inter_link: LinkSpec,
}

/// The built internet: domains in pushback-path order.
///
/// `domains[0]` is the victim stub; transit domains follow in level
/// order; source stubs come last.
#[derive(Debug, Clone)]
pub struct Internet {
    /// All domains, victim first.
    pub domains: Vec<InternetDomain>,
}

/// Base octet of domain `index` (victim = 10, then 11, 12, …).
fn base_octet(index: usize) -> u8 {
    10 + index as u8
}

/// Per-domain control address under the domain's base octet.
fn ctrl_addr(index: usize) -> Addr {
    Addr::from_octets(base_octet(index), 250, 0, 1)
}

impl Internet {
    /// Builds the internet into `sim`: every domain via the single-domain
    /// builder, the inter-domain links, and one global route pass over
    /// all hosts, the victim, and the control addresses.
    ///
    /// # Errors
    ///
    /// Returns a message if the configuration or any domain is invalid.
    pub fn build(sim: &mut Simulator, config: &InternetConfig) -> Result<Internet, String> {
        if config.stubs.is_empty() {
            return Err("internet needs at least the victim stub domain".into());
        }
        config.transit.validate()?;
        let n_transit = config.transit.domain_count();
        let n_total = config.stubs.len() + n_transit;
        if n_total > 100 {
            return Err(format!(
                "at most 100 domains supported (address bases), got {n_total}"
            ));
        }

        // --- Build every domain, unrouted -------------------------------
        let mut domains: Vec<InternetDomain> = Vec::with_capacity(n_total);
        let build_one = |sim: &mut Simulator,
                         template: &DomainConfig,
                         index: usize,
                         role: DomainRole,
                         level: u32|
         -> Result<InternetDomain, String> {
            let cfg = DomainConfig {
                base_octet: base_octet(index),
                seed: template
                    .seed
                    .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..*template
            };
            let domain = Domain::build_unrouted(sim, &cfg)?;
            let gateway = domain.victim_router;
            Ok(InternetDomain {
                domain,
                role,
                level,
                downstream: None,
                upstream: Vec::new(),
                gateway,
                egress_link: None,
                ctrl_addr: ctrl_addr(index),
            })
        };

        domains.push(build_one(sim, &config.stubs[0], 0, DomainRole::Victim, 0)?);
        // Transit domains in level order; remember each level's indices.
        let mut levels: Vec<Vec<usize>> = vec![vec![0]];
        match config.transit {
            TransitTopology::Chain { depth } => {
                for l in 1..=depth {
                    let index = domains.len();
                    domains.push(build_one(
                        sim,
                        &config.transit_domain,
                        index,
                        DomainRole::Transit,
                        l as u32,
                    )?);
                    levels.push(vec![index]);
                }
            }
            TransitTopology::Tree { depth, fanout } => {
                for l in 1..=depth {
                    let mut level = Vec::with_capacity(fanout.pow((l - 1) as u32));
                    for _ in 0..fanout.pow((l - 1) as u32) {
                        let index = domains.len();
                        domains.push(build_one(
                            sim,
                            &config.transit_domain,
                            index,
                            DomainRole::Transit,
                            l as u32,
                        )?);
                        level.push(index);
                    }
                    levels.push(level);
                }
            }
        }
        let stub_level = levels.len() as u32;
        for s in 1..config.stubs.len() {
            let index = domains.len();
            domains.push(build_one(
                sim,
                &config.stubs[s],
                index,
                DomainRole::Stub,
                stub_level,
            )?);
        }

        // --- Inter-domain links ------------------------------------------
        // Round-robin border selection per parent keeps borders spread
        // over a parent's ingress routers deterministically.
        let mut border_rr = vec![0usize; n_total];
        let mut attach = |sim: &mut Simulator,
                          domains: &mut Vec<InternetDomain>,
                          child: usize,
                          parent: usize| {
            let child_gw = domains[child].gateway;
            let borders = &domains[parent].domain.ingress_routers;
            let border = borders[border_rr[parent] % borders.len()];
            border_rr[parent] += 1;
            let (up_link, _down_link) = sim.add_duplex_link(child_gw, border, config.inter_link);
            domains[child].downstream = Some(parent);
            domains[child].egress_link = Some(up_link);
            domains[parent].upstream.push(UpstreamEdge {
                domain: child,
                border,
                in_link: up_link,
            });
        };
        // Transit tier: each level-l domain attaches to a level-(l-1)
        // parent; in a tree, consecutive children share a parent.
        for l in 1..levels.len() {
            let (parents, children) = {
                let p = levels[l - 1].clone();
                let c = levels[l].clone();
                (p, c)
            };
            let per_parent = children.len().div_ceil(parents.len());
            for (j, &child) in children.iter().enumerate() {
                let parent = parents[(j / per_parent).min(parents.len() - 1)];
                attach(sim, &mut domains, child, parent);
            }
        }
        // Source stubs round-robin over the deepest transit level (or the
        // victim domain when there is no transit tier).
        let deepest = levels
            .last()
            .expect("levels starts with the victim")
            .clone();
        for (j, child) in (1 + n_transit..n_total).enumerate() {
            let parent = deepest[j % deepest.len()];
            attach(sim, &mut domains, child, parent);
        }

        // --- Global routes ----------------------------------------------
        // Hosts of every domain, the victim endpoint, and every control
        // address (bound at the gateway routers by the workload layer).
        let mut destinations: Vec<(Addr, NodeId)> = Vec::new();
        for (i, d) in domains.iter().enumerate() {
            for h in &d.domain.hosts {
                destinations.push((h.addr, h.node));
            }
            if i == 0 {
                destinations.push((d.domain.victim_addr, d.domain.victim_host));
            }
            destinations.push((d.ctrl_addr, d.gateway));
        }
        install_host_routes(sim, &destinations);

        Ok(Internet { domains })
    }

    /// The victim's stub domain.
    #[must_use]
    pub fn victim_domain(&self) -> &InternetDomain {
        &self.domains[0]
    }

    /// Deepest pushback level in this internet (source stubs included).
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.domains.iter().map(|d| d.level).max().unwrap_or(0)
    }

    /// Iterates over every domain's address space (for building a
    /// global source-address legality oracle).
    pub fn address_spaces(&self) -> impl Iterator<Item = &crate::AddressSpace> {
        self.domains.iter().map(|d| &d.domain.address_space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::{CountingSink, FlowKey, PacketKind, SimDuration, SimTime};

    fn stub_cfg(hosts: usize) -> DomainConfig {
        DomainConfig {
            n_routers: 6,
            n_hosts: hosts,
            seed: 5,
            ..DomainConfig::default()
        }
    }

    fn transit_cfg() -> DomainConfig {
        DomainConfig {
            n_routers: 5,
            n_hosts: 1,
            ..DomainConfig::default()
        }
    }

    fn chain_config(stubs: usize, depth: usize) -> InternetConfig {
        InternetConfig {
            stubs: (0..stubs).map(|_| stub_cfg(4)).collect(),
            transit: TransitTopology::Chain { depth },
            transit_domain: transit_cfg(),
            inter_link: LinkSpec::new(20e6, SimDuration::from_millis(10), 256),
        }
    }

    #[test]
    fn chain_builds_expected_domain_count_and_levels() {
        let mut sim = Simulator::new(1);
        let net = Internet::build(&mut sim, &chain_config(3, 2)).unwrap();
        assert_eq!(net.domains.len(), 5); // victim + 2 transit + 2 stubs
        assert_eq!(net.domains[0].role, DomainRole::Victim);
        assert_eq!(net.domains[0].level, 0);
        assert_eq!(net.domains[1].role, DomainRole::Transit);
        assert_eq!(net.domains[1].level, 1);
        assert_eq!(net.domains[2].level, 2);
        assert_eq!(net.domains[3].role, DomainRole::Stub);
        assert_eq!(net.domains[3].level, 3);
        assert_eq!(net.max_level(), 3);
        // Chain wiring: 1 → 0, 2 → 1, stubs → 2.
        assert_eq!(net.domains[1].downstream, Some(0));
        assert_eq!(net.domains[2].downstream, Some(1));
        assert_eq!(net.domains[3].downstream, Some(2));
        assert_eq!(net.domains[4].downstream, Some(2));
        assert_eq!(net.domains[0].upstream.len(), 1);
        assert_eq!(net.domains[2].upstream.len(), 2);
    }

    #[test]
    fn zero_depth_chain_attaches_stubs_to_the_victim_domain() {
        let mut sim = Simulator::new(1);
        let net = Internet::build(&mut sim, &chain_config(3, 0)).unwrap();
        assert_eq!(net.domains.len(), 3);
        assert_eq!(net.domains[1].downstream, Some(0));
        assert_eq!(net.domains[2].downstream, Some(0));
        assert_eq!(net.domains[0].upstream.len(), 2);
        assert_eq!(net.max_level(), 1);
    }

    #[test]
    fn tree_fans_out_per_level() {
        let mut sim = Simulator::new(1);
        let cfg = InternetConfig {
            transit: TransitTopology::Tree {
                depth: 2,
                fanout: 2,
            },
            ..chain_config(4, 0)
        };
        let net = Internet::build(&mut sim, &cfg).unwrap();
        // victim + (1 + 2) transit + 3 stubs.
        assert_eq!(net.domains.len(), 7);
        assert_eq!(net.domains[1].level, 1);
        assert_eq!(net.domains[2].level, 2);
        assert_eq!(net.domains[3].level, 2);
        assert_eq!(net.domains[2].downstream, Some(1));
        assert_eq!(net.domains[3].downstream, Some(1));
        // Stubs round-robin over the deepest level {2, 3}.
        assert_eq!(net.domains[4].downstream, Some(2));
        assert_eq!(net.domains[5].downstream, Some(3));
        assert_eq!(net.domains[6].downstream, Some(2));
    }

    #[test]
    fn address_plans_never_overlap() {
        let mut sim = Simulator::new(1);
        let net = Internet::build(&mut sim, &chain_config(3, 1)).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for d in &net.domains {
            for h in &d.domain.hosts {
                assert!(seen.insert(h.addr), "duplicate host address {}", h.addr);
            }
            assert!(seen.insert(d.ctrl_addr), "duplicate ctrl addr");
        }
        // A host of one domain is illegal under every other domain's plan.
        let remote_host = net.domains[2].domain.hosts[0].addr;
        assert!(!net.domains[0].domain.address_space.is_legal(remote_host));
    }

    #[test]
    fn remote_hosts_reach_the_victim_across_domains() {
        let mut sim = Simulator::new(1);
        let net = Internet::build(&mut sim, &chain_config(3, 2)).unwrap();
        let victim = &net.domains[0].domain;
        let sink = sim.add_agent(
            victim.victim_host,
            Box::new(CountingSink::new()),
            SimTime::ZERO,
        );
        sim.bind_local_addr(victim.victim_host, victim.victim_addr, sink);
        let mut expected = 0;
        for d in &net.domains {
            for (i, host) in d.domain.hosts.iter().enumerate() {
                let key = FlowKey::new(host.addr, victim.victim_addr, 2000 + i as u16, 80);
                sim.inject_packet(host.node, key, PacketKind::Udp, 500, false, sim.now());
                expected += 1;
            }
        }
        sim.run_until(SimTime::from_secs_f64(3.0));
        let sink = sim.agent::<CountingSink>(sink).unwrap();
        assert_eq!(sink.delivered() as usize, expected);
    }

    #[test]
    fn control_addresses_are_routable_between_neighbors() {
        let mut sim = Simulator::new(1);
        let net = Internet::build(&mut sim, &chain_config(2, 1)).unwrap();
        // Victim's gateway → transit ctrl addr (the escalation direction).
        let transit = &net.domains[1];
        let sink = sim.add_agent(
            transit.gateway,
            Box::new(CountingSink::new()),
            SimTime::ZERO,
        );
        sim.bind_local_addr(transit.gateway, transit.ctrl_addr, sink);
        let from = net.domains[0].upstream[0].border;
        let key = FlowKey::new(net.domains[0].ctrl_addr, transit.ctrl_addr, 9, 9);
        sim.inject_packet(from, key, PacketKind::Udp, 64, false, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<CountingSink>(sink).unwrap().delivered(), 1);
    }

    #[test]
    fn build_is_deterministic() {
        let build = || {
            let mut sim = Simulator::new(1);
            let net = Internet::build(&mut sim, &chain_config(3, 2)).unwrap();
            (sim.node_count(), sim.link_count(), net.domains.len())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut sim = Simulator::new(1);
        let empty = InternetConfig {
            stubs: Vec::new(),
            ..chain_config(2, 0)
        };
        assert!(Internet::build(&mut sim, &empty).is_err());
        let bad_tree = InternetConfig {
            transit: TransitTopology::Tree {
                depth: 1,
                fanout: 0,
            },
            ..chain_config(2, 0)
        };
        assert!(Internet::build(&mut sim, &bad_tree).is_err());
    }

    #[test]
    fn topology_counts() {
        assert_eq!(TransitTopology::Chain { depth: 3 }.domain_count(), 3);
        assert_eq!(TransitTopology::Chain { depth: 3 }.levels(), 3);
        let tree = TransitTopology::Tree {
            depth: 3,
            fanout: 2,
        };
        assert_eq!(tree.domain_count(), 1 + 2 + 4);
        assert_eq!(tree.levels(), 3);
    }

    #[test]
    fn oversized_trees_are_rejected_not_overflowed() {
        // 3^41 overflows a u64's worth of multiplications; domain_count
        // must saturate and validate must reject, never panic.
        let huge = TransitTopology::Tree {
            depth: 42,
            fanout: 3,
        };
        assert_eq!(huge.domain_count(), usize::MAX);
        let err = huge.validate().expect_err("oversized tier rejected");
        assert!(err.contains("100-domain cap"), "{err}");
        assert!(TransitTopology::Tree {
            depth: 4,
            fanout: 5, // 1 + 5 + 25 + 125 = 156 providers
        }
        .validate()
        .is_err());
        assert!(TransitTopology::Chain { depth: 200 }.validate().is_err());
        assert!(TransitTopology::Tree {
            depth: 4,
            fanout: 4, // 85 providers: large but within the cap
        }
        .validate()
        .is_ok());
    }
}
