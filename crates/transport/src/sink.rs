//! TCP receiver (sink) agent.
//!
//! Generates one cumulative ACK per data segment (no delayed ACK), echoing
//! the sender's timestamp so both the sender and the routers on the path
//! can estimate the flow RTT — the paper's "RTT information is available
//! in most TCP traffic flows by checking the time stamp in the packet
//! header".

use mafic_netsim::{Agent, AgentCtx, FlowKey, Packet, PacketKind, Provenance, SimTime};
use std::any::Any;
use std::collections::BTreeSet;

/// A TCP receiver that ACKs every in-order or out-of-order segment.
///
/// Out-of-order segments are buffered (by sequence number) and the
/// cumulative ACK advances over any contiguous run, so the sender sees
/// duplicate ACKs exactly when segments go missing — which is what makes
/// MAFIC's probing-phase drops visible to compliant sources.
#[derive(Debug)]
pub struct TcpSink {
    /// The *forward* flow key (sender → sink); ACKs use the reverse.
    forward_key: FlowKey,
    ack_size: u32,
    rcv_next: u64,
    out_of_order: BTreeSet<u64>,
    acks_sent: u64,
    segments_received: u64,
    duplicate_segments: u64,
}

impl TcpSink {
    /// Creates a sink for the given forward flow.
    #[must_use]
    pub fn new(forward_key: FlowKey, ack_size: u32) -> Self {
        TcpSink {
            forward_key,
            ack_size,
            rcv_next: 0,
            out_of_order: BTreeSet::new(),
            acks_sent: 0,
            segments_received: 0,
            duplicate_segments: 0,
        }
    }

    /// Next expected sequence number.
    #[must_use]
    pub fn rcv_next(&self) -> u64 {
        self.rcv_next
    }

    /// ACKs generated so far.
    #[must_use]
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Data segments received (including duplicates).
    #[must_use]
    pub fn segments_received(&self) -> u64 {
        self.segments_received
    }

    fn send_ack(&mut self, ts_echo: SimTime, ctx: &mut AgentCtx<'_>) {
        let ack = Packet {
            id: ctx.fresh_packet_id(),
            key: self.forward_key.reversed(),
            kind: PacketKind::TcpAck {
                ack: self.rcv_next,
                ts: ctx.now(),
                ts_echo,
            },
            size_bytes: self.ack_size,
            created_at: ctx.now(),
            provenance: Provenance {
                origin: ctx.agent_id(),
                is_attack: false,
            },
            hops: 0,
        };
        ctx.send_packet(ack);
        self.acks_sent += 1;
    }
}

impl Agent for TcpSink {
    fn on_start(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        let PacketKind::TcpData { seq, ts, .. } = packet.kind else {
            return; // Sinks ignore ACKs, UDP, and probes.
        };
        if packet.key != self.forward_key {
            return; // Not our flow (shared host).
        }
        self.segments_received += 1;
        if seq == self.rcv_next {
            self.rcv_next += 1;
            // Drain any contiguous buffered run.
            while self.out_of_order.remove(&self.rcv_next) {
                self.rcv_next += 1;
            }
        } else if seq > self.rcv_next {
            self.out_of_order.insert(seq);
        } else {
            self.duplicate_segments += 1;
        }
        self.send_ack(ts, ctx);
    }

    fn snap_save(&self, w: &mut mafic_netsim::SnapWriter) {
        w.write_u64(self.rcv_next);
        w.write_usize(self.out_of_order.len());
        for &seq in &self.out_of_order {
            w.write_u64(seq);
        }
        w.write_u64(self.acks_sent);
        w.write_u64(self.segments_received);
        w.write_u64(self.duplicate_segments);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_netsim::SnapReader<'_>,
    ) -> Result<(), mafic_netsim::SnapError> {
        self.rcv_next = r.read_u64()?;
        let n = r.read_usize()?;
        self.out_of_order = BTreeSet::new();
        for _ in 0..n {
            self.out_of_order.insert(r.read_u64()?);
        }
        self.acks_sent = r.read_u64()?;
        self.segments_received = r.read_u64()?;
        self.duplicate_segments = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::AgentHarness;
    use mafic_netsim::{Addr, SimDuration};

    fn key() -> FlowKey {
        FlowKey::new(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(10, 9, 0, 1),
            4000,
            80,
        )
    }

    fn data(seq: u64, now: SimTime) -> Packet {
        Packet {
            id: seq + 100,
            key: key(),
            kind: PacketKind::TcpData {
                seq,
                ts: now,
                ts_echo: SimTime::ZERO,
            },
            size_bytes: 500,
            created_at: now,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    fn ack_of(p: &Packet) -> u64 {
        match p.kind {
            PacketKind::TcpAck { ack, .. } => ack,
            _ => panic!("not an ack: {:?}", p.kind),
        }
    }

    #[test]
    fn in_order_segments_advance_cumulative_ack() {
        let mut h = AgentHarness::new();
        let mut s = TcpSink::new(key(), 40);
        for seq in 0..3 {
            let fx = h.deliver(&mut s, data(seq, h.now));
            assert_eq!(fx.sent.len(), 1);
            assert_eq!(ack_of(&fx.sent[0]), seq + 1);
            assert_eq!(fx.sent[0].key, key().reversed());
        }
        assert_eq!(s.rcv_next(), 3);
        assert_eq!(s.acks_sent(), 3);
    }

    #[test]
    fn gap_produces_duplicate_acks_then_catches_up() {
        let mut h = AgentHarness::new();
        let mut s = TcpSink::new(key(), 40);
        let _ = h.deliver(&mut s, data(0, h.now));
        // Segment 1 lost; 2 and 3 arrive.
        let fx2 = h.deliver(&mut s, data(2, h.now));
        let fx3 = h.deliver(&mut s, data(3, h.now));
        assert_eq!(ack_of(&fx2.sent[0]), 1, "dup ack");
        assert_eq!(ack_of(&fx3.sent[0]), 1, "dup ack");
        // Retransmission of 1 fills the hole and ACK jumps to 4.
        let fx1 = h.deliver(&mut s, data(1, h.now));
        assert_eq!(ack_of(&fx1.sent[0]), 4);
        assert_eq!(s.rcv_next(), 4);
    }

    #[test]
    fn timestamps_are_echoed() {
        let mut h = AgentHarness::new();
        h.advance(SimDuration::from_millis(30));
        let sent_at = h.now;
        let mut s = TcpSink::new(key(), 40);
        h.advance(SimDuration::from_millis(15));
        let fx = h.deliver(&mut s, data(0, sent_at));
        match fx.sent[0].kind {
            PacketKind::TcpAck { ts_echo, .. } => assert_eq!(ts_echo, sent_at),
            ref other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn foreign_flows_and_non_data_are_ignored() {
        let mut h = AgentHarness::new();
        let mut s = TcpSink::new(key(), 40);
        let mut foreign = data(0, h.now);
        foreign.key.src_port = 9999;
        assert!(h.deliver(&mut s, foreign).sent.is_empty());
        let udp = Packet {
            kind: PacketKind::Udp,
            ..data(0, h.now)
        };
        assert!(h.deliver(&mut s, udp).sent.is_empty());
        assert_eq!(s.segments_received(), 0);
    }

    #[test]
    fn old_duplicates_are_counted_not_buffered() {
        let mut h = AgentHarness::new();
        let mut s = TcpSink::new(key(), 40);
        let _ = h.deliver(&mut s, data(0, h.now));
        let _ = h.deliver(&mut s, data(0, h.now));
        assert_eq!(s.duplicate_segments, 1);
        assert_eq!(s.rcv_next(), 1);
    }
}
