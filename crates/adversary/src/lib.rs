//! Closed-loop adaptive attack strategies — the red team of the MAFIC
//! reproduction.
//!
//! Every scenario up through fig10 faces *open-loop* attackers: CBR
//! floods and fixed pulse trains that never react to being dropped.
//! Real DDoS sources observe their own loss and adapt (Argyraki &
//! Cheriton's threat model), which is exactly what this crate supplies:
//! an [`AdversaryController`] that, once per monitor interval, digests
//! per-source delivered-vs-sent feedback and retargets its sources
//! through an [`AttackStrategy`] — churning the active source set
//! faster than the defense's lease expiry ([`StrategyKind::SourceRotation`]),
//! shaping the aggregate under the attestation floor
//! ([`StrategyKind::AttestationShaping`]), period-locking pulses to the
//! coordinator's K-interval hysteresis ([`StrategyKind::PulseTuning`]),
//! or rotating the flood across sibling stubs to dilute per-requester
//! install budgets ([`StrategyKind::CarpetBombing`]).
//!
//! # Observability boundary
//!
//! The controller is *in-band*: its decisions may only use
//!
//! 1. its own seeded RNG,
//! 2. state observable at the attacker's own nodes — the per-source
//!    cumulative sent/delivered counters a real zombie could measure
//!    from its own acknowledgement stream, folded into per-interval
//!    deltas and a loss rate, and
//! 3. *public* protocol constants carried in [`AdversarySpec`]
//!    (Kerckhoffs's principle: the defense's lease length and
//!    hysteresis window are published defaults, not secrets).
//!
//! It never reads defender runtime state (coordinator lifecycle, trust
//! ledgers, filter tables). Determinism rule 5 therefore holds: the
//! control loop is pure state + seeded RNG, hashed into the run ledger
//! and serialized into checkpoints like every other component.
//!
//! # Equal-budget contract
//!
//! Every strategy preserves the attacker's aggregate budget: when a
//! cohort pauses, the surviving active sources scale up so the summed
//! nominal rate stays at the open-loop level (`Σ scale ≈ 1000 × n`).
//! Comparisons against the open-loop baseline are therefore
//! like-for-like — adaptivity, not extra volume, explains any extra
//! residual.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod controller;
mod spec;
mod strategies;

pub use controller::{AdversaryController, AdversaryDirective, SourceFeedback, SourceObs};
pub use spec::{AdversarySpec, StrategyKind};
pub use strategies::{build_strategy, AttackStrategy, StrategyCtx};
