//! Fixture corpus for the determinism linter: each known-bad snippet
//! fires its rule exactly once, allow-pragmas are honored (and audited
//! when unused), and the lexer edge cases that motivated a real lexer
//! never produce false positives.
//!
//! Every snippet lives in a raw string, which is itself a living proof
//! of the lexer contract: this file is scanned by the workspace pass,
//! and none of the "violations" below may fire here.

use mafic_lint::{lint_manifest, lint_source, LintConfig, RuleId};

/// Lint a snippet as if it were the named workspace file, returning
/// only the findings.
fn findings(path: &str, src: &str) -> Vec<(RuleId, u32)> {
    let cfg = LintConfig::workspace();
    let (found, _) = lint_source(path, src, &cfg);
    found.into_iter().map(|f| (f.rule, f.line)).collect()
}

/// Assert the snippet yields exactly one finding of `rule`.
fn fires_once(path: &str, src: &str, rule: RuleId) {
    let found = findings(path, src);
    assert_eq!(
        found.len(),
        1,
        "expected exactly one finding in {path}, got {found:?}\nsource:\n{src}"
    );
    assert_eq!(found[0].0, rule, "wrong rule for {path}: {found:?}");
}

const LIB: &str = "crates/netsim/src/sim.rs";

// ---------------------------------------------------------------- nondet

#[test]
fn nondet_instant_now_fires_once() {
    fires_once(
        LIB,
        r#"fn t() { let _start = std::time::Instant::now(); }"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_system_time_fires_once() {
    fires_once(
        LIB,
        r#"use std::time::SystemTime; fn t() {}"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_bare_instant_now_fires_once() {
    fires_once(LIB, r#"fn t() { let _ = Instant::now(); }"#, RuleId::Nondet);
}

#[test]
fn nondet_std_thread_fires_once() {
    fires_once(
        LIB,
        r#"fn t() { std::thread::yield_now(); }"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_std_env_fires_once() {
    fires_once(
        LIB,
        r#"fn t() -> Option<String> { std::env::var("MAFIC_JOBS").ok() }"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_thread_rng_fires_once() {
    fires_once(
        LIB,
        r#"fn t() { let mut rng = rand::thread_rng(); }"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_rand_random_fires_once() {
    fires_once(LIB, r#"fn t() -> f64 { rand::random() }"#, RuleId::Nondet);
}

#[test]
fn nondet_random_state_fires_once() {
    fires_once(
        LIB,
        r#"fn t(s: RandomState) { let _ = s; }"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_hash_map_module_path_fires_once() {
    fires_once(
        LIB,
        r#"fn t(e: hash_map::Entry<u32, u32>) {}"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_hashbrown_fires_once() {
    fires_once(
        LIB,
        r#"fn t(m: hashbrown::HashMap<u32, u32>) {}"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_pointer_format_fires_once() {
    fires_once(
        LIB,
        // mafic-lint: allow(nondet) -- fixture: the banned pattern under test lives in this string
        r#"fn t(x: &u32) { eprintln!("at {:p}", x); }"#,
        RuleId::Nondet,
    );
}

#[test]
fn nondet_sanctioned_file_is_exempt() {
    let src = r#"fn pool() { std::thread::scope(|_| {}); let _ = std::env::var("MAFIC_JOBS"); }"#;
    assert!(
        findings("crates/experiments/src/engine.rs", src).is_empty(),
        "engine.rs is the sanctioned nondeterminism boundary"
    );
    // The same source in any other file fires (twice: thread + env).
    assert_eq!(findings(LIB, src).len(), 2);
}

// --------------------------------------------------------- stdout purity

#[test]
fn stdout_println_in_library_fires_once() {
    fires_once(
        LIB,
        r#"fn report() { println!("interval done"); }"#,
        RuleId::StdoutPurity,
    );
}

#[test]
fn stdout_print_in_library_fires_once() {
    fires_once(LIB, r#"fn report() { print!("x"); }"#, RuleId::StdoutPurity);
}

#[test]
fn stdout_println_in_binary_is_fine() {
    let src = r#"fn main() { println!("fig3 row"); }"#;
    assert!(findings("crates/experiments/src/bin/fig3_accuracy.rs", src).is_empty());
}

#[test]
fn stdout_println_in_tests_and_examples_is_fine() {
    let src = r#"fn main() { println!("demo"); }"#;
    assert!(findings("examples/quickstart.rs", src).is_empty());
    assert!(findings("tests/determinism.rs", src).is_empty());
}

#[test]
fn stderr_eprintln_is_always_fine() {
    let src = r#"fn progress() { eprintln!("job 3/10"); }"#;
    assert!(findings(LIB, src).is_empty());
}

// ------------------------------------------------------------- float-ord

#[test]
fn float_partial_cmp_unwrap_fires_once() {
    fires_once(
        LIB,
        r#"fn t(xs: &mut Vec<f64>) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"#,
        RuleId::FloatOrd,
    );
}

#[test]
fn float_total_cmp_is_fine() {
    let src = r#"fn t(xs: &mut Vec<f64>) { xs.sort_by(f64::total_cmp); }"#;
    assert!(findings(LIB, src).is_empty());
}

// ----------------------------------------------------------- unsafe-code

#[test]
fn unsafe_outside_inventory_fires_once() {
    fires_once(
        LIB,
        r#"fn t(p: *const u8) -> u8 { unsafe { *p } }"#,
        RuleId::UnsafeCode,
    );
}

#[test]
fn unsafe_in_sanctioned_file_needs_safety_comment() {
    let path = "crates/bench/src/bin/bench_harness.rs";
    let bad = r#"fn t(p: *const u8) -> u8 { unsafe { *p } }"#;
    let found = findings(path, bad);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, RuleId::UnsafeCode);

    let good = "fn t(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
    assert!(findings(path, good).is_empty());
}

#[test]
fn safety_comment_must_be_within_four_lines() {
    let path = "crates/bench/src/bin/bench_harness.rs";
    let stale = "// SAFETY: too far away\n\n\n\n\n\nfn t(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(findings(path, stale).len(), 1);
}

// ------------------------------------------------------------- lib-attrs

#[test]
fn lib_rs_missing_both_attrs_fires_twice() {
    let found = findings("crates/netsim/src/lib.rs", r#"pub fn x() {}"#);
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|(r, _)| *r == RuleId::LibAttrs));
}

#[test]
fn lib_rs_with_both_attrs_is_clean() {
    let src = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn x() {}\n";
    assert!(findings("crates/netsim/src/lib.rs", src).is_empty());
}

#[test]
fn non_lib_files_skip_the_attr_rule() {
    assert!(findings("crates/netsim/src/sim.rs", r#"pub fn x() {}"#).is_empty());
}

// --------------------------------------------------------------- pragmas

#[test]
fn allow_pragma_suppresses_and_is_inventoried_as_used() {
    let cfg = LintConfig::workspace();
    let src = "fn report() {\n    // mafic-lint: allow(stdout-purity) -- doctest capture needs stdout here\n    println!(\"x\");\n}\n";
    let (found, pragmas) = lint_source(LIB, src, &cfg);
    assert!(found.is_empty(), "{found:?}");
    assert_eq!(pragmas.len(), 1);
    assert!(pragmas[0].used);
    assert_eq!(pragmas[0].rule, RuleId::StdoutPurity);
    assert_eq!(pragmas[0].reason, "doctest capture needs stdout here");
}

#[test]
fn same_line_pragma_suppresses() {
    let src = "fn report() { println!(\"x\"); // mafic-lint: allow(stdout-purity) -- demo\n}\n";
    assert!(findings(LIB, src).is_empty());
}

#[test]
fn pragma_for_wrong_rule_does_not_suppress() {
    let src =
        "fn report() {\n    // mafic-lint: allow(nondet) -- wrong rule\n    println!(\"x\");\n}\n";
    let found = findings(LIB, src);
    // The stdout finding survives AND the pragma is flagged unused.
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().any(|(r, _)| *r == RuleId::StdoutPurity));
    assert!(found.iter().any(|(r, _)| *r == RuleId::Pragma));
}

#[test]
fn pragma_without_reason_is_malformed() {
    fires_once(
        LIB,
        "fn x() {}\n// mafic-lint: allow(nondet)\n",
        RuleId::Pragma,
    );
}

#[test]
fn pragma_with_unknown_rule_is_malformed() {
    fires_once(
        LIB,
        "fn x() {}\n// mafic-lint: allow(no-such-rule) -- why\n",
        RuleId::Pragma,
    );
}

#[test]
fn unused_pragma_is_a_finding() {
    fires_once(
        LIB,
        "fn x() {}\n// mafic-lint: allow(float-ord) -- nothing here needs it\n",
        RuleId::Pragma,
    );
}

// ------------------------------------------------------ lexer edge cases

#[test]
fn println_inside_raw_string_never_fires() {
    let src = r##"fn fixture() -> &'static str { r#"println!("x"); print!("y");"# }"##;
    assert!(findings(LIB, src).is_empty());
}

#[test]
fn banned_path_inside_plain_string_never_fires() {
    let src = r#"fn doc() -> &'static str { "call std::time::Instant::now() for wall time" }"#;
    assert!(findings(LIB, src).is_empty());
}

#[test]
fn banned_path_inside_nested_block_comment_never_fires() {
    let src = "/* outer /* std::time::Instant::now() */ still comment println! */ fn x() {}\n";
    assert!(findings(LIB, src).is_empty());
}

#[test]
fn banned_path_inside_doc_comment_never_fires() {
    let src = "/// Unlike `std::time::Instant`, sim time is replayable.\npub fn x() {}\n";
    assert!(findings(LIB, src).is_empty());
}

#[test]
fn lifetime_vs_char_literal_disambiguation() {
    // `'a` lifetimes must not confuse the lexer into treating the rest
    // of the file as a char literal (which would hide violations).
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let _n = '\\n'; c }\nfn bad() { println!(\"leak\"); }\n";
    let found = findings(LIB, src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, RuleId::StdoutPurity);
}

#[test]
fn string_with_escaped_quote_does_not_desync_lexer() {
    let src =
        "fn f() -> &'static str { \"esc \\\" quote\" }\nfn bad() { let _ = Instant::now(); }\n";
    let found = findings(LIB, src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, RuleId::Nondet);
}

// ------------------------------------------------------------- manifests

#[test]
fn manifest_back_edge_fires() {
    let cfg = LintConfig::workspace();
    let src = "[package]\nname = \"mafic-netsim\"\n\n[dependencies]\nmafic-experiments.workspace = true\n";
    let found = lint_manifest("crates/netsim/Cargo.toml", src, &cfg);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, RuleId::Layering);
    assert!(found[0].message.contains("mafic-experiments"));
}

#[test]
fn manifest_dotted_table_back_edge_fires() {
    let cfg = LintConfig::workspace();
    let src = "[package]\nname = \"mafic-netsim\"\n\n[dependencies.mafic-experiments]\nworkspace = true\n";
    let found = lint_manifest("crates/netsim/Cargo.toml", src, &cfg);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, RuleId::Layering);
    assert!(found[0].message.contains("mafic-experiments"));
}

#[test]
fn manifest_unknown_external_dep_fires() {
    let cfg = LintConfig::workspace();
    let src = "[package]\nname = \"mafic-metrics\"\n\n[dependencies]\nserde = \"1\"\n";
    let found = lint_manifest("crates/metrics/Cargo.toml", src, &cfg);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, RuleId::Layering);
}

#[test]
fn manifest_allowed_edges_are_clean() {
    let cfg = LintConfig::workspace();
    let src = "[package]\nname = \"mafic-workload\"\n\n[dependencies]\nmafic.workspace = true\nmafic-netsim.workspace = true\nrand.workspace = true\n";
    assert!(lint_manifest("crates/workload/Cargo.toml", src, &cfg).is_empty());
}

#[test]
fn manifest_dev_dep_may_reach_lower_rank_only() {
    let cfg = LintConfig::workspace();
    // bench (rank 4) may dev-depend on mafic (rank 1)...
    let ok = "[package]\nname = \"mafic-bench\"\n\n[dev-dependencies]\nmafic.workspace = true\ncriterion.workspace = true\n";
    assert!(lint_manifest("crates/bench/Cargo.toml", ok, &cfg).is_empty());
    // ...but metrics (rank 1) may not dev-depend on workload (rank 2).
    let bad = "[package]\nname = \"mafic-metrics\"\n\n[dev-dependencies]\nmafic-workload.workspace = true\n";
    let found = lint_manifest("crates/metrics/Cargo.toml", bad, &cfg);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, RuleId::Layering);
}

#[test]
fn manifest_unknown_package_fires() {
    let cfg = LintConfig::workspace();
    let src = "[package]\nname = \"mafic-rogue\"\n";
    let found = lint_manifest("crates/rogue/Cargo.toml", src, &cfg);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, RuleId::Layering);
}

// ----------------------------------------------- each rule class, end-to-end

#[test]
fn every_rule_class_has_a_firing_fixture() {
    // Belt-and-braces: one fixture per RuleId (except none can be
    // missing from this file). Mirrors the --ci exit-code contract:
    // each violation class must be detectable on its own.
    let cases: Vec<(RuleId, Vec<(RuleId, u32)>)> = vec![
        (
            RuleId::Nondet,
            findings(LIB, "fn t() { let _ = Instant::now(); }"),
        ),
        (
            RuleId::StdoutPurity,
            findings(LIB, "fn t() { println!(\"x\"); }"),
        ),
        (
            RuleId::FloatOrd,
            findings(LIB, "fn t(a: f64, b: f64) { let _ = a.partial_cmp(&b); }"),
        ),
        (
            RuleId::UnsafeCode,
            findings(LIB, "fn t(p: *const u8) -> u8 { unsafe { *p } }"),
        ),
        (
            RuleId::LibAttrs,
            findings(
                "crates/netsim/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn x() {}",
            ),
        ),
        (
            RuleId::Pragma,
            findings(LIB, "fn x() {}\n// mafic-lint: allow(nondet)\n"),
        ),
    ];
    for (rule, found) in cases {
        assert_eq!(found.len(), 1, "{rule}: {found:?}");
        assert_eq!(found[0].0, rule);
    }
}
