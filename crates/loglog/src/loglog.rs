//! The Durand–Flajolet LogLog cardinality counter.
//!
//! A LogLog sketch splits the hash of each inserted item into a bucket index
//! (the leading `k` bits) and a suffix; each bucket register keeps the
//! maximum rank `ρ(suffix)` (position of the first 1-bit) observed. The
//! cardinality estimate is the geometric-mean combination
//! `α_m · m · 2^(avg register)`. Registers max-merge, which is what makes
//! the distributed set-union counting of the MAFIC pushback pipeline work.

use crate::hash::{mix64, rho};
use std::fmt;

/// Number of registers expressed as a power of two, `m = 2^k`.
///
/// Larger precision lowers the standard error (≈ `1.30 / sqrt(m)` for
/// LogLog) at the cost of `m` byte-sized registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Precision {
    /// 16 registers — toy sizes, large error; useful for tests.
    P4,
    /// 64 registers.
    P6,
    /// 256 registers.
    P8,
    /// 1024 registers — the default used by the pushback experiments.
    #[default]
    P10,
    /// 4096 registers.
    P12,
    /// 16384 registers.
    P14,
}

impl Precision {
    /// The exponent `k` such that `m = 2^k`.
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            Precision::P4 => 4,
            Precision::P6 => 6,
            Precision::P8 => 8,
            Precision::P10 => 10,
            Precision::P12 => 12,
            Precision::P14 => 14,
        }
    }

    /// Number of registers `m`.
    #[must_use]
    pub const fn registers(self) -> usize {
        1usize << self.bits()
    }

    /// All supported precisions, ascending; used by the ablation sweeps.
    #[must_use]
    pub const fn all() -> [Precision; 6] {
        [
            Precision::P4,
            Precision::P6,
            Precision::P8,
            Precision::P10,
            Precision::P12,
            Precision::P14,
        ]
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{} registers", self.bits())
    }
}

/// Error produced by sketch operations that combine incompatible sketches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchError {
    left: u32,
    right: u32,
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision mismatch: cannot merge 2^{} with 2^{} registers",
            self.left, self.right
        )
    }
}

impl std::error::Error for SketchError {}

/// A Durand–Flajolet LogLog cardinality sketch.
///
/// # Example
///
/// ```
/// use mafic_loglog::{LogLog, Precision};
///
/// let mut a = LogLog::new(Precision::P10);
/// let mut b = LogLog::new(Precision::P10);
/// for i in 0u64..10_000 {
///     a.insert_u64(i);
/// }
/// for i in 5_000u64..15_000 {
///     b.insert_u64(i);
/// }
/// let union = a.merged(&b).unwrap();
/// // |A ∪ B| = 15_000; LogLog at P10 has ~4% standard error.
/// assert!((union.estimate() - 15_000.0).abs() / 15_000.0 < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLog {
    precision: Precision,
    registers: Vec<u8>,
    inserts: u64,
}

impl LogLog {
    /// Creates an empty sketch with the given precision.
    #[must_use]
    pub fn new(precision: Precision) -> Self {
        LogLog {
            precision,
            registers: vec![0; precision.registers()],
            inserts: 0,
        }
    }

    /// The sketch precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of raw insert operations performed (not distinct items).
    #[must_use]
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Memory consumed by the register file in bytes.
    #[must_use]
    pub fn register_bytes(&self) -> usize {
        self.registers.len()
    }

    /// Read-only view of the registers (used by the max-merge protocol).
    #[must_use]
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Replaces the register file and insert count with checkpointed
    /// values (the write half of [`LogLog::registers`] /
    /// [`LogLog::inserts`]). The precision is construction-time
    /// configuration and is not part of the restorable state.
    ///
    /// # Errors
    ///
    /// Returns a message naming the mismatch when `registers` does not
    /// match this sketch's precision.
    pub fn restore_parts(&mut self, registers: &[u8], inserts: u64) -> Result<(), String> {
        if registers.len() != self.registers.len() {
            return Err(format!(
                "register count {} does not match precision {} ({} registers)",
                registers.len(),
                self.precision,
                self.registers.len()
            ));
        }
        self.registers.copy_from_slice(registers);
        self.inserts = inserts;
        Ok(())
    }

    /// Inserts an already well-mixed 64-bit hash value.
    ///
    /// Use this when the caller has hashed a composite key itself; for raw
    /// sequential identifiers prefer [`LogLog::insert_u64`], which mixes.
    pub fn insert_hash(&mut self, hash: u64) {
        let k = self.precision.bits();
        let bucket = (hash >> (64 - k)) as usize;
        let suffix_bits = 64 - k;
        let rank = rho(hash & ((1u64 << suffix_bits) - 1), suffix_bits);
        if rank > self.registers[bucket] {
            self.registers[bucket] = rank;
        }
        self.inserts += 1;
    }

    /// Mixes and inserts a 64-bit item (e.g. a packet identifier).
    pub fn insert_u64(&mut self, item: u64) {
        self.insert_hash(mix64(item));
    }

    /// Inserts a byte-slice item (hashed with FNV-1a + finalizer).
    pub fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(crate::hash::hash_bytes(item));
    }

    /// Returns `true` if no item has ever been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts == 0
    }

    /// Resets all registers to the empty state.
    pub fn clear(&mut self) {
        self.registers.fill(0);
        self.inserts = 0;
    }

    /// The LogLog bias-correction constant `α_m` for `m` registers.
    ///
    /// The asymptotic value is ≈ 0.39701; for the small register counts the
    /// tests use we apply the classic finite-m approximation.
    #[must_use]
    fn alpha(&self) -> f64 {
        // α_m = (Γ(−1/m)·(1 − 2^{1/m}) / ln 2)^{−m} → 0.39701 as m → ∞.
        // The correction below (from the original paper's analysis) is
        // adequate for m ≥ 16.
        let m = self.precision.registers() as f64;
        0.397_011_808 * (1.0 - 1.0 / (2.0 * m))
    }

    /// Estimates the number of distinct items inserted.
    ///
    /// Applies linear counting for the small-cardinality regime (when a
    /// large fraction of registers is still zero) so that the estimator is
    /// usable across the whole range the simulations exercise.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.inserts == 0 {
            return 0.0;
        }
        let m = self.precision.registers() as f64;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if zeros > 0 {
            // Linear counting is far more accurate while registers remain
            // empty; LogLog's geometric mean is badly biased there.
            let lc = m * (m / zeros as f64).ln();
            if lc < 2.5 * m {
                return lc;
            }
        }
        let sum: f64 = self.registers.iter().map(|&r| f64::from(r)).sum();
        self.alpha() * m * 2f64.powf(sum / m)
    }

    /// Max-merges `other` into `self` (distributed union).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError`] if the precisions differ.
    pub fn merge_from(&mut self, other: &LogLog) -> Result<(), SketchError> {
        if self.precision != other.precision {
            return Err(SketchError {
                left: self.precision.bits(),
                right: other.precision.bits(),
            });
        }
        for (dst, &src) in self.registers.iter_mut().zip(other.registers.iter()) {
            if src > *dst {
                *dst = src;
            }
        }
        self.inserts += other.inserts;
        Ok(())
    }

    /// Returns the max-merge of `self` and `other` as a new sketch.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError`] if the precisions differ.
    pub fn merged(&self, other: &LogLog) -> Result<LogLog, SketchError> {
        let mut out = self.clone();
        out.merge_from(other)?;
        Ok(out)
    }

    /// Estimated intersection cardinality via inclusion–exclusion:
    /// `|A ∩ B| = |A| + |B| − |A ∪ B|`, clamped at zero.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError`] if the precisions differ.
    pub fn intersection_estimate(&self, other: &LogLog) -> Result<f64, SketchError> {
        let union = self.merged(other)?.estimate();
        Ok((self.estimate() + other.estimate() - union).max(0.0))
    }
}

impl Default for LogLog {
    fn default() -> Self {
        LogLog::new(Precision::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = LogLog::new(Precision::P8);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn estimate_within_error_band() {
        for &n in &[1_000u64, 10_000, 100_000] {
            let mut s = LogLog::new(Precision::P10);
            for i in 0..n {
                s.insert_u64(i);
            }
            let est = s.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            // 1.30/sqrt(1024) ≈ 4%; allow 4 sigma.
            assert!(rel < 0.17, "n={n} est={est} rel={rel}");
        }
    }

    #[test]
    fn linear_counting_handles_small_cardinalities() {
        let mut s = LogLog::new(Precision::P10);
        for i in 0u64..50 {
            s.insert_u64(i);
        }
        let est = s.estimate();
        assert!((est - 50.0).abs() < 10.0, "small-range estimate {est}");
    }

    #[test]
    fn duplicate_inserts_do_not_grow_estimate() {
        let mut s = LogLog::new(Precision::P10);
        for _ in 0..100 {
            for i in 0u64..500 {
                s.insert_u64(i);
            }
        }
        let est = s.estimate();
        assert!((est - 500.0).abs() / 500.0 < 0.25, "est={est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogLog::new(Precision::P10);
        let mut b = LogLog::new(Precision::P10);
        let mut both = LogLog::new(Precision::P10);
        for i in 0u64..20_000 {
            a.insert_u64(i);
            both.insert_u64(i);
        }
        for i in 10_000u64..30_000 {
            b.insert_u64(i);
            both.insert_u64(i);
        }
        let merged = a.merged(&b).unwrap();
        assert_eq!(merged.registers(), both.registers());
    }

    #[test]
    fn merge_rejects_mismatched_precision() {
        let mut a = LogLog::new(Precision::P8);
        let b = LogLog::new(Precision::P10);
        let err = a.merge_from(&b).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn intersection_estimate_tracks_overlap() {
        let mut a = LogLog::new(Precision::P12);
        let mut b = LogLog::new(Precision::P12);
        for i in 0u64..40_000 {
            a.insert_u64(i);
        }
        for i in 20_000u64..60_000 {
            b.insert_u64(i);
        }
        let inter = a.intersection_estimate(&b).unwrap();
        // True intersection 20_000. Inclusion–exclusion amplifies sketch
        // error, so accept a generous band.
        assert!(
            (inter - 20_000.0).abs() / 20_000.0 < 0.5,
            "intersection {inter}"
        );
    }

    #[test]
    fn clear_resets_state() {
        let mut s = LogLog::new(Precision::P8);
        s.insert_u64(7);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn register_bytes_match_precision() {
        for p in Precision::all() {
            assert_eq!(LogLog::new(p).register_bytes(), p.registers());
        }
    }

    #[test]
    fn display_precision() {
        assert_eq!(Precision::P10.to_string(), "2^10 registers");
    }
}
