//! One function per paper figure panel.
//!
//! Each function runs the sweep that panel reports and returns a
//! [`FigureData`] whose rows mirror the paper's axes. The absolute
//! numbers come from our simulator, not the authors' NS-2 testbed; what
//! must match is the *shape* — who wins, the bands, the trends (see
//! EXPERIMENTS.md for the side-by-side record).

use crate::engine::{run_specs, EngineConfig};
use crate::figure::FigureData;
use crate::sweep::{figure_from_sweep, sweep, sweep_warm, SweepSeries};
use mafic::DefensePolicy;
use mafic_adversary::{AdversarySpec, StrategyKind};
use mafic_metrics::MetricsReport;
use mafic_netsim::SimTime;
use mafic_topology::TransitTopology;
use mafic_workload::{DetectionMode, NominalRate, ScenarioSpec};

/// The traffic-volume axis used by Figs. 3(a), 4(a), 5(a), 6(a), 7.
#[must_use]
pub fn vt_axis() -> Vec<f64> {
    vec![10.0, 30.0, 50.0, 70.0, 90.0, 110.0]
}

/// The TCP-share axis of Figs. 5(b)/6(b) (percent of flows that are TCP).
#[must_use]
pub fn gamma_axis() -> Vec<f64> {
    vec![35.0, 55.0, 75.0, 95.0]
}

/// The domain-size axis of Figs. 5(c)/6(c).
#[must_use]
pub fn domain_axis() -> Vec<f64> {
    vec![20.0, 40.0, 80.0, 120.0, 160.0]
}

/// The paper's three drop probabilities.
#[must_use]
pub fn pd_series() -> Vec<(String, f64)> {
    vec![
        ("Pd=90%".to_string(), 0.9),
        ("Pd=80%".to_string(), 0.8),
        ("Pd=70%".to_string(), 0.7),
    ]
}

fn spec_with_vt_pd(pd: f64, vt: f64, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        total_flows: vt as usize,
        drop_probability: pd,
        seed,
        ..ScenarioSpec::default()
    }
}

/// Runs the `(Pd × Vt)` sweep shared by Figs. 3(a), 4(a), 5(a), 6(a), 7.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn sweep_pd_vt(cfg: &EngineConfig) -> Result<Vec<SweepSeries>, String> {
    sweep(&pd_series(), &vt_axis(), cfg, |&pd, vt| {
        spec_with_vt_pd(pd, vt, 11)
    })
}

/// Runs the `(R × Vt)` sweep of Fig. 3(b).
///
/// # Errors
///
/// Propagates build/run errors.
pub fn sweep_rate_vt(cfg: &EngineConfig) -> Result<Vec<SweepSeries>, String> {
    let rates = [NominalRate::R100k, NominalRate::R500k, NominalRate::R1M]
        .map(|r| (r.label().to_string(), r));
    sweep(&rates, &vt_axis(), cfg, |&rate, vt| ScenarioSpec {
        total_flows: vt as usize,
        flow_rate_pps: rate.pps(),
        seed: 13,
        ..ScenarioSpec::default()
    })
}

/// Runs the `(Vt × Γ)` sweep of Figs. 5(b)/6(b).
///
/// # Errors
///
/// Propagates build/run errors.
pub fn sweep_vt_gamma(cfg: &EngineConfig) -> Result<Vec<SweepSeries>, String> {
    let vts = [30usize, 70, 100].map(|v| (format!("Vt={v}"), v));
    sweep(&vts, &gamma_axis(), cfg, |&vt, gamma_pct| ScenarioSpec {
        total_flows: vt,
        tcp_share: gamma_pct / 100.0,
        seed: 17,
        ..ScenarioSpec::default()
    })
}

/// Runs the `(Γ × N)` sweep of Figs. 5(c)/6(c).
///
/// # Errors
///
/// Propagates build/run errors.
pub fn sweep_gamma_domain(cfg: &EngineConfig) -> Result<Vec<SweepSeries>, String> {
    let gammas = [95.0f64, 75.0, 55.0, 35.0].map(|g| (format!("TCP={g:.0}%"), g));
    sweep(&gammas, &domain_axis(), cfg, |&gamma_pct, n| ScenarioSpec {
        total_flows: 50,
        tcp_share: gamma_pct / 100.0,
        n_routers: n as usize,
        seed: 19,
        ..ScenarioSpec::default()
    })
}

fn alpha(r: &MetricsReport) -> f64 {
    r.accuracy_pct
}
fn beta(r: &MetricsReport) -> f64 {
    r.traffic_reduction_pct
}
fn theta_p(r: &MetricsReport) -> f64 {
    r.false_positive_pct
}
fn theta_n(r: &MetricsReport) -> f64 {
    r.false_negative_pct
}
fn lr(r: &MetricsReport) -> f64 {
    r.legit_drop_pct
}

/// Fig. 3(a): dropping accuracy vs `Vt`, one series per `Pd`.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig3a(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 3(a)",
        "Attack packet dropping accuracy vs traffic volume",
        "Vt (flows)",
        "accuracy alpha (%)",
        &sweep_pd_vt(cfg)?,
        alpha,
    ))
}

/// Fig. 3(b): dropping accuracy vs `Vt`, one series per source rate `R`.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig3b(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 3(b)",
        "Attack packet dropping accuracy vs traffic volume",
        "Vt (flows)",
        "accuracy alpha (%)",
        &sweep_rate_vt(cfg)?,
        alpha,
    ))
}

/// Fig. 4(a): traffic reduction rate vs `Vt`, one series per `Pd`.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig4a(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 4(a)",
        "Traffic reduction rate vs traffic volume",
        "Vt (flows)",
        "traffic reduction beta (%)",
        &sweep_pd_vt(cfg)?,
        beta,
    ))
}

/// Fig. 4(b): victim-side flow bandwidth over time, one series per `Vt`.
///
/// The paper plots seconds 1–3, bracketing the attack (t = 1 s) and the
/// MAFIC response; we emit the offered-load series at the victim's
/// last-hop router over the same span.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig4b(cfg: &EngineConfig) -> Result<FigureData, String> {
    let mut fig = FigureData::new(
        "Fig. 4(b)",
        "Flow bandwidth at the victim over time",
        "time (s)",
        "bandwidth (B/s)",
    );
    let vts = [10usize, 30, 50];
    let specs = vts
        .iter()
        .map(|&vt| ScenarioSpec {
            total_flows: vt,
            seed: 23,
            ..ScenarioSpec::default()
        })
        .collect();
    for (vt, outcome) in vts.iter().zip(run_specs(specs, cfg.jobs)?) {
        let points = outcome
            .series
            .iter()
            .filter(|p| p.time_s >= 1.0 && p.time_s <= 3.0)
            .map(|p| (p.time_s, p.total_bps()))
            .collect();
        fig.push_series(format!("Vt={vt}"), points);
    }
    Ok(fig)
}

/// Fig. 5(a): false positive rate vs `Vt`, one series per `Pd`.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig5a(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 5(a)",
        "False positive rate vs traffic volume",
        "Vt (flows)",
        "false positive rate (%)",
        &sweep_pd_vt(cfg)?,
        theta_p,
    ))
}

/// Fig. 5(b): false positive rate vs TCP share, one series per `Vt`.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig5b(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 5(b)",
        "False positive rate vs percentage of TCP traffic",
        "TCP share (%)",
        "false positive rate (%)",
        &sweep_vt_gamma(cfg)?,
        theta_p,
    ))
}

/// Fig. 5(c): false positive rate vs domain size, one series per Γ.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig5c(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 5(c)",
        "False positive rate vs domain size",
        "N (routers)",
        "false positive rate (%)",
        &sweep_gamma_domain(cfg)?,
        theta_p,
    ))
}

/// Fig. 6(a): false negative rate vs `Vt`, one series per `Pd`.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig6a(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 6(a)",
        "False negative rate vs traffic volume",
        "Vt (flows)",
        "false negative rate (%)",
        &sweep_pd_vt(cfg)?,
        theta_n,
    ))
}

/// Fig. 6(b): false negative rate vs TCP share, one series per `Vt`.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig6b(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 6(b)",
        "False negative rate vs percentage of TCP traffic",
        "TCP share (%)",
        "false negative rate (%)",
        &sweep_vt_gamma(cfg)?,
        theta_n,
    ))
}

/// Fig. 6(c): false negative rate vs domain size, one series per Γ.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig6c(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 6(c)",
        "False negative rate vs domain size",
        "N (routers)",
        "false negative rate (%)",
        &sweep_gamma_domain(cfg)?,
        theta_n,
    ))
}

/// Fig. 7: legitimate-packet dropping rate vs `Vt`, one series per `Pd`.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig7(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(figure_from_sweep(
        "Fig. 7",
        "Legitimate packet dropping rate vs traffic volume",
        "Vt (flows)",
        "legit packet dropping rate Lr (%)",
        &sweep_pd_vt(cfg)?,
        lr,
    ))
}

/// The pushback-depth axis of Fig. 8: 0 (victim-domain-only, today's
/// single-domain behaviour) through the transit tier to the source
/// stubs.
#[must_use]
pub fn depth_axis() -> Vec<f64> {
    vec![0.0, 1.0, 2.0, 3.0]
}

/// The default multi-domain flood behind Fig. 8: three stub domains
/// (the victim's plus two remote) over a two-level transit chain, so
/// depth 3 pushes the defense all the way into the zombies' own stubs.
#[must_use]
pub fn fig8_spec(depth: u32) -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 36,
        tcp_share: 0.85,
        domains: 3,
        transit_topology: TransitTopology::Chain { depth: 2 },
        pushback_depth: depth,
        end: SimTime::from_secs_f64(6.0),
        seed: 29,
        ..ScenarioSpec::default()
    }
}

/// Runs the pushback-depth sweep shared by both Fig. 8 panels.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn sweep_pushback_depth(cfg: &EngineConfig) -> Result<Vec<SweepSeries>, String> {
    let series = vec![("chain(2)+stubs".to_string(), ())];
    sweep(&series, &depth_axis(), cfg, |(), depth| {
        fig8_spec(depth as u32)
    })
}

/// [`sweep_pushback_depth`] warm-started (`MAFIC_WARM_SWEEP=1`): the
/// depth knob is the escalation budget, first consulted when the
/// victim's coordinator triggers — strictly after the attack begins —
/// so every depth shares the pre-attack prefix byte-for-byte. Branching
/// at `attack_start` simulates that prefix once per trial instead of
/// once per grid cell, and the restore digest check keeps the shortcut
/// honest.
///
/// # Errors
///
/// Propagates build/run/restore errors.
pub fn sweep_pushback_depth_warm(cfg: &EngineConfig) -> Result<Vec<SweepSeries>, String> {
    let series = vec![("chain(2)+stubs".to_string(), ())];
    let branch_at = fig8_spec(0).attack_start;
    sweep_warm(&series, &depth_axis(), cfg, branch_at, |(), depth| {
        fig8_spec(depth as u32)
    })
}

/// Builds Fig. 8(a) — victim-side rates vs deployment depth — from a
/// finished depth sweep: the residual attack rate (suppression β's
/// complement, non-increasing in depth) beside the legitimate goodput
/// (which rises as deeper deployment decongests the transit links).
#[must_use]
pub fn fig8a_from_sweep(sweeps: &[SweepSeries]) -> FigureData {
    let mut fig = FigureData::new(
        "Fig. 8(a)",
        "Victim-side rates vs pushback depth",
        "pushback depth (domains upstream)",
        "rate at the victim (B/s)",
    );
    for s in sweeps {
        fig.push_series(
            format!("{} residual attack", s.label),
            s.extract(|r| r.residual_attack_bps),
        );
        fig.push_series(
            format!("{} legit goodput", s.label),
            s.extract(|r| r.legit_goodput_bps),
        );
    }
    fig
}

/// Builds Fig. 8(b) — collateral damage vs deployment depth — from a
/// finished depth sweep: total legitimate data loss (defense drops +
/// flood-congestion queue losses) beside the paper's ATR-only `Lr`.
#[must_use]
pub fn fig8b_from_sweep(sweeps: &[SweepSeries]) -> FigureData {
    let mut fig = FigureData::new(
        "Fig. 8(b)",
        "Collateral damage vs pushback depth",
        "pushback depth (domains upstream)",
        "legitimate loss (%)",
    );
    for s in sweeps {
        fig.push_series(
            format!("{} collateral", s.label),
            s.extract(|r| r.collateral_pct),
        );
        fig.push_series(format!("{} Lr", s.label), s.extract(lr));
    }
    fig
}

/// Fig. 8(a): residual attack rate at the victim vs deployment depth.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig8a(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(fig8a_from_sweep(&sweep_pushback_depth(cfg)?))
}

/// Fig. 8(b): collateral damage vs deployment depth.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig8b(cfg: &EngineConfig) -> Result<FigureData, String> {
    Ok(fig8b_from_sweep(&sweep_pushback_depth(cfg)?))
}

/// The participation-fraction axis of Fig. 9: from a victim-domain-only
/// deployment (nobody upstream cooperates) to the full federation.
#[must_use]
pub fn participation_axis() -> Vec<f64> {
    vec![0.0, 0.25, 0.5, 0.75, 1.0]
}

/// The victim-bound byte-rate cap of the Fig. 9 rate-limit transit
/// policy: 250 kB/s, one tenth of an inter-domain link.
pub const FIG9_RATE_LIMIT_BPS: f64 = 250_000.0;

/// The transit-tier policies compared by Fig. 9: stubs always run full
/// MAFIC; transit ASes run the full dropper, the proportional baseline,
/// or the O(1) aggregate rate limit.
#[must_use]
pub fn transit_policy_series() -> Vec<(String, DefensePolicy)> {
    vec![
        ("transit=mafic".to_string(), DefensePolicy::FullMafic),
        (
            "transit=proportional".to_string(),
            DefensePolicy::ProportionalDrop,
        ),
        (
            "transit=rate-limit".to_string(),
            DefensePolicy::AggregateRateLimit {
                limit_bytes_per_sec: FIG9_RATE_LIMIT_BPS,
            },
        ),
    ]
}

/// The partial-deployment flood behind Fig. 9: the Fig. 8 multi-domain
/// scenario with the full escalation budget, a per-domain transit
/// policy, and the given fraction of non-victim domains participating.
#[must_use]
pub fn fig9_spec(fraction: f64, transit: DefensePolicy) -> ScenarioSpec {
    ScenarioSpec {
        pushback_depth: 3,
        participation_fraction: fraction,
        transit_policy: Some(transit),
        seed: 31,
        ..fig8_spec(3)
    }
}

/// Runs the participation-fraction × transit-policy sweep shared by
/// both Fig. 9 panels.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn sweep_partial_deployment(cfg: &EngineConfig) -> Result<Vec<SweepSeries>, String> {
    sweep(
        &transit_policy_series(),
        &participation_axis(),
        cfg,
        |&transit, fraction| fig9_spec(fraction, transit),
    )
}

/// Builds Fig. 9(a) — victim-side rates vs participation fraction —
/// from a finished partial-deployment sweep: the residual attack rate
/// (non-increasing in coverage) beside the legitimate goodput.
#[must_use]
pub fn fig9a_from_sweep(sweeps: &[SweepSeries]) -> FigureData {
    let mut fig = FigureData::new(
        "Fig. 9(a)",
        "Victim-side rates vs participation fraction",
        "participation fraction",
        "rate at the victim (B/s)",
    );
    for s in sweeps {
        fig.push_series(
            format!("{} residual attack", s.label),
            s.extract(|r| r.residual_attack_bps),
        );
        fig.push_series(
            format!("{} legit goodput", s.label),
            s.extract(|r| r.legit_goodput_bps),
        );
    }
    fig
}

/// Builds Fig. 9(b) — collateral damage vs participation fraction —
/// from a finished partial-deployment sweep.
#[must_use]
pub fn fig9b_from_sweep(sweeps: &[SweepSeries]) -> FigureData {
    let mut fig = FigureData::new(
        "Fig. 9(b)",
        "Collateral damage vs participation fraction",
        "participation fraction",
        "legitimate loss (%)",
    );
    for s in sweeps {
        fig.push_series(
            format!("{} collateral", s.label),
            s.extract(|r| r.collateral_pct),
        );
        fig.push_series(format!("{} Lr", s.label), s.extract(lr));
    }
    fig
}

/// The trust-budget axis of Fig. 10: fresh installs each requester may
/// cause at an upstream domain, from "trust nobody" to generous.
#[must_use]
pub fn trust_budget_axis() -> Vec<f64> {
    vec![0.0, 1.0, 2.0, 4.0]
}

/// The honest Fig. 10 scenario: the Fig. 8 multi-domain flood with the
/// full escalation budget, swept over the upstream trust budget. At
/// budget 0 every escalation is denied (the defense stays in the victim
/// domain); any positive budget admits the honest cascade.
#[must_use]
pub fn fig10_honest_spec(trust_budget: u32) -> ScenarioSpec {
    ScenarioSpec {
        trust_budget,
        ..fig8_spec(3)
    }
}

/// The malicious Fig. 10 scenario — same topology, no real flood: the
/// victim's own provider (domain 1) is compromised and spams forged
/// `Request` envelopes at its upstream, claiming a flood toward the
/// victim that does not exist, trying to get the victim's legitimate
/// traffic dropped. The zombies only trickle (5% load, below every
/// threshold) and detection is off, so whatever legitimate goodput the
/// victim loses is the malicious pushback's doing. With `attested` the
/// trust ledgers corroborate claims against their own meters (the
/// defended configuration); without, any authorized requester is
/// believed — the unguarded legacy behaviour whose goodput damage the
/// figure exposes.
#[must_use]
pub fn fig10_malicious_spec(trust_budget: u32, attested: bool) -> ScenarioSpec {
    ScenarioSpec {
        trust_budget,
        attestation_fraction: if attested { 0.25 } else { 0.0 },
        attack_load_factor: 0.05,
        detection: DetectionMode::Off,
        malicious_pushback: Some(1),
        seed: 37,
        ..fig8_spec(3)
    }
}

/// The three Fig. 10 configurations, as `(label, spec builder input)`.
fn fig10_series() -> Vec<(String, Fig10Series)> {
    vec![
        ("honest cascade".to_string(), Fig10Series::Honest),
        (
            "malicious, attested".to_string(),
            Fig10Series::Malicious { attested: true },
        ),
        (
            "malicious, unguarded".to_string(),
            Fig10Series::Malicious { attested: false },
        ),
    ]
}

/// One Fig. 10 series selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fig10Series {
    Honest,
    Malicious { attested: bool },
}

fn fig10_spec(series: Fig10Series, trust_budget: u32) -> ScenarioSpec {
    match series {
        Fig10Series::Honest => fig10_honest_spec(trust_budget),
        Fig10Series::Malicious { attested } => fig10_malicious_spec(trust_budget, attested),
    }
}

/// One evaluated cell of the Fig. 10 grid.
#[derive(Debug)]
pub struct Fig10Cell {
    /// Series label (`honest cascade`, `malicious, attested`, …).
    pub label: String,
    /// The swept trust budget.
    pub budget: f64,
    /// The cell's full run outcome (report + control-plane counters).
    pub outcome: mafic_workload::RunOutcome,
}

/// Runs the `(requester honesty × trust budget)` grid once — both
/// Fig. 10 panels and the denial tables derive from the same outcomes.
/// One deterministic run per cell: the control-plane counters (denials
/// by reason, stand-down latency) are not trial-averageable, so
/// Fig. 10 is a single-seed figure; the engine still fans the grid
/// across `MAFIC_JOBS` workers, byte-identical at any count.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn run_malicious_pushback_grid(cfg: &EngineConfig) -> Result<Vec<Fig10Cell>, String> {
    let series = fig10_series();
    let budgets = trust_budget_axis();
    let mut meta = Vec::new();
    let mut specs = Vec::new();
    for (label, s) in &series {
        for &budget in &budgets {
            meta.push((label.clone(), budget));
            specs.push(fig10_spec(*s, budget as u32));
        }
    }
    let outcomes = run_specs(specs, cfg.jobs)?;
    Ok(meta
        .into_iter()
        .zip(outcomes)
        .map(|((label, budget), outcome)| Fig10Cell {
            label,
            budget,
            outcome,
        })
        .collect())
}

/// Extracts `(budget, metric)` points for one series label.
fn fig10_points(
    cells: &[Fig10Cell],
    label: &str,
    metric: fn(&MetricsReport) -> f64,
) -> Vec<(f64, f64)> {
    cells
        .iter()
        .filter(|c| c.label == label)
        .map(|c| (c.budget, metric(&c.outcome.report)))
        .collect()
}

/// Builds Fig. 10(a) — the honest cascade under trust budgets — from a
/// finished grid: residual attack rate (every escalation denied at
/// budget 0; non-increasing as budget admits the cascade) beside the
/// victim's legitimate goodput.
#[must_use]
pub fn fig10a_from_grid(cells: &[Fig10Cell]) -> FigureData {
    let mut fig = FigureData::new(
        "Fig. 10(a)",
        "Honest cascade vs upstream trust budget",
        "trust budget (installs per requester)",
        "rate at the victim (B/s)",
    );
    let label = "honest cascade";
    fig.push_series(
        format!("{label} residual attack"),
        fig10_points(cells, label, |r| r.residual_attack_bps),
    );
    fig.push_series(
        format!("{label} legit goodput"),
        fig10_points(cells, label, |r| r.legit_goodput_bps),
    );
    fig
}

/// Builds Fig. 10(b) — malicious pushback vs attestation — from a
/// finished grid: the victim's legitimate goodput with the trust
/// ledgers corroborating claims (flat: forged requests are denied)
/// against the unguarded configuration (goodput falls once the budget
/// lets the forged install through).
#[must_use]
pub fn fig10b_from_grid(cells: &[Fig10Cell]) -> FigureData {
    let mut fig = FigureData::new(
        "Fig. 10(b)",
        "Victim goodput under malicious pushback",
        "trust budget (installs per requester)",
        "legit goodput at the victim (B/s)",
    );
    for label in ["malicious, attested", "malicious, unguarded"] {
        fig.push_series(
            format!("{label} goodput"),
            fig10_points(cells, label, |r| r.legit_goodput_bps),
        );
        fig.push_series(format!("{label} Lr"), fig10_points(cells, label, lr));
    }
    fig
}

/// Renders the control-plane denial tables of Fig. 10 from the same
/// grid the panels use: requests, denials by reason, installs granted,
/// and the stand-down latency per cell.
#[must_use]
pub fn fig10_denial_summary(cells: &[Fig10Cell]) -> String {
    let mut out = String::new();
    for cell in cells {
        out.push_str(&mafic_metrics::control_table(
            &format!("Control plane @ {}, budget {}", cell.label, cell.budget),
            &cell.outcome.control,
        ));
    }
    out
}

/// Renders the per-policy deployment-cost table at full participation:
/// one fully deployed run per transit policy (fanned across the
/// engine), each reporting table state bytes and timer events per
/// policy label.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn fig9_cost_summary(cfg: &EngineConfig) -> Result<String, String> {
    let series = transit_policy_series();
    let specs = series
        .iter()
        .map(|&(_, transit)| fig9_spec(1.0, transit))
        .collect();
    let outcomes = run_specs(specs, cfg.jobs)?;
    let mut out = String::new();
    for ((label, _), outcome) in series.iter().zip(&outcomes) {
        out.push_str(&mafic_metrics::cost_table(
            &format!("Policy cost proxies @ full participation, {label}"),
            &outcome.policy_costs,
        ));
    }
    Ok(out)
}

/// The closed-loop strategies Fig. 11 sweeps, plus the open-loop
/// baseline (`None`): every adaptive series must do at least as much
/// damage as the static flood it adapts from, at the same send budget.
#[must_use]
pub fn adversary_strategy_series() -> Vec<(String, Option<StrategyKind>)> {
    vec![
        ("open loop".to_string(), None),
        (
            "rotation".to_string(),
            // Churns cohorts every 4 intervals — well inside the
            // defense's 12-interval lease, so paused cohorts drain the
            // meters into a stand-down and resume against a flushed
            // filter table.
            Some(StrategyKind::SourceRotation {
                period_intervals: 4,
                active_fraction: 0.5,
            }),
        ),
        (
            "attestation".to_string(),
            // Steps the aggregate down toward the attestation floor
            // whenever losses bite, trading rate for corroboration
            // failures upstream.
            Some(StrategyKind::AttestationShaping {
                step_milli: 150,
                floor_milli: 250,
            }),
        ),
        (
            "pulse".to_string(),
            // Period-locked to the trigger hysteresis: one dark
            // interval per K-interval cycle, survivors boosted to keep
            // the budget flat.
            Some(StrategyKind::PulseTuning { boost_milli: 0 }),
        ),
        (
            "carpet".to_string(),
            // Concentrates the whole budget on one sibling stub at a
            // time, rotating before any single ingress profile settles.
            Some(StrategyKind::CarpetBombing {
                period_intervals: 2,
            }),
        ),
    ]
}

/// The Fig. 11 scenario: the Fig. 8 multi-domain flood under a given
/// trust budget, with the subsidence guard's source floor armed and an
/// optional closed-loop adversary driving the attack sources. `None`
/// keeps the open-loop senders untouched — byte-identical to a
/// pre-adversary run of the same spec.
#[must_use]
pub fn fig11_spec(strategy: Option<StrategyKind>, trust_budget: u32) -> ScenarioSpec {
    ScenarioSpec {
        trust_budget,
        // A healthy victim interval sees well over 20 distinct sources
        // here (36 flows plus ACK traffic); an evasion cohort parks the
        // flood on a handful. Positive floor = secondary evidence armed.
        subsidence_source_floor: 6.0,
        adversary: strategy.map(AdversarySpec::with_strategy),
        seed: 41,
        ..fig8_spec(3)
    }
}

/// One evaluated cell of the Fig. 11 grid.
#[derive(Debug)]
pub struct Fig11Cell {
    /// Strategy series label (`open loop`, `rotation`, …).
    pub label: String,
    /// The swept trust budget.
    pub budget: f64,
    /// The cell's full run outcome.
    pub outcome: mafic_workload::RunOutcome,
}

/// Runs the `(attack strategy × trust budget)` grid once — both Fig. 11
/// panels, the best-response summary, and the collateral cost tables
/// derive from the same outcomes. Single-seed per cell, like Fig. 10:
/// the closed feedback loop makes per-trial outcomes non-averageable
/// (each trial is a different *game*, not a noisy sample of one), and
/// the engine still fans the grid across `MAFIC_JOBS` workers,
/// byte-identical at any count.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn run_adaptive_adversary_grid(cfg: &EngineConfig) -> Result<Vec<Fig11Cell>, String> {
    let series = adversary_strategy_series();
    let budgets = trust_budget_axis();
    let mut meta = Vec::new();
    let mut specs = Vec::new();
    for (label, strategy) in &series {
        for &budget in &budgets {
            meta.push((label.clone(), budget));
            specs.push(fig11_spec(*strategy, budget as u32));
        }
    }
    let outcomes = run_specs(specs, cfg.jobs)?;
    Ok(meta
        .into_iter()
        .zip(outcomes)
        .map(|((label, budget), outcome)| Fig11Cell {
            label,
            budget,
            outcome,
        })
        .collect())
}

/// Extracts `(budget, metric)` points for one Fig. 11 series label.
fn fig11_points(
    cells: &[Fig11Cell],
    label: &str,
    metric: fn(&MetricsReport) -> f64,
) -> Vec<(f64, f64)> {
    cells
        .iter()
        .filter(|c| c.label == label)
        .map(|c| (c.budget, metric(&c.outcome.report)))
        .collect()
}

/// Builds Fig. 11(a) — the residual-attack surface — from a finished
/// grid: residual attack rate at the victim per strategy, across the
/// trust budget. Every adaptive series sits at or above the open-loop
/// baseline; the gap is what closing the loop buys the attacker.
#[must_use]
pub fn fig11a_from_grid(cells: &[Fig11Cell]) -> FigureData {
    let mut fig = FigureData::new(
        "Fig. 11(a)",
        "Residual attack rate per adaptive strategy",
        "trust budget (installs per requester)",
        "residual attack at the victim (B/s)",
    );
    for (label, _) in adversary_strategy_series() {
        fig.push_series(
            format!("{label} residual attack"),
            fig11_points(cells, &label, |r| r.residual_attack_bps),
        );
    }
    fig
}

/// Builds Fig. 11(b) — what the adaptation costs the bystanders — from
/// a finished grid: the victim's legitimate goodput per strategy beside
/// the mean distinct-source cardinality its flood presents (the
/// subsidence guard's secondary evidence; rotation parks it low).
#[must_use]
pub fn fig11b_from_grid(cells: &[Fig11Cell]) -> FigureData {
    let mut fig = FigureData::new(
        "Fig. 11(b)",
        "Victim goodput and observed sources per adaptive strategy",
        "trust budget (installs per requester)",
        "legit goodput (B/s) / distinct sources",
    );
    for (label, _) in adversary_strategy_series() {
        fig.push_series(
            format!("{label} goodput"),
            fig11_points(cells, &label, |r| r.legit_goodput_bps),
        );
        fig.push_series(
            format!("{label} sources"),
            fig11_points(cells, &label, |r| r.victim_source_cardinality),
        );
    }
    fig
}

/// Renders the best-response table of Fig. 11 from the grid: per trust
/// budget, the strategy that leaves the most attack traffic standing at
/// the victim, with its margin over the open-loop baseline.
#[must_use]
pub fn fig11_best_response_summary(cells: &[Fig11Cell]) -> String {
    let mut out = String::from("Attacker best response per trust budget\n");
    for &budget in &trust_budget_axis() {
        let open_loop = cells
            .iter()
            .find(|c| c.label == "open loop" && c.budget == budget)
            .map_or(0.0, |c| c.outcome.report.residual_attack_bps);
        let best = cells.iter().filter(|c| c.budget == budget).max_by(|a, b| {
            a.outcome
                .report
                .residual_attack_bps
                .total_cmp(&b.outcome.report.residual_attack_bps)
        });
        if let Some(best) = best {
            let residual = best.outcome.report.residual_attack_bps;
            out.push_str(&format!(
                "  budget {budget:>3}: {:<12} {residual:>10.0} B/s residual \
                 (open loop {open_loop:>10.0} B/s, margin {:>+8.0} B/s)\n",
                best.label,
                residual - open_loop,
            ));
        }
    }
    out
}

/// Renders the per-policy cost tables (with the collateral attribution
/// columns) for every Fig. 11 cell at the largest trust budget — the
/// configuration where the defense fights hardest and the split between
/// filter-caused and congestion-caused legitimate losses matters most.
#[must_use]
pub fn fig11_cost_summary(cells: &[Fig11Cell]) -> String {
    let max_budget = trust_budget_axis().last().copied().unwrap_or_default();
    let mut out = String::new();
    for cell in cells.iter().filter(|c| c.budget == max_budget) {
        out.push_str(&mafic_metrics::cost_table(
            &format!(
                "Policy costs @ {}, budget {} (filtered vs queue legit drops)",
                cell.label, cell.budget
            ),
            &cell.outcome.policy_costs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_match_paper_ranges() {
        assert_eq!(vt_axis().first(), Some(&10.0));
        assert_eq!(vt_axis().last(), Some(&110.0));
        assert_eq!(gamma_axis(), vec![35.0, 55.0, 75.0, 95.0]);
        assert_eq!(domain_axis().last(), Some(&160.0));
        assert_eq!(pd_series().len(), 3);
        assert_eq!(depth_axis(), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn fig8_spec_is_a_valid_multi_domain_flood() {
        for depth in 0..=3 {
            let spec = fig8_spec(depth);
            assert!(spec.validate().is_ok(), "depth {depth}");
            assert_eq!(spec.domains, 3);
            assert_eq!(spec.pushback_depth, depth);
        }
    }

    #[test]
    fn fig9_specs_are_valid_across_the_whole_grid() {
        assert_eq!(participation_axis().first(), Some(&0.0));
        assert_eq!(participation_axis().last(), Some(&1.0));
        assert_eq!(transit_policy_series().len(), 3);
        for (label, transit) in transit_policy_series() {
            for &fraction in &participation_axis() {
                let spec = fig9_spec(fraction, transit);
                assert!(
                    spec.validate().is_ok(),
                    "{label} at fraction {fraction} must validate"
                );
                assert_eq!(spec.pushback_depth, 3, "full escalation budget");
                assert_eq!(spec.transit_policy, Some(transit));
            }
        }
    }

    #[test]
    fn fig10_specs_are_valid_across_the_whole_grid() {
        assert_eq!(trust_budget_axis().first(), Some(&0.0));
        for &budget in &trust_budget_axis() {
            let honest = fig10_honest_spec(budget as u32);
            assert!(honest.validate().is_ok(), "honest @ {budget}");
            assert_eq!(honest.trust_budget, budget as u32);
            assert!(honest.malicious_pushback.is_none());
            for attested in [true, false] {
                let malicious = fig10_malicious_spec(budget as u32, attested);
                assert!(malicious.validate().is_ok(), "malicious @ {budget}");
                assert_eq!(malicious.malicious_pushback, Some(1));
                assert_eq!(malicious.detection, DetectionMode::Off);
                assert_eq!(
                    malicious.attestation_fraction > 0.0,
                    attested,
                    "attestation flag must map to the fraction"
                );
            }
        }
    }

    #[test]
    fn fig11_specs_are_valid_across_the_whole_grid() {
        let series = adversary_strategy_series();
        assert_eq!(series.len(), 5, "open loop + four adaptive strategies");
        assert_eq!(series[0].1, None, "the baseline comes first");
        for (label, strategy) in &series {
            for &budget in &trust_budget_axis() {
                let spec = fig11_spec(*strategy, budget as u32);
                assert!(spec.validate().is_ok(), "{label} @ {budget} must validate");
                assert_eq!(spec.adversary.is_some(), strategy.is_some());
                assert!(
                    spec.subsidence_source_floor > 0.0,
                    "the source floor arms the subsidence guard"
                );
            }
        }
        // Every adaptive cell rides the same workload spec as the open
        // loop — only the adversary block differs, so residual deltas
        // are attributable to the closed loop alone.
        let mut open = fig11_spec(None, 2);
        let rotation = fig11_spec(series[1].1, 2);
        open.adversary = rotation.adversary;
        assert_eq!(open, rotation);
    }

    // Full-figure runs live in the integration tests and binaries; here
    // we only verify the smallest panel end to end.
    #[test]
    fn fig4b_produces_time_series_between_1_and_3_seconds() {
        let fig = fig4b(&EngineConfig::default()).unwrap();
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert!(!s.points.is_empty(), "series {} empty", s.label);
            for &(t, _) in &s.points {
                assert!((1.0..=3.0).contains(&t));
            }
        }
    }
}
