//! Per-domain defense policies for heterogeneous, partially deployed
//! pushback.
//!
//! The paper evaluates one defense — full MAFIC probing — at every
//! Attack Transit Router. Real deployments are messier: transit ASes
//! may only afford a cheap aggregate rate limit, some domains run the
//! older proportional dropper, and many do not cooperate at all (the
//! placement/coverage question of El Defrawy et al. and Li et al.).
//! [`DefensePolicy`] names what one domain boundary runs; the workload
//! layer resolves one policy per domain (explicit overrides, a
//! transit-tier default, and a seeded participation draw) and installs
//! the matching filter type at that domain's ATRs.
//!
//! Non-participating domains install *nothing*: pushback requests skip
//! over them to the nearest participating domain upstream, while the
//! request packets (and the flood) still route *through* their links —
//! exactly the coverage gap partial-deployment studies measure.

use crate::baseline::DropPolicy;
use std::fmt;

/// The defense a single domain boundary deploys at its ATRs.
///
/// # Examples
///
/// ```
/// use mafic::DefensePolicy;
///
/// // A cheap transit policy: cap victim-bound aggregate at 250 kB/s.
/// let transit = DefensePolicy::AggregateRateLimit {
///     limit_bytes_per_sec: 250_000.0,
/// };
/// assert!(transit.participating());
/// assert!(transit.validate().is_ok());
/// assert_eq!(transit.label(), "rate-limit");
///
/// // A domain that opted out of the pushback federation entirely.
/// assert!(!DefensePolicy::NonParticipating.participating());
///
/// // Rate limits must be positive and finite.
/// let bad = DefensePolicy::AggregateRateLimit {
///     limit_bytes_per_sec: 0.0,
/// };
/// assert!(bad.validate().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefensePolicy {
    /// The paper's full adaptive dropper: SFT/NFT/PDT tables, probe
    /// bursts, per-flow verdicts ([`crate::MaficFilter`]).
    FullMafic,
    /// Uniform proportional dropping of victim-bound packets, the `[2]`
    /// baseline ([`crate::ProportionalFilter`]). No per-flow state
    /// beyond drop diagnostics, no probes, no timers.
    ProportionalDrop,
    /// A token-bucket cap on the victim-bound *aggregate*
    /// ([`crate::RateLimitFilter`]): O(1) state, no per-flow tables at
    /// all — the cheapest policy a transit AS can deploy.
    AggregateRateLimit {
        /// Sustained victim-bound byte rate admitted while active.
        limit_bytes_per_sec: f64,
    },
    /// The domain does not cooperate: no filters, no coordinator, no
    /// meters. Escalation requests skip over it (routing through its
    /// links) to the nearest participating domain upstream.
    NonParticipating,
}

impl DefensePolicy {
    /// True if the domain takes part in the pushback federation (installs
    /// filters and answers escalation requests).
    #[must_use]
    pub fn participating(self) -> bool {
        !matches!(self, DefensePolicy::NonParticipating)
    }

    /// Short stable label used by cost reports and figure legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DefensePolicy::FullMafic => "mafic",
            DefensePolicy::ProportionalDrop => "proportional",
            DefensePolicy::AggregateRateLimit { .. } => "rate-limit",
            DefensePolicy::NonParticipating => "none",
        }
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(self) -> Result<(), String> {
        if let DefensePolicy::AggregateRateLimit {
            limit_bytes_per_sec,
        } = self
        {
            if !limit_bytes_per_sec.is_finite() || limit_bytes_per_sec <= 0.0 {
                return Err(format!(
                    "rate-limit policy needs a finite positive limit, got {limit_bytes_per_sec}"
                ));
            }
        }
        Ok(())
    }
}

impl From<DropPolicy> for DefensePolicy {
    /// Maps the paper's single-domain drop-policy axis onto the
    /// per-domain policy surface (the homogeneous special case).
    fn from(policy: DropPolicy) -> Self {
        match policy {
            DropPolicy::Mafic => DefensePolicy::FullMafic,
            DropPolicy::Proportional => DefensePolicy::ProportionalDrop,
        }
    }
}

impl fmt::Display for DefensePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefensePolicy::AggregateRateLimit {
                limit_bytes_per_sec,
            } => {
                write!(f, "rate-limit({limit_bytes_per_sec:.0} B/s)")
            }
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participation_flags() {
        assert!(DefensePolicy::FullMafic.participating());
        assert!(DefensePolicy::ProportionalDrop.participating());
        assert!(DefensePolicy::AggregateRateLimit {
            limit_bytes_per_sec: 1.0
        }
        .participating());
        assert!(!DefensePolicy::NonParticipating.participating());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DefensePolicy::FullMafic.label(), "mafic");
        assert_eq!(DefensePolicy::ProportionalDrop.label(), "proportional");
        assert_eq!(
            DefensePolicy::AggregateRateLimit {
                limit_bytes_per_sec: 9.0
            }
            .label(),
            "rate-limit"
        );
        assert_eq!(DefensePolicy::NonParticipating.label(), "none");
    }

    #[test]
    fn drop_policy_maps_to_the_homogeneous_case() {
        assert_eq!(
            DefensePolicy::from(DropPolicy::Mafic),
            DefensePolicy::FullMafic
        );
        assert_eq!(
            DefensePolicy::from(DropPolicy::Proportional),
            DefensePolicy::ProportionalDrop
        );
    }

    #[test]
    fn rate_limit_validation() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                DefensePolicy::AggregateRateLimit {
                    limit_bytes_per_sec: bad
                }
                .validate()
                .is_err(),
                "{bad} must be rejected"
            );
        }
        assert!(DefensePolicy::AggregateRateLimit {
            limit_bytes_per_sec: 1e6
        }
        .validate()
        .is_ok());
        assert!(DefensePolicy::NonParticipating.validate().is_ok());
    }

    #[test]
    fn display_includes_the_limit() {
        let p = DefensePolicy::AggregateRateLimit {
            limit_bytes_per_sec: 250_000.0,
        };
        assert_eq!(p.to_string(), "rate-limit(250000 B/s)");
        assert_eq!(DefensePolicy::FullMafic.to_string(), "mafic");
    }
}
