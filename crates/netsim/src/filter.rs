//! Packet filters — the router-resident hook MAFIC attaches to.
//!
//! A filter sees every packet that arrives at its node (before routing or
//! local delivery) and returns a [`FilterAction`]. It may also emit new
//! packets (MAFIC's duplicate-ACK probes), schedule timers (the 2×RTT
//! decision deadline), and record statistics notes — all through a
//! command buffer ([`FilterCtx`]) that the simulator executes after the
//! filter returns, so filters never need a reference into the simulator.

use crate::event::FilterControl;
use crate::flows::FlowId;
use crate::ids::{LinkId, NodeId};
use crate::packet::{DropReason, Packet};
use crate::time::{SimDuration, SimTime};
use mafic_obs::{SnapError, SnapReader, SnapWriter};
use std::any::Any;

/// Verdict on a single packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterAction {
    /// Let the packet continue (next filter, then routing/delivery).
    Forward,
    /// Discard the packet, recording the given reason.
    Drop(DropReason),
}

/// Where a packet arrived from, and whether its destination is attached to
/// this node — context a filter may condition on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketEnv {
    /// The link the packet arrived on; `None` if injected locally (by an
    /// agent or filter on this node).
    pub via_link: Option<LinkId>,
    /// True if the destination address is bound to an agent on this node.
    pub dst_is_local: bool,
    /// The packet's interned flow handle, minted once at node arrival so
    /// every filter in the chain indexes its tables without re-hashing
    /// the 4-tuple.
    pub flow: FlowId,
}

/// Statistics note a filter can attach to the global collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatNote {
    /// A defense-active filter examined a victim-bound packet ("arrived at
    /// the ATR" in the paper's accounting).
    AtrSeen,
    /// A probe burst was sent toward a flow source.
    ProbeSent,
    /// A flow was moved to the Nice Flow Table.
    FlowDeclaredNice,
    /// A flow was moved to the Permanently Drop Table.
    FlowDeclaredMalicious,
}

/// Commands a filter queues for the simulator to execute.
#[derive(Debug)]
pub(crate) enum FilterCommand {
    EmitPacket(Packet),
    ScheduleTimer {
        filter_index: usize,
        delay: SimDuration,
        token: u64,
    },
    ScheduleFlowTimer {
        filter_index: usize,
        delay: SimDuration,
        flow: FlowId,
        kind: u16,
    },
    Note {
        note: StatNote,
        flow: Option<crate::packet::FlowKey>,
    },
}

/// Execution context handed to filter callbacks.
///
/// All effects are buffered and applied by the simulator after the
/// callback returns, in order.
#[derive(Debug)]
pub struct FilterCtx<'a> {
    now: SimTime,
    node: NodeId,
    filter_index: usize,
    next_packet_id: &'a mut u64,
    commands: &'a mut Vec<FilterCommand>,
}

impl<'a> FilterCtx<'a> {
    pub(crate) fn new(
        now: SimTime,
        node: NodeId,
        filter_index: usize,
        next_packet_id: &'a mut u64,
        commands: &'a mut Vec<FilterCommand>,
    ) -> Self {
        FilterCtx {
            now,
            node,
            filter_index,
            next_packet_id,
            commands,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this filter is installed on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Allocates a fresh domain-unique packet id (for emitted probes).
    pub fn fresh_packet_id(&mut self) -> u64 {
        let id = *self.next_packet_id;
        *self.next_packet_id += 1;
        id
    }

    /// Emits a packet from this node; it is routed like any transit packet
    /// but does *not* re-enter this node's filter chain.
    pub fn emit_packet(&mut self, packet: Packet) {
        self.commands.push(FilterCommand::EmitPacket(packet));
    }

    /// Schedules `on_timer(token)` on this filter after `delay`.
    ///
    /// Legacy token path through the global event heap; per-flow timers
    /// should use [`FilterCtx::schedule_flow_timer`], which goes through
    /// the timer wheel.
    pub fn schedule_timer(&mut self, delay: SimDuration, token: u64) {
        self.commands.push(FilterCommand::ScheduleTimer {
            filter_index: self.filter_index,
            delay,
            token,
        });
    }

    /// Schedules `on_flow_timer(flow, kind)` on this filter after `delay`.
    ///
    /// Flow timers carry the interned [`FlowId`] directly and are managed
    /// by the simulator's hierarchical timer wheel: O(1) to arm, fired in
    /// `(deadline, arming order)` — no token maps needed on either side.
    /// There is no cancellation; a filter must treat a stale fire (flow
    /// already classified, tables flushed) as a no-op.
    pub fn schedule_flow_timer(&mut self, delay: SimDuration, flow: FlowId, kind: u16) {
        self.commands.push(FilterCommand::ScheduleFlowTimer {
            filter_index: self.filter_index,
            delay,
            flow,
            kind,
        });
    }

    /// Records a statistics note against the global collector.
    pub fn note(&mut self, note: StatNote, packet: Option<&Packet>) {
        self.commands.push(FilterCommand::Note {
            note,
            flow: packet.map(|p| p.key),
        });
    }

    /// Records a statistics note for a flow when no packet is at hand
    /// (e.g. a timer-driven classification decision).
    pub fn note_flow(&mut self, note: StatNote, flow: crate::packet::FlowKey) {
        self.commands.push(FilterCommand::Note {
            note,
            flow: Some(flow),
        });
    }
}

/// A router-resident packet filter.
///
/// Implementations include the MAFIC adaptive dropper, the proportional
/// baseline dropper, and the LogLog traffic taps. Filters on a node form
/// an ordered chain; the first `Drop` verdict wins.
pub trait PacketFilter {
    /// Called for every packet arriving at the node.
    fn on_packet(
        &mut self,
        packet: &Packet,
        env: &PacketEnv,
        ctx: &mut FilterCtx<'_>,
    ) -> FilterAction;

    /// Called when a timer scheduled via [`FilterCtx::schedule_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut FilterCtx<'_>) {}

    /// Called when a flow timer scheduled via
    /// [`FilterCtx::schedule_flow_timer`] fires. Fires may be stale
    /// (the flow was classified or the tables flushed since arming);
    /// implementations must re-check their own state.
    fn on_flow_timer(&mut self, _flow: FlowId, _kind: u16, _ctx: &mut FilterCtx<'_>) {}

    /// Called when a control-plane message reaches this node.
    fn on_control(&mut self, _msg: &FilterControl, _ctx: &mut FilterCtx<'_>) {}

    /// Serializes this filter's mutable state into a checkpoint payload.
    ///
    /// The default is a no-op for stateless filters. Implementations
    /// must write fields in a fixed order matched by
    /// [`PacketFilter::snap_restore`], and must include any RNG
    /// internals — a restored run continues the stream mid-way instead
    /// of replaying it from the seed.
    fn snap_save(&self, _w: &mut SnapWriter) {}

    /// Overlays checkpointed state written by [`PacketFilter::snap_save`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is truncated or malformed.
    fn snap_restore(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }

    /// Downcast support so harnesses can inspect filter state mid-run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A filter that forwards everything; useful as a placeholder and in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassthroughFilter {
    seen: u64,
}

impl PassthroughFilter {
    /// Creates a passthrough filter.
    #[must_use]
    pub fn new() -> Self {
        PassthroughFilter { seen: 0 }
    }

    /// Number of packets observed.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl PacketFilter for PassthroughFilter {
    fn on_packet(
        &mut self,
        _packet: &Packet,
        _env: &PacketEnv,
        _ctx: &mut FilterCtx<'_>,
    ) -> FilterAction {
        self.seen += 1;
        FilterAction::Forward
    }

    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_u64(self.seen);
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.seen = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, AgentId};
    use crate::packet::{FlowKey, PacketKind, Provenance};

    fn pkt() -> Packet {
        Packet {
            id: 7,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            kind: PacketKind::Udp,
            size_bytes: 100,
            created_at: SimTime::ZERO,
            provenance: Provenance {
                origin: AgentId(0),
                is_attack: false,
            },
            hops: 0,
        }
    }

    #[test]
    fn ctx_buffers_commands_in_order() {
        let mut next_id = 100u64;
        let mut commands = Vec::new();
        let mut ctx = FilterCtx::new(SimTime::ZERO, NodeId(0), 0, &mut next_id, &mut commands);
        assert_eq!(ctx.fresh_packet_id(), 100);
        assert_eq!(ctx.fresh_packet_id(), 101);
        ctx.schedule_timer(SimDuration::from_millis(1), 42);
        ctx.note(StatNote::ProbeSent, Some(&pkt()));
        assert_eq!(commands.len(), 2);
        assert!(matches!(
            commands[0],
            FilterCommand::ScheduleTimer { token: 42, .. }
        ));
        assert!(matches!(
            commands[1],
            FilterCommand::Note {
                note: StatNote::ProbeSent,
                flow: Some(_),
            }
        ));
        assert_eq!(next_id, 102);
    }

    #[test]
    fn passthrough_counts_and_forwards() {
        let mut f = PassthroughFilter::new();
        let mut next_id = 0u64;
        let mut commands = Vec::new();
        let mut ctx = FilterCtx::new(SimTime::ZERO, NodeId(0), 0, &mut next_id, &mut commands);
        let env = PacketEnv {
            via_link: None,
            dst_is_local: false,
            flow: FlowId::from_index(0),
        };
        assert_eq!(f.on_packet(&pkt(), &env, &mut ctx), FilterAction::Forward);
        assert_eq!(f.on_packet(&pkt(), &env, &mut ctx), FilterAction::Forward);
        assert_eq!(f.seen(), 2);
    }

    #[test]
    fn downcasting_works() {
        let mut f: Box<dyn PacketFilter> = Box::new(PassthroughFilter::new());
        assert!(f.as_any().downcast_ref::<PassthroughFilter>().is_some());
        assert!(f.as_any_mut().downcast_mut::<PassthroughFilter>().is_some());
    }
}
