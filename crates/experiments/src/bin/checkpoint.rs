//! CI gate for checkpoint/restore integrity.
//!
//! Default mode runs the multi-domain pushback scenario straight
//! through (capturing a mid-flood checkpoint on the way), restores the
//! checkpoint, resumes to the end, and requires the resumed outcome —
//! report, run ledger, escalation log, re-captured checkpoint bytes —
//! to be byte-identical to the straight run. Exit 0 on equality, 1 on
//! any divergence (naming the first differing artifact), 2 on
//! operational errors.
//!
//! `--corrupt` is the seeded-corruption smoke proving the gate can
//! fail: it flips one payload byte in the captured snapshot and
//! requires restore to *reject* it. The rejection (with the offending
//! component named by the typed error) exits 1 for CI to assert on; a
//! corrupted snapshot that restores cleanly is a broken integrity gate
//! and exits 2.

use mafic_netsim::SimTime;
use mafic_obs::Snapshot;
use mafic_topology::TransitTopology;
use mafic_workload::{restore_run, resume_scenario, run_spec, ScenarioSpec};

/// The gated scenario: the run-ledger grid's multi-domain flood with a
/// checkpoint requested mid-flood, after detection has begun reshaping
/// per-domain state but before stand-down.
fn gate_spec() -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 12,
        n_routers: 6,
        domains: 3,
        transit_topology: TransitTopology::Chain { depth: 1 },
        pushback_depth: 2,
        end: SimTime::from_secs_f64(3.0),
        ledger: true,
        trace_capacity: 64,
        checkpoint_at: Some(SimTime::from_secs_f64(1.2)),
        seed: 1,
        ..ScenarioSpec::default()
    }
}

/// Re-encodes `bytes` with one payload byte flipped in the stats
/// section — checksums are recomputed on encode, so the corruption
/// survives decoding and must be caught by the *state-hash* gate, not
/// the cheaper wire checksums.
fn corrupted(bytes: &[u8]) -> Vec<u8> {
    let snap = Snapshot::decode(bytes).expect("fresh capture decodes");
    let mut out = Snapshot::new(snap.header.clone());
    out.component_hashes.clone_from(&snap.component_hashes);
    for label in snap.section_labels() {
        let mut payload = snap.section(label).expect("label just listed").to_vec();
        if label == "netsim/stats" {
            let last = payload.last_mut().expect("stats section is non-empty");
            *last ^= 0x01;
        }
        out.add_section(label, payload);
    }
    out.encode()
}

fn die(msg: &str) -> ! {
    eprintln!("checkpoint: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let corrupt = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => false,
        ["--corrupt"] => true,
        _ => die("usage: checkpoint [--corrupt]"),
    };

    let spec = gate_spec();
    let straight = match run_spec(spec.clone()) {
        Ok(outcome) => outcome,
        Err(e) => die(&format!("straight run failed: {e}")),
    };
    let bytes = straight
        .checkpoint
        .clone()
        .unwrap_or_else(|| die("straight run captured no checkpoint"));

    if corrupt {
        match restore_run(&spec, &corrupted(&bytes)) {
            Ok(_) => die("corrupted snapshot was accepted — the integrity gate is broken"),
            Err(e) => {
                eprintln!("checkpoint: rejected as required: {e}");
                std::process::exit(1);
            }
        }
    }

    let (mut scenario, state) = match restore_run(&spec, &bytes) {
        Ok(pair) => pair,
        Err(e) => die(&format!("restore failed: {e}")),
    };
    let resumed = match resume_scenario(&mut scenario, state) {
        Ok(outcome) => outcome,
        Err(e) => die(&format!("resumed run failed: {e}")),
    };

    let mismatch = |what: &str| {
        eprintln!("checkpoint: resumed run diverged from straight run: {what}");
        std::process::exit(1);
    };
    if resumed.report != straight.report {
        mismatch("metrics report");
    }
    let jsonl =
        |o: &mafic_workload::RunOutcome| o.ledger.as_ref().map(mafic_obs::RunLedger::to_jsonl);
    if jsonl(&resumed) != jsonl(&straight) {
        mismatch("run ledger");
    }
    if resumed.escalations != straight.escalations {
        mismatch("escalation log");
    }
    if resumed.checkpoint != straight.checkpoint {
        mismatch("re-surfaced checkpoint bytes");
    }
    let snap = Snapshot::decode(&bytes).expect("verified bytes decode");
    println!(
        "checkpoint round trip byte-identical: {} component hashes verified, \
         resumed from t={:.3}s (interval {}) to end",
        snap.component_hashes.len(),
        snap.header.at_nanos as f64 / 1e9,
        snap.header.interval_index
    );
}
