//! The per-domain pushback coordinator state machine.
//!
//! One coordinator sits at every domain boundary. Driven once per
//! monitor interval with the victim-bound aggregate entering the
//! domain's Attack Transit Routers, it decides when to escalate the
//! defense one hop upstream, when to renew the resulting lease, when to
//! refuse someone else's request, and when to tear everything down. The
//! machine is pure — local effects come out as [`PushbackAction`]s and
//! every inter-domain envelope goes through the caller's
//! [`ControlPlane`] — so the same logic drives the workload runner and
//! the unit tests below.
//!
//! ## Lifecycle
//!
//! ```text
//!          local_start / granted Request      sustained pressure
//!   Idle ───────────────────────────▶ Defending ───────────────▶ Escalated
//!    ▲                                   │  ▲                        │
//!    │        (one interval later)       │  │ Deny received          │
//!    └──────────── StandingDown ◀────────┴──┴────────────────────────┘
//!                      subsidence (victim) / Stop / Withdraw / lease expiry
//! ```
//!
//! * **Idle** — no defense. A victim-domain coordinator waits for
//!   [`DomainCoordinator::local_start`]; an upstream one for a vetted
//!   `Request`.
//! * **Defending** — the local ATR filters are active.
//! * **Escalated** — defending, plus a soft-state lease held one hop
//!   upstream (kept alive by periodic `Refresh`).
//! * **StandingDown** — teardown was initiated this interval (the local
//!   deactivation and any upstream `Stop`/`Withdraw` are already out);
//!   the next interval returns to **Idle**. Upstream coordinators whose
//!   teardown is externally driven (a `Withdraw`, a lapsed lease) skip
//!   the marker state and return to Idle directly — StandingDown exists
//!   so the *initiator* of a stand-down is observable for one tick.
//!
//! ## Protocol
//!
//! Every envelope is vetted by the domain's [`TrustLedger`] before it
//! can touch the filters — version, authenticated requester, replay
//! nonce, attestation against the domain's own boundary meter, and the
//! per-requester install budget (see [`crate::trust`]). A failed vetting
//! of a `Request`/`Refresh` answers the requester with `Deny{reason}`;
//! a coordinator whose own request was denied falls back to Defending
//! and never re-escalates (the upstream said no — asking again with the
//! same evidence would only burn its budget).
//!
//! * **Escalation (with hysteresis).** While defending, if the observed
//!   inflow stays above `threshold_bps` for `trigger_intervals`
//!   *consecutive* intervals (any dip resets the counter) and budget
//!   remains, send `Request{budget-1}` upstream.
//! * **Leases (soft state).** An upstream defense installed by a
//!   request lives only while `Refresh` envelopes keep arriving: the
//!   requester refreshes every `refresh_intervals`; a receiver that
//!   hears nothing for `hold_intervals` stands down on its own and
//!   forwards `Withdraw` to anyone *it* escalated to. Refreshes carry
//!   the full lease state (victim + budget, RSVP-style), so a receiver
//!   that missed the original request — or whose lease lapsed —
//!   re-installs from the next refresh (re-vetted like a request).
//! * **Withdrawal.** `Withdraw` (or lease expiry) cascades teardown
//!   upstream hop by hop.
//! * **Status reports.** Every leased defender periodically sends
//!   `Report{aggregate}` downstream to its lessor: its own boundary
//!   inflow or the sum of its upstreams' fresh reports, whichever is
//!   larger. Chain tops see the *raw* flood (nothing deeper cuts it),
//!   so the victim can reconstruct the true flood scale however deep
//!   the defense sits.
//! * **Stand-down (`Stop`).** A victim-domain coordinator with
//!   `subsidence_intervals > 0` watches the effective flood scale
//!   while defending — its boundary inflow when the defense is local,
//!   the report-reconstructed aggregate once escalated (a quiet local
//!   boundary could just mean the upstream defense works). Once the
//!   effective scale stays at or below `healthy_bps` for that many
//!   consecutive intervals, the flood has subsided — the victim
//!   deactivates the local defense, sends `Stop` upstream, and the
//!   teardown cascades as withdrawals through the whole chain.

use crate::plane::ControlPlane;
use crate::trust::{TrustConfig, TrustLedger};
use mafic_netsim::{Addr, ControlMsg, ControlVerb, DenyReason, RequesterId};
use std::collections::BTreeMap;
use std::fmt;

/// Why a [`PushbackConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PushbackConfigError {
    /// `threshold_bps` was non-finite or not positive.
    NonPositiveThreshold(f64),
    /// One of the interval counts was zero.
    ZeroIntervalCount,
    /// `hold_intervals` did not exceed `refresh_intervals`, so a
    /// healthy lease would expire between its own refreshes.
    HoldNotAboveRefresh {
        /// The configured hold.
        hold: u32,
        /// The configured refresh period.
        refresh: u32,
    },
    /// `healthy_bps` was non-finite or not positive.
    NonPositiveHealthyRate(f64),
    /// `subsidence_source_floor` was non-finite or negative.
    NegativeSourceFloor(f64),
    /// `trust.attestation_fraction` was outside `[0, 1]`.
    AttestationFractionOutOfRange(f64),
}

impl fmt::Display for PushbackConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PushbackConfigError::NonPositiveThreshold(v) => {
                write!(f, "threshold_bps must be finite and > 0, got {v}")
            }
            PushbackConfigError::ZeroIntervalCount => f.write_str("interval counts must be >= 1"),
            PushbackConfigError::HoldNotAboveRefresh { hold, refresh } => write!(
                f,
                "hold_intervals ({hold}) must exceed refresh_intervals ({refresh})"
            ),
            PushbackConfigError::NonPositiveHealthyRate(v) => {
                write!(f, "healthy_bps must be finite and > 0, got {v}")
            }
            PushbackConfigError::NegativeSourceFloor(v) => {
                write!(
                    f,
                    "subsidence_source_floor must be finite and >= 0, got {v}"
                )
            }
            PushbackConfigError::AttestationFractionOutOfRange(v) => {
                write!(f, "trust.attestation_fraction must be in [0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for PushbackConfigError {}

/// Tunables of a domain coordinator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushbackConfig {
    /// Escalate while the victim-bound inflow exceeds this (bytes/s).
    pub threshold_bps: f64,
    /// Consecutive intervals above threshold before escalating.
    pub trigger_intervals: u32,
    /// Send a lease `Refresh` upstream every this many intervals.
    pub refresh_intervals: u32,
    /// Stand down after this many intervals without hearing from the
    /// downstream requester (upstream domains only).
    pub hold_intervals: u32,
    /// Boundary inflow at or below this (bytes/s) counts as a healthy
    /// interval for the victim's subsidence detector. Sits above the
    /// escalation threshold on purpose: normal legitimate load fills
    /// the victim link, so "healthy" means *not overloaded*, not
    /// *quiet*.
    pub healthy_bps: f64,
    /// Consecutive healthy intervals after which a victim-domain
    /// coordinator stands the whole defense down (`Stop` upstream).
    /// `0` disables subsidence detection.
    pub subsidence_intervals: u32,
    /// Secondary subsidence evidence: when the victim-side distinct
    /// source-address cardinality (fed via
    /// [`DomainCoordinator::set_observed_sources`]) is positive and at
    /// or below this floor, the interval counts as healthy even above
    /// `healthy_bps` — a handful of senders saturating the link is
    /// aggressive-but-legit load, not a flood. `0` disables the guard.
    pub subsidence_source_floor: f64,
    /// Per-requester trust knobs (install budget, attestation).
    pub trust: TrustConfig,
}

impl Default for PushbackConfig {
    fn default() -> Self {
        PushbackConfig {
            // Standalone defaults sized for the stock 10 Mbit/s victim
            // link. This crate deliberately knows nothing about
            // topology; the workload layer derives both rate knobs from
            // the *actual* victim link (`ScenarioSpec::pushback_config`
            // is authoritative there), so these literals only serve
            // direct library users and tests.
            //
            // A quarter of the victim link, in bytes/s.
            threshold_bps: 312_500.0,
            trigger_intervals: 4,
            refresh_intervals: 5,
            hold_intervals: 12,
            // 1.5x the same victim link: offered load above this means
            // the link is overloaded beyond what TCP alone produces.
            healthy_bps: 1_875_000.0,
            subsidence_intervals: 8,
            subsidence_source_floor: 0.0,
            trust: TrustConfig::default(),
        }
    }
}

impl PushbackConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`PushbackConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), PushbackConfigError> {
        if !self.threshold_bps.is_finite() || self.threshold_bps <= 0.0 {
            return Err(PushbackConfigError::NonPositiveThreshold(
                self.threshold_bps,
            ));
        }
        if self.trigger_intervals == 0 || self.refresh_intervals == 0 || self.hold_intervals == 0 {
            return Err(PushbackConfigError::ZeroIntervalCount);
        }
        if self.hold_intervals <= self.refresh_intervals {
            return Err(PushbackConfigError::HoldNotAboveRefresh {
                hold: self.hold_intervals,
                refresh: self.refresh_intervals,
            });
        }
        if !self.healthy_bps.is_finite() || self.healthy_bps <= 0.0 {
            return Err(PushbackConfigError::NonPositiveHealthyRate(
                self.healthy_bps,
            ));
        }
        if !self.subsidence_source_floor.is_finite() || self.subsidence_source_floor < 0.0 {
            return Err(PushbackConfigError::NegativeSourceFloor(
                self.subsidence_source_floor,
            ));
        }
        if !self.trust.attestation_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.trust.attestation_fraction)
        {
            return Err(PushbackConfigError::AttestationFractionOutOfRange(
                self.trust.attestation_fraction,
            ));
        }
        Ok(())
    }
}

/// Where a coordinator sits on the pushback path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushbackRole {
    /// The victim's own domain: its defense starts from the local
    /// detector, so no lease applies — but it owns the subsidence
    /// detector and the `Stop` that ends the conversation.
    Victim,
    /// Any domain upstream of the victim: defends on vetted request,
    /// holds a lease.
    Upstream,
}

/// Where a coordinator is in the defense lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// No defense.
    Idle,
    /// Local ATR filters active; nothing escalated upstream.
    Defending,
    /// Defending, plus a lease held one hop upstream.
    Escalated,
    /// Teardown initiated this interval; Idle on the next.
    StandingDown,
}

/// A local effect the coordinator asks its host (the workload runner)
/// to apply. Inter-domain envelopes never appear here — they go through
/// the [`ControlPlane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushbackAction {
    /// Activate the domain's ATR filters for `victim`.
    ActivateLocal {
        /// The victim to defend.
        victim: Addr,
    },
    /// Deactivate the domain's ATR filters (flushes their tables).
    DeactivateLocal,
}

/// Counters of a coordinator's own control-plane activity. Denials
/// *issued* live in the [`TrustLedger`]; these are the send/receive
/// sides.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Escalation decisions (one per `Request` handed to the control
    /// plane; the plane may fan it out to several upstream targets).
    pub requests_sent: u64,
    /// `Refresh` envelopes sent upstream.
    pub refreshes_sent: u64,
    /// `Withdraw` envelopes sent upstream.
    pub withdraws_sent: u64,
    /// `Stop` envelopes sent upstream (victim-initiated stand-downs).
    pub stops_sent: u64,
    /// `Report` status envelopes sent downstream to the lessor.
    pub reports_sent: u64,
    /// `Deny` envelopes received from upstream.
    pub denies_received: u64,
}

/// The coordinator state machine for one domain boundary.
#[derive(Debug, Clone)]
pub struct DomainCoordinator {
    config: PushbackConfig,
    role: PushbackRole,
    identity: RequesterId,
    state: LifecycleState,
    victim: Option<Addr>,
    budget: u8,
    above: u32,
    healthy: u32,
    since_refresh: u32,
    since_heard: u32,
    next_nonce: u64,
    /// Upstream targets that denied the current escalation. Denied
    /// targets are skipped by refreshes (a sibling that granted keeps
    /// its lease alive); only when *every* target has denied does the
    /// coordinator fall back to defending locally.
    denied_by: Vec<RequesterId>,
    since_report: u32,
    /// The downstream requester whose request installed this defense
    /// (upstream role only) — where `Report` status goes.
    lessor: Option<RequesterId>,
    /// Latest vetted upstream report per sender: `(aggregate, age)` in
    /// intervals. Reports older than `hold_intervals` are stale.
    reports: BTreeMap<RequesterId, (u64, u32)>,
    /// Victim-side distinct source-address cardinality for the current
    /// interval (the LogLog tap's address-sketch estimate), fed by the
    /// host before `on_interval`. Secondary subsidence evidence; unused
    /// while `config.subsidence_source_floor` is `0`.
    observed_sources: f64,
    ledger: TrustLedger,
    stats: CoordinatorStats,
}

impl DomainCoordinator {
    /// Creates an idle coordinator whose envelopes carry `identity`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — a configuration bug.
    #[must_use]
    pub fn new(config: PushbackConfig, role: PushbackRole, identity: RequesterId) -> Self {
        config.validate().expect("invalid PushbackConfig");
        DomainCoordinator {
            config,
            role,
            identity,
            state: LifecycleState::Idle,
            victim: None,
            budget: 0,
            above: 0,
            healthy: 0,
            since_refresh: 0,
            since_heard: 0,
            next_nonce: 0,
            denied_by: Vec::new(),
            since_report: 0,
            lessor: None,
            reports: BTreeMap::new(),
            observed_sources: 0.0,
            ledger: TrustLedger::new(config.trust),
            stats: CoordinatorStats::default(),
        }
    }

    /// Feeds the victim-side distinct source-address estimate for the
    /// interval about to be judged. Call before
    /// [`on_interval`](DomainCoordinator::on_interval); the value only
    /// matters on victim-role coordinators with a positive
    /// `subsidence_source_floor`.
    pub fn set_observed_sources(&mut self, cardinality: f64) {
        self.observed_sources = cardinality;
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// True while this domain's defense is (supposed to be) active.
    #[must_use]
    pub fn is_defending(&self) -> bool {
        matches!(
            self.state,
            LifecycleState::Defending | LifecycleState::Escalated
        )
    }

    /// True once this domain has escalated upstream.
    #[must_use]
    pub fn is_escalated(&self) -> bool {
        self.state == LifecycleState::Escalated
    }

    /// The victim currently defended, if any.
    #[must_use]
    pub fn victim(&self) -> Option<Addr> {
        self.victim
    }

    /// Remaining escalation budget from this domain.
    #[must_use]
    pub fn budget(&self) -> u8 {
        self.budget
    }

    /// The identity this coordinator's envelopes carry.
    #[must_use]
    pub fn identity(&self) -> RequesterId {
        self.identity
    }

    /// The domain's trust ledger (denial tallies, granted installs).
    #[must_use]
    pub fn ledger(&self) -> &TrustLedger {
        &self.ledger
    }

    /// Send/receive counters of this coordinator.
    #[must_use]
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// Marks `requester` as an authorized downstream neighbor (wired at
    /// scenario-build time from the inverted escalation topology).
    pub fn authorize(&mut self, requester: RequesterId) {
        self.ledger.authorize(requester);
    }

    /// Marks `identity` as one of this domain's upstream escalation
    /// targets, whose `Deny`/`Report` replies are believed (wired at
    /// scenario-build time).
    pub fn trust_upstream(&mut self, identity: RequesterId) {
        self.ledger.authorize_upstream(identity);
    }

    /// Builds a version-current envelope with the next nonce.
    fn envelope(&mut self, verb: ControlVerb) -> ControlMsg {
        self.next_nonce += 1;
        ControlMsg::new(self.identity, self.next_nonce, verb)
    }

    /// Victim-domain entry point: the local detector triggered the
    /// defense with `budget` escalation hops available. Idempotent.
    pub fn local_start(&mut self, victim: Addr, budget: u8) {
        if self.is_defending() {
            return;
        }
        self.state = LifecycleState::Defending;
        self.victim = Some(victim);
        self.budget = budget;
        self.above = 0;
        self.healthy = 0;
        self.since_refresh = 0;
        self.denied_by.clear();
        self.lessor = None;
        self.reports.clear();
    }

    /// Victim-domain entry point: the local defense stood down for an
    /// external reason. Withdraws any escalated upstream defense.
    pub fn local_stop(&mut self, plane: &mut dyn ControlPlane) {
        if !self.is_defending() {
            return;
        }
        if self.state == LifecycleState::Escalated {
            let victim = self.victim.expect("escalated implies a victim");
            let msg = self.envelope(ControlVerb::Withdraw { victim });
            plane.send_upstream(msg);
            self.stats.withdraws_sent += 1;
        }
        self.state = LifecycleState::Idle;
        self.above = 0;
        self.healthy = 0;
        self.victim = None;
    }

    /// Deactivate the local defense and cascade the withdrawal. Used
    /// for externally driven teardown (Withdraw/Stop received, lease
    /// expiry) — goes straight to Idle.
    fn stand_down(&mut self, plane: &mut dyn ControlPlane, actions: &mut Vec<PushbackAction>) {
        actions.push(PushbackAction::DeactivateLocal);
        if self.state == LifecycleState::Escalated {
            let victim = self.victim.expect("escalated implies a victim");
            let msg = self.envelope(ControlVerb::Withdraw { victim });
            plane.send_upstream(msg);
            self.stats.withdraws_sent += 1;
        }
        self.state = LifecycleState::Idle;
        self.above = 0;
        self.healthy = 0;
        self.since_heard = 0;
        self.victim = None;
        self.lessor = None;
        self.reports.clear();
    }

    /// Installs (or renews) a vetted defense. Fresh installs activate
    /// the local filters and remember the lessor (where `Report`
    /// status goes); a renewal only refreshes the lease clock and
    /// may widen the budget.
    fn install(
        &mut self,
        requester: RequesterId,
        victim: Addr,
        budget: u8,
        actions: &mut Vec<PushbackAction>,
    ) {
        self.since_heard = 0;
        if self.is_defending() {
            // A repeated request can only widen the budget.
            self.budget = self.budget.max(budget);
        } else {
            self.state = LifecycleState::Defending;
            self.victim = Some(victim);
            self.budget = budget;
            self.above = 0;
            self.since_refresh = 0;
            self.since_report = 0;
            self.denied_by.clear();
            self.lessor = Some(requester);
            self.reports.clear();
            actions.push(PushbackAction::ActivateLocal { victim });
        }
    }

    /// The coordinator's effective view of the victim-bound flood:
    /// `max(total boundary inflow, local-ingress inflow + Σ fresh
    /// upstream reports)`. The two summands are disjoint — reports
    /// cover traffic that would enter over the inter-domain borders,
    /// local ingress covers the domain's own hosts — so the raw flood
    /// scale survives however deep the chain cutting it, without
    /// double-counting pass-through traffic the way `local + reports`
    /// over the *total* inflow would. A chain top has no reports and
    /// judges its raw inflow.
    fn effective_bps(&self, inflow_bps: f64, local_bps: f64) -> f64 {
        let reported: u64 = self
            .reports
            .values()
            .filter(|&&(_, age)| age <= self.config.hold_intervals)
            .map(|&(bps, _)| bps)
            .sum();
        inflow_bps.max(local_bps + reported as f64)
    }

    /// True when fresh upstream evidence exists for subsidence judging.
    fn has_fresh_reports(&self) -> bool {
        self.reports
            .values()
            .any(|&(_, age)| age <= self.config.hold_intervals)
    }

    /// Vets a renewal of the live lease (a `Request`/`Refresh` while
    /// defending): identity-level checks, plus the sender must be the
    /// lessor that installed this defense and name the victim it
    /// covers. Anything else — a sibling neighbor trying to keep the
    /// filters up past their lease, or a request for a different victim
    /// — is refused without touching the lease clock. (One lease per
    /// boundary by design; a second victim's request is denied until
    /// the current defense stands down.)
    fn vet_renewal(&mut self, msg: &ControlMsg, victim: Addr) -> Result<(), DenyReason> {
        self.ledger.vet_identity(msg)?;
        if self.victim != Some(victim) || self.lessor != Some(msg.requester) {
            self.ledger.note_denial(DenyReason::UntrustedRequester);
            return Err(DenyReason::UntrustedRequester);
        }
        Ok(())
    }

    /// Feeds one envelope received over the domain's control channel.
    /// `inflow_bps` is the domain's own victim-bound boundary inflow
    /// over the current interval — the attestation evidence.
    pub fn on_message(
        &mut self,
        msg: ControlMsg,
        inflow_bps: f64,
        plane: &mut dyn ControlPlane,
        actions: &mut Vec<PushbackAction>,
    ) {
        match msg.verb {
            ControlVerb::Request {
                victim,
                aggregate_bps,
                budget,
            } => {
                let vetted = if self.is_defending() {
                    self.vet_renewal(&msg, victim)
                } else {
                    self.ledger.vet_install(
                        &msg,
                        Some(aggregate_bps as f64),
                        self.config.threshold_bps,
                        inflow_bps,
                    )
                };
                match vetted {
                    Ok(()) => self.install(msg.requester, victim, budget, actions),
                    Err(reason) => self.deny(msg.requester, victim, reason, plane),
                }
            }
            ControlVerb::Refresh { victim, budget } => {
                let vetted = if self.is_defending() {
                    self.vet_renewal(&msg, victim)
                } else {
                    // Fresh install from a refresh (lost request or
                    // lapsed lease): no claim to corroborate, so the
                    // local meter itself must show attack scale.
                    self.ledger
                        .vet_install(&msg, None, self.config.threshold_bps, inflow_bps)
                };
                match vetted {
                    Ok(()) => self.install(msg.requester, victim, budget, actions),
                    Err(reason) => self.deny(msg.requester, victim, reason, plane),
                }
            }
            ControlVerb::Withdraw { victim } | ControlVerb::Stop { victim } => {
                // Teardown is vetted too: beyond version/identity/nonce,
                // only the lessor that installed this defense may tear
                // it down, and only for the victim it actually covers —
                // a sibling downstream neighbor (compromised or not)
                // cannot strip someone else's live lease.
                if self.ledger.vet_identity(&msg).is_ok()
                    && self.is_defending()
                    && self.victim == Some(victim)
                    && self.lessor == Some(msg.requester)
                {
                    self.stand_down(plane, actions);
                }
            }
            ControlVerb::Deny { victim, .. } => {
                // Only a known upstream target's refusal counts — a
                // forged Deny must not switch the escalation off.
                if self.ledger.vet_upstream(&msg).is_err() {
                    return;
                }
                self.stats.denies_received += 1;
                if self.state == LifecycleState::Escalated && self.victim == Some(victim) {
                    // This target said no: stop asking *it* (refreshes
                    // skip the denied list), but a sibling that granted
                    // keeps its lease refreshed. Only when every target
                    // has denied does escalation fall back to a purely
                    // local defense — and it never retries with the
                    // same evidence.
                    if !self.denied_by.contains(&msg.requester) {
                        self.denied_by.push(msg.requester);
                    }
                    if self.denied_by.len() >= plane.upstream_count() {
                        self.state = LifecycleState::Defending;
                        self.above = 0;
                    }
                }
            }
            ControlVerb::Report {
                victim,
                aggregate_bps,
            } => {
                // Upstream status: the flood scale as seen from the
                // chain top (or an aggregation thereof). Believed only
                // from a vetted upstream target; feeds the subsidence
                // judgment and is relayed downstream in this domain's
                // own reports.
                if self.ledger.vet_upstream(&msg).is_ok()
                    && self.is_defending()
                    && self.victim == Some(victim)
                {
                    self.reports.insert(msg.requester, (aggregate_bps, 0));
                }
            }
        }
    }

    /// Answers a failed vetting.
    fn deny(
        &mut self,
        to: RequesterId,
        victim: Addr,
        reason: DenyReason,
        plane: &mut dyn ControlPlane,
    ) {
        let msg = self.envelope(ControlVerb::Deny { victim, reason });
        plane.send_downstream(to, msg);
    }

    /// Advances the machine one monitor interval. `inflow_bps` is the
    /// victim-bound byte rate observed entering the domain's ATRs over
    /// the elapsed interval (pre-filter); `local_bps` is the part of it
    /// entering through the domain's *own ingress* (local hosts) rather
    /// than over inter-domain borders — the component no upstream
    /// report can cover. A domain whose ATRs are all local (a stub, the
    /// single-domain case) passes `local_bps = inflow_bps`; a pure
    /// transit boundary passes `0`.
    pub fn on_interval(
        &mut self,
        inflow_bps: f64,
        local_bps: f64,
        plane: &mut dyn ControlPlane,
        actions: &mut Vec<PushbackAction>,
    ) {
        match self.state {
            LifecycleState::Idle => return,
            LifecycleState::StandingDown => {
                self.state = LifecycleState::Idle;
                self.victim = None;
                self.lessor = None;
                self.reports.clear();
                return;
            }
            LifecycleState::Defending | LifecycleState::Escalated => {}
        }
        if self.role == PushbackRole::Upstream {
            self.since_heard += 1;
            if self.since_heard > self.config.hold_intervals {
                // Lease expired: the requester vanished.
                self.stand_down(plane, actions);
                return;
            }
        }
        let victim = self.victim.expect("defending implies a victim");
        // Upstream reports age one interval; a leased defender relays
        // its effective view downstream every `refresh_intervals`, so
        // the victim can reconstruct the raw flood scale no matter how
        // deep the chain cutting it.
        for entry in self.reports.values_mut() {
            entry.1 = entry.1.saturating_add(1);
        }
        if self.role == PushbackRole::Upstream {
            self.since_report += 1;
            if self.since_report >= self.config.refresh_intervals {
                self.since_report = 0;
                if let Some(lessor) = self.lessor {
                    let aggregate_bps = self.effective_bps(inflow_bps, local_bps) as u64;
                    let msg = self.envelope(ControlVerb::Report {
                        victim,
                        aggregate_bps,
                    });
                    plane.send_downstream(lessor, msg);
                    self.stats.reports_sent += 1;
                }
            }
        }
        // Subsidence (victim only). The local healthy streak alone is
        // sound evidence only while nothing upstream is cutting the
        // flood (state Defending, where the boundary meter sees the
        // raw aggregate). Once escalated, "my boundary is quiet" could
        // just mean the upstream defense works — the judgment then
        // runs on the effective (report-reconstructed) flood scale and
        // requires at least one fresh upstream report.
        if self.role == PushbackRole::Victim && self.config.subsidence_intervals > 0 {
            let evidence = match self.state {
                LifecycleState::Escalated => self
                    .has_fresh_reports()
                    .then(|| self.effective_bps(inflow_bps, local_bps)),
                _ => Some(inflow_bps),
            };
            // The bandwidth ceiling alone misreads a few aggressive
            // legit senders filling the link as an ongoing attack. The
            // source floor supplies the missing dimension: flood-scale
            // bytes from flood-scale *cardinality* keeps the defense
            // up; the same bytes from a handful of senders reads
            // healthy.
            let few_sources = self.config.subsidence_source_floor > 0.0
                && self.observed_sources > 0.0
                && self.observed_sources <= self.config.subsidence_source_floor;
            match evidence {
                Some(bps) if bps <= self.config.healthy_bps || few_sources => self.healthy += 1,
                _ => self.healthy = 0,
            }
            if self.healthy >= self.config.subsidence_intervals {
                // The victim ends the conversation for the whole chain.
                actions.push(PushbackAction::DeactivateLocal);
                if self.state == LifecycleState::Escalated {
                    let msg = self.envelope(ControlVerb::Stop { victim });
                    plane.send_upstream(msg);
                    self.stats.stops_sent += 1;
                }
                self.state = LifecycleState::StandingDown;
                self.above = 0;
                self.healthy = 0;
                return;
            }
        }
        if self.state == LifecycleState::Escalated {
            self.since_refresh += 1;
            if self.since_refresh >= self.config.refresh_intervals {
                self.since_refresh = 0;
                let budget = self.budget.saturating_sub(1);
                let msg = self.envelope(ControlVerb::Refresh { victim, budget });
                plane.send_upstream_except(msg, &self.denied_by);
                self.stats.refreshes_sent += 1;
            }
        } else if self.budget > 0 && self.denied_by.len() < plane.upstream_count() {
            if inflow_bps > self.config.threshold_bps {
                self.above += 1;
            } else {
                self.above = 0; // Hysteresis: a dip restarts the count.
            }
            if self.above >= self.config.trigger_intervals {
                self.state = LifecycleState::Escalated;
                self.since_refresh = 0;
                let msg = self.envelope(ControlVerb::Request {
                    victim,
                    aggregate_bps: inflow_bps as u64,
                    budget: self.budget - 1,
                });
                plane.send_upstream(msg);
                self.stats.requests_sent += 1;
            }
        }
    }
}

impl mafic_obs::StateHash for CoordinatorStats {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u64(self.requests_sent);
        h.write_u64(self.refreshes_sent);
        h.write_u64(self.withdraws_sent);
        h.write_u64(self.stops_sent);
        h.write_u64(self.reports_sent);
        h.write_u64(self.denies_received);
    }
}

impl mafic_obs::StateHash for DomainCoordinator {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u8(match self.role {
            PushbackRole::Victim => 0,
            PushbackRole::Upstream => 1,
        });
        h.write_u32(self.identity.addr().as_u32());
        h.write_u8(match self.state {
            LifecycleState::Idle => 0,
            LifecycleState::Defending => 1,
            LifecycleState::Escalated => 2,
            LifecycleState::StandingDown => 3,
        });
        match self.victim {
            None => h.write_u8(0),
            Some(victim) => {
                h.write_u8(1);
                h.write_u32(victim.as_u32());
            }
        }
        h.write_u8(self.budget);
        h.write_u32(self.above);
        h.write_u32(self.healthy);
        h.write_u32(self.since_refresh);
        h.write_u32(self.since_heard);
        h.write_u64(self.next_nonce);
        h.write_usize(self.denied_by.len());
        for id in &self.denied_by {
            h.write_u32(id.addr().as_u32());
        }
        h.write_u32(self.since_report);
        match self.lessor {
            None => h.write_u8(0),
            Some(lessor) => {
                h.write_u8(1);
                h.write_u32(lessor.addr().as_u32());
            }
        }
        h.write_usize(self.reports.len());
        for (id, (aggregate, age)) in &self.reports {
            h.write_u32(id.addr().as_u32());
            h.write_u64(*aggregate);
            h.write_u32(*age);
        }
        h.write_f64(self.observed_sources);
        self.ledger.hash_state(h);
        self.stats.hash_state(h);
    }
}

impl mafic_obs::SnapshotState for DomainCoordinator {
    /// Serializes the mutable lifecycle state. `config`, `role`, and
    /// `identity` are build-time wiring and come from the rebuilt
    /// coordinator; the nested trust ledger rides along so nonce
    /// replay-protection survives a restore.
    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        w.write_u8(match self.state {
            LifecycleState::Idle => 0,
            LifecycleState::Defending => 1,
            LifecycleState::Escalated => 2,
            LifecycleState::StandingDown => 3,
        });
        match self.victim {
            None => w.write_u8(0),
            Some(victim) => {
                w.write_u8(1);
                w.write_u32(victim.as_u32());
            }
        }
        w.write_u8(self.budget);
        w.write_u32(self.above);
        w.write_u32(self.healthy);
        w.write_u32(self.since_refresh);
        w.write_u32(self.since_heard);
        w.write_u64(self.next_nonce);
        w.write_usize(self.denied_by.len());
        for id in &self.denied_by {
            w.write_u32(id.addr().as_u32());
        }
        w.write_u32(self.since_report);
        match self.lessor {
            None => w.write_u8(0),
            Some(lessor) => {
                w.write_u8(1);
                w.write_u32(lessor.addr().as_u32());
            }
        }
        w.write_usize(self.reports.len());
        for (id, (aggregate, age)) in &self.reports {
            w.write_u32(id.addr().as_u32());
            w.write_u64(*aggregate);
            w.write_u32(*age);
        }
        w.write_f64(self.observed_sources);
        self.ledger.snap_save(w);
        w.write_u64(self.stats.requests_sent);
        w.write_u64(self.stats.refreshes_sent);
        w.write_u64(self.stats.withdraws_sent);
        w.write_u64(self.stats.stops_sent);
        w.write_u64(self.stats.reports_sent);
        w.write_u64(self.stats.denies_received);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        self.state = match r.read_u8()? {
            0 => LifecycleState::Idle,
            1 => LifecycleState::Defending,
            2 => LifecycleState::Escalated,
            3 => LifecycleState::StandingDown,
            tag => {
                return Err(mafic_obs::SnapError::Malformed(format!(
                    "lifecycle tag {tag}"
                )))
            }
        };
        self.victim = match r.read_u8()? {
            0 => None,
            1 => Some(Addr::new(r.read_u32()?)),
            tag => return Err(mafic_obs::SnapError::Malformed(format!("victim tag {tag}"))),
        };
        self.budget = r.read_u8()?;
        self.above = r.read_u32()?;
        self.healthy = r.read_u32()?;
        self.since_refresh = r.read_u32()?;
        self.since_heard = r.read_u32()?;
        self.next_nonce = r.read_u64()?;
        let denied = r.read_usize()?;
        self.denied_by = Vec::with_capacity(denied);
        for _ in 0..denied {
            self.denied_by
                .push(RequesterId::new(Addr::new(r.read_u32()?)));
        }
        self.since_report = r.read_u32()?;
        self.lessor = match r.read_u8()? {
            0 => None,
            1 => Some(RequesterId::new(Addr::new(r.read_u32()?))),
            tag => return Err(mafic_obs::SnapError::Malformed(format!("lessor tag {tag}"))),
        };
        let n_reports = r.read_usize()?;
        self.reports = BTreeMap::new();
        for _ in 0..n_reports {
            let id = RequesterId::new(Addr::new(r.read_u32()?));
            let aggregate = r.read_u64()?;
            let age = r.read_u32()?;
            self.reports.insert(id, (aggregate, age));
        }
        self.observed_sources = r.read_f64()?;
        self.ledger.snap_restore(r)?;
        self.stats.requests_sent = r.read_u64()?;
        self.stats.refreshes_sent = r.read_u64()?;
        self.stats.withdraws_sent = r.read_u64()?;
        self.stats.stops_sent = r.read_u64()?;
        self.stats.reports_sent = r.read_u64()?;
        self.stats.denies_received = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::BufferedPlane;

    const VICTIM: Addr = Addr::new(0x0AC8_0001);

    fn identity(octet: u32) -> RequesterId {
        RequesterId::new(Addr::new(0x0BFA_0000 + octet))
    }

    fn config() -> PushbackConfig {
        PushbackConfig {
            threshold_bps: 1000.0,
            trigger_intervals: 3,
            refresh_intervals: 2,
            hold_intervals: 5,
            healthy_bps: 2000.0,
            subsidence_intervals: 0,
            subsidence_source_floor: 0.0,
            trust: TrustConfig {
                request_budget: 8,
                attestation_fraction: 0.25,
            },
        }
    }

    fn victim_coord(budget: u8) -> DomainCoordinator {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Victim, identity(0));
        c.trust_upstream(identity(1));
        c.local_start(VICTIM, budget);
        c
    }

    /// An upstream coordinator that trusts `identity(0)`.
    fn upstream_coord() -> DomainCoordinator {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream, identity(1));
        c.authorize(identity(0));
        c
    }

    /// One interval with an all-local boundary (`local == inflow`) —
    /// the victim/stub shape used by most tests.
    fn tick(
        c: &mut DomainCoordinator,
        inflow: f64,
        plane: &mut BufferedPlane,
    ) -> Vec<PushbackAction> {
        let mut actions = Vec::new();
        c.on_interval(inflow, inflow, plane, &mut actions);
        actions
    }

    fn deliver(
        c: &mut DomainCoordinator,
        msg: ControlMsg,
        inflow: f64,
        plane: &mut BufferedPlane,
    ) -> Vec<PushbackAction> {
        let mut actions = Vec::new();
        c.on_message(msg, inflow, plane, &mut actions);
        actions
    }

    fn request(nonce: u64, aggregate_bps: u64, budget: u8) -> ControlMsg {
        ControlMsg::new(
            identity(0),
            nonce,
            ControlVerb::Request {
                victim: VICTIM,
                aggregate_bps,
                budget,
            },
        )
    }

    fn refresh(nonce: u64, budget: u8) -> ControlMsg {
        ControlMsg::new(
            identity(0),
            nonce,
            ControlVerb::Refresh {
                victim: VICTIM,
                budget,
            },
        )
    }

    #[test]
    fn escalates_after_sustained_pressure() {
        let mut plane = BufferedPlane::new();
        let mut c = victim_coord(2);
        assert!(tick(&mut c, 5000.0, &mut plane).is_empty());
        assert!(tick(&mut c, 5000.0, &mut plane).is_empty());
        assert!(plane.upstream.is_empty());
        let actions = tick(&mut c, 5000.0, &mut plane);
        assert!(actions.is_empty(), "escalation is not a local action");
        assert_eq!(plane.upstream.len(), 1);
        let sent = plane.upstream[0];
        assert_eq!(sent.requester, identity(0));
        assert_eq!(sent.version, mafic_netsim::CONTROL_PROTOCOL_VERSION);
        assert_eq!(
            sent.verb,
            ControlVerb::Request {
                victim: VICTIM,
                aggregate_bps: 5000,
                budget: 1,
            }
        );
        assert!(c.is_escalated());
        assert_eq!(c.stats().requests_sent, 1);
    }

    #[test]
    fn nonces_increase_monotonically_across_sends() {
        let mut plane = BufferedPlane::new();
        let mut c = victim_coord(2);
        for _ in 0..8 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(plane.upstream.len() >= 2, "request plus refreshes");
        for pair in plane.upstream.windows(2) {
            assert!(pair[1].nonce > pair[0].nonce);
        }
    }

    #[test]
    fn pressure_dip_resets_the_trigger_counter() {
        let mut plane = BufferedPlane::new();
        let mut c = victim_coord(1);
        let _ = tick(&mut c, 5000.0, &mut plane);
        let _ = tick(&mut c, 5000.0, &mut plane);
        let _ = tick(&mut c, 10.0, &mut plane); // dip
        let _ = tick(&mut c, 5000.0, &mut plane);
        let _ = tick(&mut c, 5000.0, &mut plane);
        assert!(!c.is_escalated(), "counter must restart after the dip");
        let _ = tick(&mut c, 5000.0, &mut plane);
        assert!(c.is_escalated());
    }

    #[test]
    fn zero_budget_never_escalates() {
        let mut plane = BufferedPlane::new();
        let mut c = victim_coord(0);
        for _ in 0..20 {
            assert!(tick(&mut c, 1e9, &mut plane).is_empty());
        }
        assert!(!c.is_escalated());
        assert!(plane.upstream.is_empty());
    }

    #[test]
    fn idle_coordinator_does_nothing() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        assert!(tick(&mut c, 1e9, &mut plane).is_empty());
        assert!(!c.is_defending());
        assert_eq!(c.state(), LifecycleState::Idle);
    }

    #[test]
    fn vetted_request_activates_and_budget_caps_the_cascade() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        let actions = deliver(&mut c, request(1, 9000, 1), 9000.0, &mut plane);
        assert_eq!(
            actions,
            vec![PushbackAction::ActivateLocal { victim: VICTIM }]
        );
        assert!(c.is_defending());
        assert_eq!(c.budget(), 1);
        assert_eq!(c.ledger().granted_installs(), 1);
        // Sustained pressure escalates once more, with budget exhausted.
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(matches!(
            plane.upstream[..],
            [ControlMsg {
                verb: ControlVerb::Request { budget: 0, .. },
                ..
            }]
        ));
    }

    #[test]
    fn untrusted_request_is_denied_not_installed() {
        let mut plane = BufferedPlane::new();
        // No authorize() call: the requester is unknown here.
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream, identity(1));
        let actions = deliver(&mut c, request(1, 9000, 1), 9000.0, &mut plane);
        assert!(actions.is_empty());
        assert!(!c.is_defending());
        assert_eq!(plane.downstream.len(), 1);
        let (to, msg) = plane.downstream[0];
        assert_eq!(to, identity(0));
        assert_eq!(
            msg.verb,
            ControlVerb::Deny {
                victim: VICTIM,
                reason: DenyReason::UntrustedRequester,
            }
        );
        assert_eq!(c.ledger().denies().untrusted, 1);
    }

    #[test]
    fn uncorroborated_request_is_denied() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        // Claims a 9 MB/s flood; the local meter sees 500 B/s.
        let actions = deliver(&mut c, request(1, 9_000_000, 1), 500.0, &mut plane);
        assert!(actions.is_empty());
        assert!(!c.is_defending());
        assert!(matches!(
            plane.downstream[0].1.verb,
            ControlVerb::Deny {
                reason: DenyReason::Uncorroborated,
                ..
            }
        ));
    }

    #[test]
    fn budget_exhaustion_denies_reinstalls() {
        let mut cfg = config();
        cfg.trust.request_budget = 1;
        let mut plane = BufferedPlane::new();
        let mut c = DomainCoordinator::new(cfg, PushbackRole::Upstream, identity(1));
        c.authorize(identity(0));
        let _ = deliver(&mut c, request(1, 9000, 0), 9000.0, &mut plane);
        assert!(c.is_defending());
        // Expire the lease, then ask again: the budget is spent.
        let mut all = Vec::new();
        for _ in 0..6 {
            all.extend(tick(&mut c, 10.0, &mut plane));
        }
        assert!(all.contains(&PushbackAction::DeactivateLocal));
        let actions = deliver(&mut c, request(2, 9000, 0), 9000.0, &mut plane);
        assert!(actions.is_empty());
        assert!(!c.is_defending());
        assert!(matches!(
            plane.downstream.last().unwrap().1.verb,
            ControlVerb::Deny {
                reason: DenyReason::BudgetExhausted,
                ..
            }
        ));
    }

    #[test]
    fn only_the_lessor_can_tear_a_lease_down() {
        // Two authorized downstream neighbors; identity(0) installed
        // the lease. A Withdraw/Stop from the *other* one — the fig10
        // threat model with the forgery aimed at teardown instead of
        // installs — must not strip the live defense, and neither must
        // a lessor message naming a different victim.
        let sibling = identity(2);
        let mut c = upstream_coord();
        c.authorize(sibling);
        let mut plane = BufferedPlane::new();
        let _ = deliver(&mut c, request(1, 9000, 1), 9000.0, &mut plane);
        assert!(c.is_defending());
        let from_sibling = ControlMsg::new(sibling, 1, ControlVerb::Stop { victim: VICTIM });
        let actions = deliver(&mut c, from_sibling, 9000.0, &mut plane);
        assert!(actions.is_empty());
        assert!(c.is_defending(), "a sibling cannot tear down the lease");
        let wrong_victim = ControlMsg::new(
            identity(0),
            2,
            ControlVerb::Withdraw {
                victim: Addr::new(0x0AC8_0099),
            },
        );
        let actions = deliver(&mut c, wrong_victim, 9000.0, &mut plane);
        assert!(actions.is_empty());
        assert!(c.is_defending(), "teardown must name the leased victim");
        // The real lessor's teardown still works.
        let genuine = ControlMsg::new(identity(0), 3, ControlVerb::Withdraw { victim: VICTIM });
        let actions = deliver(&mut c, genuine, 9000.0, &mut plane);
        assert_eq!(actions, vec![PushbackAction::DeactivateLocal]);
        assert!(!c.is_defending());
    }

    #[test]
    fn only_the_lessor_can_renew_the_lease() {
        // A compromised sibling must not be able to starve lease
        // expiry (or widen the budget) with identity-valid renewals.
        let sibling = identity(2);
        let mut c = upstream_coord();
        c.authorize(sibling);
        let mut plane = BufferedPlane::new();
        let _ = deliver(&mut c, request(1, 9000, 0), 9000.0, &mut plane);
        assert!(c.is_defending());
        // Sibling renewals are denied and do not touch the lease clock:
        // the lease still expires on schedule.
        let mut all = Vec::new();
        for round in 0..6u64 {
            let renewal = ControlMsg::new(
                sibling,
                1 + round,
                ControlVerb::Refresh {
                    victim: VICTIM,
                    budget: 9,
                },
            );
            all.extend(deliver(&mut c, renewal, 9000.0, &mut plane));
            all.extend(tick(&mut c, 10.0, &mut plane));
        }
        assert!(all.contains(&PushbackAction::DeactivateLocal));
        assert!(
            !c.is_defending(),
            "sibling renewals must not hold the lease"
        );
        assert_ne!(c.budget(), 9, "sibling renewals must not widen the budget");
        assert!(plane.downstream.iter().any(|(to, m)| {
            *to == sibling
                && matches!(
                    m.verb,
                    ControlVerb::Deny {
                        reason: DenyReason::UntrustedRequester,
                        ..
                    }
                )
        }));
    }

    #[test]
    fn replayed_envelope_is_denied() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        let _ = deliver(&mut c, request(5, 9000, 1), 9000.0, &mut plane);
        assert!(c.is_defending());
        // Tear down via a replay of the same nonce: refused.
        let withdraw = ControlMsg::new(identity(0), 5, ControlVerb::Withdraw { victim: VICTIM });
        let actions = deliver(&mut c, withdraw, 9000.0, &mut plane);
        assert!(actions.is_empty());
        assert!(c.is_defending(), "replayed withdraw must not tear down");
        assert_eq!(c.ledger().denies().replayed, 1);
    }

    #[test]
    fn deny_received_falls_back_to_defending_and_never_retries() {
        let mut plane = BufferedPlane::new();
        let mut c = victim_coord(2);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(c.is_escalated());
        let deny = ControlMsg::new(
            identity(1),
            1,
            ControlVerb::Deny {
                victim: VICTIM,
                reason: DenyReason::BudgetExhausted,
            },
        );
        let _ = deliver(&mut c, deny, 5000.0, &mut plane);
        assert_eq!(c.state(), LifecycleState::Defending);
        assert_eq!(c.stats().denies_received, 1);
        plane.clear();
        for _ in 0..10 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(
            plane.upstream.is_empty(),
            "a denied requester must not re-escalate: {:?}",
            plane.upstream
        );
        assert!(c.is_defending(), "local defense continues");
    }

    #[test]
    fn escalated_coordinator_refreshes_periodically() {
        let mut plane = BufferedPlane::new();
        let mut c = victim_coord(1);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(c.is_escalated());
        plane.clear();
        let _ = tick(&mut c, 5000.0, &mut plane);
        assert!(plane.upstream.is_empty());
        let _ = tick(&mut c, 5000.0, &mut plane);
        assert_eq!(plane.upstream.len(), 1);
        assert_eq!(
            plane.upstream[0].verb,
            ControlVerb::Refresh {
                victim: VICTIM,
                budget: 0,
            }
        );
        assert_eq!(c.stats().refreshes_sent, 1);
    }

    #[test]
    fn lease_expires_without_refresh() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        let _ = deliver(&mut c, request(1, 9000, 0), 9000.0, &mut plane);
        let mut all = Vec::new();
        for _ in 0..6 {
            all.extend(tick(&mut c, 10.0, &mut plane));
        }
        assert_eq!(all, vec![PushbackAction::DeactivateLocal]);
        assert!(!c.is_defending());
    }

    #[test]
    fn refresh_renews_the_lease() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        let _ = deliver(&mut c, request(1, 9000, 0), 9000.0, &mut plane);
        for round in 0..4u64 {
            for _ in 0..4 {
                assert!(tick(&mut c, 10.0, &mut plane).is_empty(), "round {round}");
            }
            let _ = deliver(&mut c, refresh(2 + round, 0), 10.0, &mut plane);
        }
        assert!(c.is_defending(), "refreshed lease must stay alive");
    }

    #[test]
    fn refresh_reinstalls_a_lapsed_lease_when_locally_corroborated() {
        // Soft-state recovery: the original request was lost (or the
        // lease expired) — the next full-state refresh re-installs the
        // defense, provided the local meter itself sees attack scale.
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        let actions = deliver(&mut c, refresh(1, 1), 9000.0, &mut plane);
        assert_eq!(
            actions,
            vec![PushbackAction::ActivateLocal { victim: VICTIM }]
        );
        assert!(c.is_defending());
        assert_eq!(c.budget(), 1);
        // Expire the lease, then refresh again: same recovery.
        let mut all = Vec::new();
        for _ in 0..7 {
            all.extend(tick(&mut c, 10.0, &mut plane));
        }
        assert!(all.contains(&PushbackAction::DeactivateLocal));
        assert!(!c.is_defending());
        let actions = deliver(&mut c, refresh(2, 1), 9000.0, &mut plane);
        assert_eq!(
            actions,
            vec![PushbackAction::ActivateLocal { victim: VICTIM }]
        );
        assert!(c.is_defending());
    }

    #[test]
    fn refresh_install_without_local_evidence_is_denied() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        // Quiet boundary (10 B/s): a bare refresh cannot smuggle an
        // install past attestation.
        let actions = deliver(&mut c, refresh(1, 1), 10.0, &mut plane);
        assert!(actions.is_empty());
        assert!(!c.is_defending());
        assert!(matches!(
            plane.downstream[0].1.verb,
            ControlVerb::Deny {
                reason: DenyReason::Uncorroborated,
                ..
            }
        ));
    }

    #[test]
    fn withdraw_cascades_through_an_escalated_domain() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        let _ = deliver(&mut c, request(1, 9000, 2), 9000.0, &mut plane);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(c.is_escalated());
        plane.clear();
        let withdraw = ControlMsg::new(identity(0), 2, ControlVerb::Withdraw { victim: VICTIM });
        let actions = deliver(&mut c, withdraw, 5000.0, &mut plane);
        assert_eq!(actions, vec![PushbackAction::DeactivateLocal]);
        assert_eq!(plane.upstream.len(), 1);
        assert!(matches!(
            plane.upstream[0].verb,
            ControlVerb::Withdraw { victim: VICTIM }
        ));
        assert!(!c.is_defending());
        assert_eq!(c.state(), LifecycleState::Idle);
    }

    #[test]
    fn stop_tears_down_and_cascades_like_withdraw() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        let _ = deliver(&mut c, request(1, 9000, 2), 9000.0, &mut plane);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(c.is_escalated());
        plane.clear();
        let stop = ControlMsg::new(identity(0), 2, ControlVerb::Stop { victim: VICTIM });
        let actions = deliver(&mut c, stop, 5000.0, &mut plane);
        assert_eq!(actions, vec![PushbackAction::DeactivateLocal]);
        assert!(matches!(
            plane.upstream[0].verb,
            ControlVerb::Withdraw { victim: VICTIM }
        ));
        assert!(!c.is_defending());
    }

    #[test]
    fn lease_expiry_also_cascades_withdrawal() {
        let mut plane = BufferedPlane::new();
        let mut c = upstream_coord();
        let _ = deliver(&mut c, request(1, 9000, 1), 9000.0, &mut plane);
        // Escalate under pressure, then starve the lease. The coordinator
        // keeps refreshing its own upstream until its lease lapses — at
        // expiry it must deactivate AND withdraw what it escalated.
        let mut all = Vec::new();
        for _ in 0..10 {
            all.extend(tick(&mut c, 5000.0, &mut plane));
        }
        assert!(all.contains(&PushbackAction::DeactivateLocal));
        assert!(plane
            .upstream
            .iter()
            .any(|m| matches!(m.verb, ControlVerb::Withdraw { victim: VICTIM })));
        assert!(!c.is_defending());
    }

    fn report(nonce: u64, aggregate_bps: u64) -> ControlMsg {
        ControlMsg::new(
            identity(1),
            nonce,
            ControlVerb::Report {
                victim: VICTIM,
                aggregate_bps,
            },
        )
    }

    #[test]
    fn subsidence_stands_the_victim_down_and_stops_upstream() {
        let mut cfg = config();
        cfg.subsidence_intervals = 3;
        let mut c = DomainCoordinator::new(cfg, PushbackRole::Victim, identity(0));
        c.trust_upstream(identity(1));
        c.local_start(VICTIM, 2);
        let mut plane = BufferedPlane::new();
        // Flood: escalate.
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(c.is_escalated());
        plane.clear();
        // The chain top reports a subsided raw aggregate (2000 B/s is
        // the healthy ceiling here); a reported relapse resets the
        // count.
        let _ = deliver(&mut c, report(1, 500), 1500.0, &mut plane);
        let _ = tick(&mut c, 1500.0, &mut plane);
        let _ = tick(&mut c, 1500.0, &mut plane);
        let _ = deliver(&mut c, report(2, 9000), 1500.0, &mut plane); // relapse
        let _ = tick(&mut c, 1500.0, &mut plane);
        let _ = deliver(&mut c, report(3, 500), 1500.0, &mut plane);
        let _ = tick(&mut c, 1500.0, &mut plane);
        let _ = tick(&mut c, 1500.0, &mut plane);
        assert!(c.is_defending(), "not healthy long enough yet");
        let actions = tick(&mut c, 1500.0, &mut plane);
        assert!(actions.contains(&PushbackAction::DeactivateLocal));
        assert_eq!(c.state(), LifecycleState::StandingDown);
        assert_eq!(c.stats().stops_sent, 1);
        assert!(plane
            .upstream
            .iter()
            .any(|m| matches!(m.verb, ControlVerb::Stop { victim: VICTIM })));
        // One interval later the machine is idle and restartable.
        let _ = tick(&mut c, 1500.0, &mut plane);
        assert_eq!(c.state(), LifecycleState::Idle);
        c.local_start(VICTIM, 2);
        assert!(c.is_defending());
    }

    #[test]
    fn source_floor_reads_few_senders_as_healthy_despite_heavy_load() {
        // Bandwidth says "overloaded" every interval, but the distinct
        // source cardinality says two senders — aggressive legit load.
        let mut cfg = config();
        cfg.subsidence_intervals = 3;
        cfg.subsidence_source_floor = 10.0;
        let mut c = DomainCoordinator::new(cfg, PushbackRole::Victim, identity(0));
        c.local_start(VICTIM, 0); // no budget: never escalates
        let mut plane = BufferedPlane::new();
        for _ in 0..2 {
            c.set_observed_sources(2.0);
            let _ = tick(&mut c, 50_000.0, &mut plane);
        }
        assert!(c.is_defending(), "not healthy long enough yet");
        c.set_observed_sources(2.0);
        let actions = tick(&mut c, 50_000.0, &mut plane);
        assert!(actions.contains(&PushbackAction::DeactivateLocal));
        assert_eq!(c.state(), LifecycleState::StandingDown);
    }

    #[test]
    fn source_floor_ignores_flood_scale_cardinality() {
        // Same load from hundreds of senders: the guard must not fire.
        let mut cfg = config();
        cfg.subsidence_intervals = 3;
        cfg.subsidence_source_floor = 10.0;
        let mut c = DomainCoordinator::new(cfg, PushbackRole::Victim, identity(0));
        c.local_start(VICTIM, 0);
        let mut plane = BufferedPlane::new();
        for _ in 0..10 {
            c.set_observed_sources(400.0);
            let _ = tick(&mut c, 50_000.0, &mut plane);
        }
        assert!(c.is_defending(), "many senders above ceiling is an attack");
    }

    #[test]
    fn zero_source_floor_leaves_subsidence_unchanged() {
        // The default (disabled) guard must not let cardinality in.
        let mut cfg = config();
        cfg.subsidence_intervals = 3;
        let mut c = DomainCoordinator::new(cfg, PushbackRole::Victim, identity(0));
        c.local_start(VICTIM, 0);
        let mut plane = BufferedPlane::new();
        for _ in 0..10 {
            c.set_observed_sources(1.0);
            let _ = tick(&mut c, 50_000.0, &mut plane);
        }
        assert!(c.is_defending(), "floor 0 disables the guard");
    }

    #[test]
    fn escalated_victim_needs_upstream_reports_to_stand_down() {
        // A quiet boundary while escalated just means the upstream
        // defense is working — without status reports the victim must
        // keep the conversation alive; with reports still showing the
        // raw flood it must keep defending too.
        let mut cfg = config();
        cfg.subsidence_intervals = 3;
        let mut c = DomainCoordinator::new(cfg, PushbackRole::Victim, identity(0));
        c.trust_upstream(identity(1));
        c.local_start(VICTIM, 2);
        let mut plane = BufferedPlane::new();
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(c.is_escalated());
        for _ in 0..20 {
            let _ = tick(&mut c, 100.0, &mut plane);
        }
        assert!(
            c.is_escalated(),
            "no stand-down on local evidence alone while escalated"
        );
        // Reports of a still-raging raw flood hold the defense up even
        // though the local boundary is quiet (the cut works).
        let _ = deliver(&mut c, report(1, 9000), 100.0, &mut plane);
        for _ in 0..4 {
            let _ = tick(&mut c, 100.0, &mut plane);
        }
        assert!(c.is_escalated(), "reported raw flood keeps the defense up");
        // A forged report of subsidence from an unknown identity
        // changes nothing.
        let forged = ControlMsg::new(
            identity(9),
            1,
            ControlVerb::Report {
                victim: VICTIM,
                aggregate_bps: 0,
            },
        );
        let _ = deliver(&mut c, forged, 100.0, &mut plane);
        for _ in 0..5 {
            let _ = tick(&mut c, 100.0, &mut plane);
        }
        assert!(c.is_escalated(), "forged Report must be ignored");
        // The vetted subsided report unlocks the stand-down.
        let _ = deliver(&mut c, report(5, 200), 100.0, &mut plane);
        let mut stood_down = false;
        for _ in 0..4 {
            stood_down |= !tick(&mut c, 100.0, &mut plane).is_empty();
        }
        assert!(stood_down, "reported subsidence stands the victim down");
    }

    #[test]
    fn leased_defender_reports_its_effective_view_downstream() {
        let mut cfg = config();
        cfg.subsidence_intervals = 3;
        let mut c = DomainCoordinator::new(cfg, PushbackRole::Upstream, identity(1));
        c.authorize(identity(0));
        c.trust_upstream(identity(2));
        let mut plane = BufferedPlane::new();
        let _ = deliver(&mut c, request(1, 9000, 0), 9000.0, &mut plane);
        assert!(c.is_defending());
        // The lease stays alive through refreshes; every
        // refresh_intervals the defender reports its effective view to
        // its lessor — here the raw boundary inflow (chain top).
        for round in 0..6u64 {
            let _ = deliver(&mut c, refresh(2 + round, 0), 9000.0, &mut plane);
            let _ = tick(&mut c, 9000.0, &mut plane);
        }
        assert!(c.is_defending(), "reporting defender keeps dropping");
        let reports: Vec<u64> = plane
            .downstream
            .iter()
            .filter_map(|(to, m)| match m.verb {
                ControlVerb::Report {
                    victim: VICTIM,
                    aggregate_bps,
                } if *to == identity(0) => Some(aggregate_bps),
                _ => None,
            })
            .collect();
        assert!(
            !reports.is_empty(),
            "leased defender must report downstream: {:?}",
            plane.downstream
        );
        assert!(reports.iter().all(|&bps| bps == 9000));
        assert!(c.stats().reports_sent >= 1);
        // With a deeper report on file, the relayed view takes the
        // larger of the two (raw scale survives aggregation even when
        // the local boundary quiets down).
        let deeper = ControlMsg::new(
            identity(2),
            1,
            ControlVerb::Report {
                victim: VICTIM,
                aggregate_bps: 50_000,
            },
        );
        let _ = deliver(&mut c, deeper, 100.0, &mut plane);
        plane.clear();
        for round in 0..6u64 {
            let _ = deliver(&mut c, refresh(20 + round, 0), 100.0, &mut plane);
            let _ = tick(&mut c, 100.0, &mut plane);
        }
        let relayed: Vec<u64> = plane
            .downstream
            .iter()
            .filter_map(|(_, m)| match m.verb {
                ControlVerb::Report { aggregate_bps, .. } => Some(aggregate_bps),
                _ => None,
            })
            .collect();
        assert!(
            relayed.iter().any(|&bps| bps >= 50_000),
            "deeper raw scale must survive relay: {relayed:?}"
        );
    }

    #[test]
    fn local_stop_withdraws_escalation() {
        let mut plane = BufferedPlane::new();
        let mut c = victim_coord(1);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(c.is_escalated());
        plane.clear();
        c.local_stop(&mut plane);
        assert_eq!(plane.upstream.len(), 1);
        assert!(matches!(
            plane.upstream[0].verb,
            ControlVerb::Withdraw { victim: VICTIM }
        ));
        assert!(!c.is_defending());
        // Restart works from scratch.
        c.local_start(VICTIM, 1);
        assert!(c.is_defending());
        assert!(!c.is_escalated());
    }

    #[test]
    fn config_validation() {
        assert!(PushbackConfig::default().validate().is_ok());
        assert_eq!(
            PushbackConfig {
                threshold_bps: 0.0,
                ..config()
            }
            .validate(),
            Err(PushbackConfigError::NonPositiveThreshold(0.0))
        );
        assert_eq!(
            PushbackConfig {
                trigger_intervals: 0,
                ..config()
            }
            .validate(),
            Err(PushbackConfigError::ZeroIntervalCount)
        );
        assert_eq!(
            PushbackConfig {
                hold_intervals: 2,
                refresh_intervals: 2,
                ..config()
            }
            .validate(),
            Err(PushbackConfigError::HoldNotAboveRefresh {
                hold: 2,
                refresh: 2
            })
        );
        assert!(matches!(
            PushbackConfig {
                healthy_bps: f64::NAN,
                ..config()
            }
            .validate(),
            Err(PushbackConfigError::NonPositiveHealthyRate(_))
        ));
        assert_eq!(
            PushbackConfig {
                subsidence_source_floor: -1.0,
                ..config()
            }
            .validate(),
            Err(PushbackConfigError::NegativeSourceFloor(-1.0))
        );
        let mut cfg = config();
        cfg.trust.attestation_fraction = 1.5;
        assert_eq!(
            cfg.validate(),
            Err(PushbackConfigError::AttestationFractionOutOfRange(1.5))
        );
    }

    #[test]
    fn config_errors_display_the_field() {
        let err = PushbackConfigError::HoldNotAboveRefresh {
            hold: 2,
            refresh: 3,
        };
        assert!(err.to_string().contains("hold_intervals"));
        assert!(PushbackConfigError::NonPositiveThreshold(-1.0)
            .to_string()
            .contains("threshold_bps"));
        assert!(PushbackConfigError::AttestationFractionOutOfRange(2.0)
            .to_string()
            .contains("attestation_fraction"));
    }

    /// Regression: with two upstream targets, one sibling's `Deny` must
    /// not lapse the lease the *other* sibling granted. Refreshes keep
    /// flowing (skipping only the denied target) and the denied target
    /// is never asked again.
    #[test]
    fn sibling_deny_keeps_the_corroborated_branch_refreshed() {
        let mut plane = BufferedPlane::with_targets(vec![identity(1), identity(2)]);
        let mut c = DomainCoordinator::new(config(), PushbackRole::Victim, identity(0));
        c.trust_upstream(identity(1));
        c.trust_upstream(identity(2));
        c.local_start(VICTIM, 2);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(c.is_escalated());
        // Sibling identity(2) denies; identity(1) granted and stays quiet.
        let deny = ControlMsg::new(
            identity(2),
            1,
            ControlVerb::Deny {
                victim: VICTIM,
                reason: DenyReason::Uncorroborated,
            },
        );
        let _ = deliver(&mut c, deny, 5000.0, &mut plane);
        assert!(
            c.is_escalated(),
            "one sibling's denial must not abandon the granted branch"
        );
        plane.clear();
        // Refreshes keep the granted lease alive, skipping the denier.
        for _ in 0..4 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert_eq!(plane.upstream.len(), 2, "refresh every refresh_intervals");
        for (msg, skips) in plane.upstream.iter().zip(&plane.upstream_skips) {
            assert!(matches!(msg.verb, ControlVerb::Refresh { .. }));
            assert_eq!(skips, &vec![identity(2)], "denied target is skipped");
        }
        // The second sibling's denial ends the escalation for good.
        let deny2 = ControlMsg::new(
            identity(1),
            1,
            ControlVerb::Deny {
                victim: VICTIM,
                reason: DenyReason::BudgetExhausted,
            },
        );
        let _ = deliver(&mut c, deny2, 5000.0, &mut plane);
        assert_eq!(c.state(), LifecycleState::Defending);
        plane.clear();
        for _ in 0..10 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        assert!(
            plane.upstream.is_empty(),
            "fully denied: never re-escalates"
        );
    }

    /// A duplicate `Deny` from the same target must not count twice
    /// against the all-targets-denied fallback.
    #[test]
    fn duplicate_deny_from_one_sibling_counts_once() {
        let mut plane = BufferedPlane::with_targets(vec![identity(1), identity(2)]);
        let mut c = DomainCoordinator::new(config(), PushbackRole::Victim, identity(0));
        c.trust_upstream(identity(1));
        c.trust_upstream(identity(2));
        c.local_start(VICTIM, 2);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        for nonce in 1..=2 {
            let deny = ControlMsg::new(
                identity(2),
                nonce,
                ControlVerb::Deny {
                    victim: VICTIM,
                    reason: DenyReason::Uncorroborated,
                },
            );
            let _ = deliver(&mut c, deny, 5000.0, &mut plane);
        }
        assert!(
            c.is_escalated(),
            "two denials from one target are one denied target"
        );
        assert_eq!(c.stats().denies_received, 2);
    }

    #[test]
    fn snapshot_round_trips_an_escalated_coordinator() {
        use mafic_obs::{SnapshotState, StateHash};
        let mut plane = BufferedPlane::with_targets(vec![identity(1), identity(2)]);
        let mut c = DomainCoordinator::new(config(), PushbackRole::Victim, identity(0));
        c.trust_upstream(identity(1));
        c.trust_upstream(identity(2));
        c.local_start(VICTIM, 2);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0, &mut plane);
        }
        let deny = ControlMsg::new(
            identity(2),
            1,
            ControlVerb::Deny {
                victim: VICTIM,
                reason: DenyReason::Uncorroborated,
            },
        );
        let _ = deliver(&mut c, deny, 5000.0, &mut plane);
        let report = ControlMsg::new(identity(1), 1, {
            ControlVerb::Report {
                victim: VICTIM,
                aggregate_bps: 4000,
            }
        });
        let _ = deliver(&mut c, report, 5000.0, &mut plane);
        assert!(c.is_escalated());

        let mut w = mafic_obs::SnapWriter::new();
        c.snap_save(&mut w);
        let bytes = w.into_bytes();
        // Restore into a freshly built coordinator with the same
        // build-time wiring — the rebuild-and-overlay contract.
        let mut restored = DomainCoordinator::new(config(), PushbackRole::Victim, identity(0));
        restored.trust_upstream(identity(1));
        restored.trust_upstream(identity(2));
        let mut r = mafic_obs::SnapReader::new(&bytes);
        restored.snap_restore(&mut r).expect("restore succeeds");
        assert!(r.is_empty(), "payload fully consumed");

        let digest = |c: &DomainCoordinator| {
            let mut h = mafic_obs::Fnv64::new();
            c.hash_state(&mut h);
            h.finish()
        };
        assert_eq!(digest(&c), digest(&restored));
        // The restored machine continues identically: both refresh on
        // the same interval, still skipping the denied sibling.
        let mut p1 = BufferedPlane::with_targets(vec![identity(1), identity(2)]);
        let mut p2 = BufferedPlane::with_targets(vec![identity(1), identity(2)]);
        for _ in 0..2 {
            let _ = tick(&mut c, 5000.0, &mut p1);
            let _ = tick(&mut restored, 5000.0, &mut p2);
        }
        assert_eq!(p1.upstream, p2.upstream);
        assert_eq!(p1.upstream_skips, p2.upstream_skips);
        assert_eq!(digest(&c), digest(&restored));
    }

    #[test]
    fn snapshot_rejects_unknown_lifecycle_tag() {
        use mafic_obs::SnapshotState;
        let mut w = mafic_obs::SnapWriter::new();
        w.write_u8(9);
        let bytes = w.into_bytes();
        let mut c = DomainCoordinator::new(config(), PushbackRole::Victim, identity(0));
        let mut r = mafic_obs::SnapReader::new(&bytes);
        let err = c.snap_restore(&mut r).expect_err("tag 9 is invalid");
        assert!(err.to_string().contains("lifecycle tag 9"), "{err}");
    }
}
