//! MAFIC vs proportional dropping — the motivating comparison.
//!
//! The authors' earlier pushback work dropped every victim-bound packet
//! with the same probability, so legitimate flows paid the same price as
//! zombies. This example runs identical attack scenarios under both
//! policies and prints the collateral-damage contrast side by side.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use mafic_suite::core::DropPolicy;
use mafic_suite::workload::{run_spec, ScenarioSpec};

fn main() -> Result<(), mafic_suite::workload::WorkloadError> {
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "policy", "alpha %", "theta_n %", "theta_p %", "Lr %", "beta %"
    );
    for pd in [0.7, 0.8, 0.9] {
        for policy in [DropPolicy::Mafic, DropPolicy::Proportional] {
            let spec = ScenarioSpec {
                policy,
                drop_probability: pd,
                seed: 7,
                ..ScenarioSpec::default()
            };
            let outcome = run_spec(spec)?;
            let r = outcome.report;
            println!(
                "{:>11} {:>2.0}% {:>10.3} {:>10.3} {:>10.4} {:>10.3} {:>10.2}",
                policy.to_string(),
                pd * 100.0,
                r.accuracy_pct,
                r.false_negative_pct,
                r.false_positive_pct,
                r.legit_drop_pct,
                r.traffic_reduction_pct
            );
        }
    }
    println!();
    println!("Note the Lr column: proportional dropping destroys ~Pd of the");
    println!("legitimate traffic for the whole defense window, while MAFIC's");
    println!("collateral damage stays within a few percent (paper Fig. 7).");
    Ok(())
}
