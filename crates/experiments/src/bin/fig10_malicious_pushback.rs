//! Regenerates Fig. 10: malicious pushback against the trust-aware
//! control plane. One honesty × trust-budget sweep feeds both panels —
//! the honest cascade (residual attack rate falls once the budget
//! admits it) and the compromised-provider attack (forged requests are
//! denied by attestation, so the victim's legitimate goodput holds; the
//! unguarded configuration shows the damage a believed forgery does).
//! A third section prints the control-plane denial tables per cell.
//! The whole figure derives from one grid run (single-seed per cell —
//! denial counters and stand-down latencies are not trial-averageable).

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    if let Err(e) = run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(cfg: &EngineConfig) -> Result<(), String> {
    let grid = figures::run_malicious_pushback_grid(cfg)?;
    println!("{}", figures::fig10a_from_grid(&grid));
    println!("{}", figures::fig10b_from_grid(&grid));
    print!("{}", figures::fig10_denial_summary(&grid));
    Ok(())
}
