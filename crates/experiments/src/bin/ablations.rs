//! Runs the DESIGN.md ablations: policy comparison, timer multiplier,
//! label mode, sketch precision.

use mafic_experiments::{ablations, trial_count};

fn main() {
    let trials = trial_count();
    let results = [
        ablations::policy_comparison(trials),
        ablations::timer_multiplier(trials),
        Ok(ablations::label_mode()),
        Ok(ablations::sketch_precision()),
    ];
    for result in results {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
