//! Acceptance tests for the adaptive adversary engine (the Fig. 11
//! scenario): every closed-loop strategy must do at least as much
//! damage as the open-loop flood it adapts from at equal budget (and
//! source rotation faster than the lease expiry must do strictly
//! more); rotation *no faster* than the lease must degenerate to a run
//! byte-identical to the open-loop baseline; the whole grid must be
//! deterministic at any engine worker count; and a checkpoint taken
//! mid-engagement must restore the controller and resume
//! byte-identically.

use mafic_suite::experiments::engine::run_specs;
use mafic_suite::experiments::figures::{
    adversary_strategy_series, fig11_spec, run_adaptive_adversary_grid, trust_budget_axis,
};
use mafic_suite::experiments::EngineConfig;
use mafic_suite::netsim::SimTime;
use mafic_suite::workload::{
    restore_run, resume_scenario, run_spec, AdversarySpec, RunOutcome, ScenarioSpec, StrategyKind,
};

#[test]
fn every_adaptive_strategy_at_least_matches_open_loop_at_equal_budget() {
    let cells =
        run_adaptive_adversary_grid(&EngineConfig { jobs: 4, trials: 1 }).expect("fig11 grid runs");
    for &budget in &trust_budget_axis() {
        let residual = |label: &str| {
            cells
                .iter()
                .find(|c| c.label == label && c.budget == budget)
                .unwrap_or_else(|| panic!("cell {label}@{budget} missing"))
                .outcome
                .report
                .residual_attack_bps
        };
        let open = residual("open loop");
        for (label, strategy) in adversary_strategy_series() {
            if strategy.is_none() {
                continue;
            }
            let adaptive = residual(&label);
            // Equal budget is part of the strategies' contract, so a
            // closed loop below the open loop would mean adapting
            // *helped the defense* — the one outcome Fig. 11 exists to
            // rule out.
            assert!(
                adaptive >= open - 1e-6,
                "{label} fell below open loop at budget {budget}: {adaptive:.1} < {open:.1} B/s"
            );
        }
        // Rotation inside the lease must demonstrably degrade the
        // defense, not just match it: paused cohorts drain the meters
        // into a stand-down and resume against flushed tables.
        let rotation = residual("rotation");
        assert!(
            rotation > open * 1.05,
            "rotation must strictly beat open loop at budget {budget}: \
             {rotation:.1} vs {open:.1} B/s"
        );
    }
}

/// Everything a run reports except the ledger (which, when enabled,
/// intentionally grows an `adversary` component for armed runs).
fn assert_runs_identical(a: &RunOutcome, b: &RunOutcome, ctx: &str) {
    assert_eq!(a.report, b.report, "{ctx}: report");
    assert_eq!(a.series, b.series, "{ctx}: offered-load series");
    assert_eq!(a.goodput_series, b.goodput_series, "{ctx}: goodput series");
    assert_eq!(a.triggered_at, b.triggered_at, "{ctx}: trigger instant");
    assert_eq!(a.atr_nodes, b.atr_nodes, "{ctx}: ATR nodes");
    assert_eq!(a.escalations, b.escalations, "{ctx}: escalation log");
    assert_eq!(
        a.max_pushback_depth, b.max_pushback_depth,
        "{ctx}: pushback depth"
    );
    assert_eq!(a.control, b.control, "{ctx}: control plane");
    assert_eq!(a.stood_down_at, b.stood_down_at, "{ctx}: stand-down");
    assert_eq!(a.packets_sent, b.packets_sent, "{ctx}: packets sent");
    assert_eq!(
        a.packets_delivered, b.packets_delivered,
        "{ctx}: packets delivered"
    );
}

#[test]
fn rotation_no_faster_than_the_lease_is_identical_to_open_loop() {
    // The defense's soft state outlives every pause, so the strategy's
    // own best response is to never rotate: the controller emits zero
    // directives and the armed run must reproduce the adversary-free
    // run exactly — the contract the bench harness's inert-hook
    // overhead measurement also leans on.
    let open = run_spec(fig11_spec(None, 2)).expect("open-loop run");
    let lease = AdversarySpec::default().lease_intervals;
    let inert = run_spec(fig11_spec(
        Some(StrategyKind::SourceRotation {
            period_intervals: lease,
            active_fraction: 0.5,
        }),
        2,
    ))
    .expect("inert rotation run");
    assert_runs_identical(&open, &inert, "lease-gated rotation");
}

#[test]
fn fig11_grid_is_identical_at_one_and_four_workers() {
    let mut specs = Vec::new();
    for (_, strategy) in adversary_strategy_series() {
        for &budget in &trust_budget_axis() {
            specs.push(fig11_spec(strategy, budget as u32));
        }
    }
    let serial = run_specs(specs.clone(), 1).expect("serial grid");
    let parallel = run_specs(specs, 4).expect("parallel grid");
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_runs_identical(s, p, "1-vs-4-worker cell");
    }
}

#[test]
fn checkpoint_roundtrips_the_adversary_mid_engagement() {
    // Capture while the rotation loop is live (attack starts at 1.0s,
    // the lease-churning cohort switches every 4 monitor intervals) so
    // the snapshot must carry real controller state — cohort index,
    // interval counters, RNG — for the resumed run to agree.
    let spec = ScenarioSpec {
        checkpoint_at: Some(SimTime::from_secs_f64(3.0)),
        ledger: true,
        ..fig11_spec(adversary_strategy_series()[1].1, 2)
    };
    let straight = run_spec(spec.clone()).expect("straight run");
    let bytes = straight.checkpoint.as_ref().expect("checkpoint captured");
    let (mut scenario, state) = restore_run(&spec, bytes).expect("restore verifies");
    let resumed = resume_scenario(&mut scenario, state).expect("resumed run completes");
    assert_runs_identical(&straight, &resumed, "adversary checkpoint");
    // With the ledger on, the armed run probes the controller as its
    // own component every interval; the chained hashes must agree too.
    let jsonl = |o: &RunOutcome| o.ledger.as_ref().expect("ledger enabled").to_jsonl();
    assert_eq!(
        jsonl(&straight),
        jsonl(&resumed),
        "adversary checkpoint: run ledger"
    );
}
