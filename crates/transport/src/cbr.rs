//! Unresponsive constant-rate senders — attack zombies and plain UDP
//! sources.
//!
//! An [`UnresponsiveSender`] transmits at a fixed packet rate (with
//! optional jitter) and ignores every incoming packet: genuine ACKs,
//! losses, and — decisively for MAFIC — the duplicate-ACK probe bursts.
//! Its arrival rate at the ATR therefore never decreases during the
//! probing window, and the flow lands in the Permanently Drop Table.
//!
//! The claimed source address in the flow key may be *spoofed*: the
//! workload layer can label packets with another host's legitimate
//! address or with an unallocated (illegal) address while the true origin
//! is recorded only in the packet provenance.

use mafic_netsim::{
    Agent, AgentCtx, FlowKey, Packet, PacketKind, Provenance, SimDuration, SimTime,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;

/// Wire format the unresponsive sender emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbrProtocol {
    /// Plain UDP datagrams.
    Udp,
    /// TCP-looking data segments (SYN-flood-style zombies): carry sequence
    /// numbers and timestamps so they are indistinguishable from TCP at
    /// the router, but the sender never reacts to feedback.
    TcpLike,
}

/// Tunables for [`UnresponsiveSender`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CbrConfig {
    /// Average sending rate in packets per second.
    pub rate_pps: f64,
    /// Packet size in bytes.
    pub packet_size: u32,
    /// Inter-packet jitter as a fraction of the nominal interval
    /// (0 = perfectly periodic, 0.5 = ±50%).
    pub jitter: f64,
    /// Wire format.
    pub protocol: CbrProtocol,
}

impl Default for CbrConfig {
    fn default() -> Self {
        CbrConfig {
            rate_pps: 125.0,
            packet_size: 500,
            jitter: 0.2,
            protocol: CbrProtocol::Udp,
        }
    }
}

impl CbrConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate_pps.is_finite() && self.rate_pps > 0.0) {
            return Err(format!("rate_pps must be positive, got {}", self.rate_pps));
        }
        if self.packet_size == 0 {
            return Err("packet_size must be positive".into());
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err(format!("jitter must be in [0, 1), got {}", self.jitter));
        }
        Ok(())
    }
}

/// A constant-rate sender that ignores all feedback.
#[derive(Debug)]
pub struct UnresponsiveSender {
    key: FlowKey,
    config: CbrConfig,
    is_attack: bool,
    rng: SmallRng,
    seq: u64,
    sent: u64,
    ignored_inbound: u64,
    stop_after: Option<SimTime>,
    second_wave: Option<(SimTime, SimTime)>,
    timer_token: u64,
    /// Adversary-controller retargeting: while paused the timer chain
    /// keeps ticking (so the RNG stream and resume latency stay
    /// deterministic) but nothing is emitted.
    paused: bool,
    /// Rate multiplier in thousandths of the configured rate
    /// (1000 = nominal). The open-loop default leaves the inter-packet
    /// interval computation bit-identical to the pre-adversary path.
    rate_scale_milli: u32,
}

impl UnresponsiveSender {
    /// Creates a sender for `key`.
    ///
    /// `key.src` is the *claimed* source address — spoofing is expressed
    /// by passing a key whose source differs from the host the agent is
    /// attached to. `seed` derives the jitter sequence deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — a configuration bug.
    #[must_use]
    pub fn new(key: FlowKey, config: CbrConfig, is_attack: bool, seed: u64) -> Self {
        config.validate().expect("invalid CbrConfig");
        UnresponsiveSender {
            key,
            config,
            is_attack,
            rng: SmallRng::seed_from_u64(seed),
            seq: 0,
            sent: 0,
            ignored_inbound: 0,
            stop_after: None,
            second_wave: None,
            timer_token: 0,
            paused: false,
            rate_scale_milli: 1000,
        }
    }

    /// Stops transmitting after the given instant.
    pub fn set_stop_after(&mut self, at: SimTime) {
        self.stop_after = Some(at);
    }

    /// Arms a second transmission wave: after the sender goes quiet at
    /// its [`set_stop_after`](UnresponsiveSender::set_stop_after)
    /// instant, it wakes again at `resume` and transmits until `stop`.
    /// The resume ride the same timer chain (token-staleness semantics
    /// unchanged), so the whole two-wave schedule stays deterministic.
    pub fn set_second_wave(&mut self, resume: SimTime, stop: SimTime) {
        self.second_wave = Some((resume, stop));
    }

    /// Pauses or resumes transmission. A paused sender keeps its timer
    /// chain alive so a later resume takes effect within one interval.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    /// Whether the sender is currently paused by its controller.
    #[must_use]
    pub fn paused(&self) -> bool {
        self.paused
    }

    /// Scales the sending rate, in thousandths of the configured
    /// nominal rate (1000 = nominal, 2000 = double).
    ///
    /// # Panics
    ///
    /// Panics on a zero scale — a controller bug; pausing is expressed
    /// via [`set_paused`](UnresponsiveSender::set_paused), not a zero
    /// rate.
    pub fn set_rate_scale_milli(&mut self, scale_milli: u32) {
        assert!(scale_milli > 0, "rate scale must be positive");
        self.rate_scale_milli = scale_milli;
    }

    /// Current rate scale in thousandths of nominal.
    #[must_use]
    pub fn rate_scale_milli(&self) -> u32 {
        self.rate_scale_milli
    }

    /// Packets transmitted.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Inbound packets (ACKs, probes) received and ignored.
    #[must_use]
    pub fn ignored_inbound(&self) -> u64 {
        self.ignored_inbound
    }

    /// The flow key this sender transmits on.
    #[must_use]
    pub fn flow_key(&self) -> FlowKey {
        self.key
    }

    fn interval(&mut self) -> SimDuration {
        let mut nominal = 1.0 / self.config.rate_pps;
        if self.rate_scale_milli != 1000 {
            nominal = nominal * 1000.0 / f64::from(self.rate_scale_milli);
        }
        let jitter = if self.config.jitter > 0.0 {
            1.0 + self.config.jitter * (self.rng.gen::<f64>() * 2.0 - 1.0)
        } else {
            1.0
        };
        SimDuration::from_secs_f64(nominal * jitter)
    }

    fn emit(&mut self, ctx: &mut AgentCtx<'_>) {
        let kind = match self.config.protocol {
            CbrProtocol::Udp => PacketKind::Udp,
            CbrProtocol::TcpLike => PacketKind::TcpData {
                seq: self.seq,
                ts: ctx.now(),
                ts_echo: SimTime::ZERO,
            },
        };
        let pkt = Packet {
            id: ctx.fresh_packet_id(),
            key: self.key,
            kind,
            size_bytes: self.config.packet_size,
            created_at: ctx.now(),
            provenance: Provenance {
                origin: ctx.agent_id(),
                is_attack: self.is_attack,
            },
            hops: 0,
        };
        ctx.send_packet(pkt);
        self.seq += 1;
        self.sent += 1;
    }

    fn schedule_next(&mut self, ctx: &mut AgentCtx<'_>) {
        let delay = self.interval();
        self.timer_token += 1;
        ctx.schedule_in(delay, self.timer_token);
    }
}

impl Agent for UnresponsiveSender {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        if !self.paused {
            self.emit(ctx);
        }
        self.schedule_next(ctx);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut AgentCtx<'_>) {
        // The defining behaviour: feedback is ignored entirely.
        self.ignored_inbound += 1;
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_>) {
        if token != self.timer_token {
            return;
        }
        if let Some(stop) = self.stop_after {
            if ctx.now() >= stop {
                // End of the current wave. If a second wave is armed,
                // sleep until its resume instant instead of letting the
                // timer chain end; the resume wake re-enters this
                // handler past the (now-swapped) stop check and emits.
                if let Some((resume, next_stop)) = self.second_wave.take() {
                    self.stop_after = Some(next_stop);
                    self.timer_token += 1;
                    ctx.schedule_in(resume.saturating_since(ctx.now()), self.timer_token);
                }
                return;
            }
        }
        if !self.paused {
            self.emit(ctx);
        }
        self.schedule_next(ctx);
    }

    fn snap_save(&self, w: &mut mafic_netsim::SnapWriter) {
        for word in self.rng.state() {
            w.write_u64(word);
        }
        w.write_u64(self.seq);
        w.write_u64(self.sent);
        w.write_u64(self.ignored_inbound);
        match self.stop_after {
            None => w.write_u8(0),
            Some(t) => {
                w.write_u8(1);
                w.write_u64(t.as_nanos());
            }
        }
        match self.second_wave {
            None => w.write_u8(0),
            Some((resume, stop)) => {
                w.write_u8(1);
                w.write_u64(resume.as_nanos());
                w.write_u64(stop.as_nanos());
            }
        }
        w.write_u64(self.timer_token);
        w.write_bool(self.paused);
        w.write_u32(self.rate_scale_milli);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_netsim::SnapReader<'_>,
    ) -> Result<(), mafic_netsim::SnapError> {
        let state = [r.read_u64()?, r.read_u64()?, r.read_u64()?, r.read_u64()?];
        self.rng = SmallRng::from_state(state);
        self.seq = r.read_u64()?;
        self.sent = r.read_u64()?;
        self.ignored_inbound = r.read_u64()?;
        self.stop_after = match r.read_u8()? {
            0 => None,
            1 => Some(SimTime::from_nanos(r.read_u64()?)),
            tag => {
                return Err(mafic_netsim::SnapError::Malformed(format!(
                    "stop-after tag {tag}"
                )))
            }
        };
        self.second_wave = match r.read_u8()? {
            0 => None,
            1 => Some((
                SimTime::from_nanos(r.read_u64()?),
                SimTime::from_nanos(r.read_u64()?),
            )),
            tag => {
                return Err(mafic_netsim::SnapError::Malformed(format!(
                    "second-wave tag {tag}"
                )))
            }
        };
        self.timer_token = r.read_u64()?;
        self.paused = r.read_bool()?;
        self.rate_scale_milli = r.read_u32()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::AgentHarness;
    use mafic_netsim::Addr;

    fn key() -> FlowKey {
        FlowKey::new(
            Addr::from_octets(10, 0, 0, 9),
            Addr::from_octets(10, 9, 0, 1),
            6000,
            80,
        )
    }

    fn sender(protocol: CbrProtocol, jitter: f64) -> UnresponsiveSender {
        UnresponsiveSender::new(
            key(),
            CbrConfig {
                rate_pps: 100.0,
                packet_size: 400,
                jitter,
                protocol,
            },
            true,
            7,
        )
    }

    #[test]
    fn start_emits_and_schedules() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.0);
        let fx = h.start(&mut s);
        assert_eq!(fx.sent.len(), 1);
        assert_eq!(fx.sent[0].kind, PacketKind::Udp);
        assert!(fx.sent[0].provenance.is_attack);
        assert_eq!(fx.timers.len(), 1);
        // Zero jitter => exactly the nominal 10 ms interval.
        assert_eq!(fx.timers[0].0, SimDuration::from_millis(10));
    }

    #[test]
    fn timer_chain_sustains_rate() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.0);
        let fx = h.start(&mut s);
        let mut token = fx.timers[0].1;
        for _ in 0..9 {
            h.advance(SimDuration::from_millis(10));
            let fx = h.fire_timer(&mut s, token);
            assert_eq!(fx.sent.len(), 1);
            token = fx.timers[0].1;
        }
        assert_eq!(s.sent(), 10);
    }

    #[test]
    fn probes_are_ignored() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.0);
        let _ = h.start(&mut s);
        let probe = Packet {
            id: 1,
            key: key().reversed(),
            kind: PacketKind::ProbeDupAck { count: 3 },
            size_bytes: 40,
            created_at: h.now,
            provenance: Provenance::infrastructure(),
            hops: 0,
        };
        let fx = h.deliver(&mut s, probe);
        assert!(fx.sent.is_empty(), "no reaction to probes");
        assert_eq!(s.ignored_inbound(), 1);
    }

    #[test]
    fn tcp_like_zombie_emits_tcp_data() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::TcpLike, 0.0);
        let fx = h.start(&mut s);
        assert!(matches!(
            fx.sent[0].kind,
            PacketKind::TcpData { seq: 0, .. }
        ));
    }

    #[test]
    fn jitter_varies_intervals_deterministically() {
        let run = || {
            let mut h = AgentHarness::new();
            let mut s = sender(CbrProtocol::Udp, 0.5);
            let fx = h.start(&mut s);
            let mut intervals = vec![fx.timers[0].0];
            let mut token = fx.timers[0].1;
            for _ in 0..5 {
                h.advance(SimDuration::from_millis(10));
                let fx = h.fire_timer(&mut s, token);
                intervals.push(fx.timers[0].0);
                token = fx.timers[0].1;
            }
            intervals
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same jitter sequence");
        assert!(a.iter().any(|&d| d != a[0]), "jitter should vary intervals");
    }

    #[test]
    fn stop_after_halts_transmission() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.0);
        let fx = h.start(&mut s);
        s.set_stop_after(SimTime::from_secs_f64(0.005));
        h.advance(SimDuration::from_millis(10));
        let fx2 = h.fire_timer(&mut s, fx.timers[0].1);
        assert!(fx2.sent.is_empty());
        assert!(fx2.timers.is_empty(), "chain ends");
    }

    #[test]
    fn second_wave_resumes_after_the_gap() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.0);
        let fx = h.start(&mut s);
        s.set_stop_after(SimTime::from_secs_f64(0.005));
        s.set_second_wave(SimTime::from_secs_f64(0.100), SimTime::from_secs_f64(0.105));
        // First wave ends: the 10 ms tick lands past stop_after, emits
        // nothing, and instead schedules the resume wake at 100 ms.
        h.advance(SimDuration::from_millis(10));
        let fx2 = h.fire_timer(&mut s, fx.timers[0].1);
        assert!(fx2.sent.is_empty(), "quiet during the gap");
        assert_eq!(fx2.timers.len(), 1, "resume wake armed");
        assert_eq!(fx2.timers[0].0, SimDuration::from_millis(90));
        // Resume wake: the sender emits again and re-arms its chain.
        h.advance(SimDuration::from_millis(90));
        let fx3 = h.fire_timer(&mut s, fx2.timers[0].1);
        assert_eq!(fx3.sent.len(), 1, "second wave transmits");
        assert_eq!(fx3.timers.len(), 1);
        // Second stop: past 105 ms the chain ends for good.
        h.advance(SimDuration::from_millis(10));
        let fx4 = h.fire_timer(&mut s, fx3.timers[0].1);
        assert!(fx4.sent.is_empty());
        assert!(fx4.timers.is_empty(), "no third wave");
    }

    #[test]
    fn stale_timer_tokens_ignored() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.0);
        let _ = h.start(&mut s);
        let fx = h.fire_timer(&mut s, 999);
        assert!(fx.sent.is_empty());
    }

    #[test]
    fn paused_sender_keeps_chain_alive_and_resumes() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.0);
        let fx = h.start(&mut s);
        s.set_paused(true);
        // Two quiet ticks: nothing emitted, chain keeps ticking.
        let mut token = fx.timers[0].1;
        for _ in 0..2 {
            h.advance(SimDuration::from_millis(10));
            let fx = h.fire_timer(&mut s, token);
            assert!(fx.sent.is_empty(), "paused sender must stay quiet");
            assert_eq!(fx.timers.len(), 1, "timer chain stays alive");
            token = fx.timers[0].1;
        }
        // Resume: the very next tick transmits again.
        s.set_paused(false);
        h.advance(SimDuration::from_millis(10));
        let fx = h.fire_timer(&mut s, token);
        assert_eq!(fx.sent.len(), 1);
        assert_eq!(s.sent(), 2);
    }

    #[test]
    fn rate_scale_shortens_intervals_and_default_is_nominal() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.0);
        let fx = h.start(&mut s);
        assert_eq!(fx.timers[0].0, SimDuration::from_millis(10));
        // Double rate => half the interval.
        s.set_rate_scale_milli(2000);
        h.advance(SimDuration::from_millis(10));
        let fx2 = h.fire_timer(&mut s, fx.timers[0].1);
        assert_eq!(fx2.timers[0].0, SimDuration::from_millis(5));
    }

    #[test]
    fn pause_and_scale_snapshot_round_trip() {
        let mut h = AgentHarness::new();
        let mut s = sender(CbrProtocol::Udp, 0.2);
        let _ = h.start(&mut s);
        s.set_paused(true);
        s.set_rate_scale_milli(1500);
        let mut w = mafic_netsim::SnapWriter::new();
        s.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = sender(CbrProtocol::Udp, 0.2);
        let mut r = mafic_netsim::SnapReader::new(&bytes);
        restored.snap_restore(&mut r).expect("restore");
        assert!(r.is_empty());
        assert!(restored.paused());
        assert_eq!(restored.rate_scale_milli(), 1500);
    }

    #[test]
    fn config_validation() {
        assert!(CbrConfig {
            rate_pps: 0.0,
            ..CbrConfig::default()
        }
        .validate()
        .is_err());
        assert!(CbrConfig {
            packet_size: 0,
            ..CbrConfig::default()
        }
        .validate()
        .is_err());
        assert!(CbrConfig {
            jitter: 1.0,
            ..CbrConfig::default()
        }
        .validate()
        .is_err());
        assert!(CbrConfig::default().validate().is_ok());
    }
}
