//! MAFIC configuration and the source-address legality oracle.

use crate::label::LabelMode;
use mafic_netsim::{Addr, SimDuration};
use std::fmt;

/// Decides whether a claimed source address is "legitimate" — a valid
/// address of some allocated subnet (the paper's definition; it says
/// nothing about whether the sender truly owns it).
///
/// Packets failing this check go straight to the Permanently Drop Table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum AddressValidator {
    /// Treat every address as legal (disables the illegal-source path).
    #[default]
    AllowAll,
    /// Legal iff the address falls inside one of the prefixes.
    Prefixes(Vec<(Addr, u8)>),
}

impl AddressValidator {
    /// True if `addr` is a legal source address.
    #[must_use]
    pub fn is_legal(&self, addr: Addr) -> bool {
        match self {
            AddressValidator::AllowAll => true,
            AddressValidator::Prefixes(prefixes) => prefixes
                .iter()
                .any(|&(prefix, len)| addr.in_prefix(prefix, len)),
        }
    }
}

/// Tunables of the MAFIC adaptive dropper.
///
/// Defaults follow the paper's Table II (`Pd = 90%`, timer `= 2 × RTT`).
///
/// # Example
///
/// ```
/// use mafic::MaficConfig;
///
/// let config = MaficConfig::builder()
///     .drop_probability(0.8)
///     .timer_rtt_multiplier(2.0)
///     .build()
///     .unwrap();
/// assert_eq!(config.drop_probability, 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MaficConfig {
    /// `Pd` — probability of dropping a packet of a new or suspicious
    /// flow during the probing phase.
    pub drop_probability: f64,
    /// Timer length as a multiple of the flow RTT (the paper uses 2).
    pub timer_rtt_multiplier: f64,
    /// Fallback RTT when a flow carries no usable timestamp.
    pub default_rtt: SimDuration,
    /// Lower clamp for per-flow RTT estimates.
    pub min_rtt: SimDuration,
    /// Upper clamp for per-flow RTT estimates.
    pub max_rtt: SimDuration,
    /// A flow is "responsive" if its post-probe rate is at most this
    /// fraction of its pre-probe baseline.
    pub decrease_threshold: f64,
    /// Number of duplicate ACKs per probe burst (≥ 3 triggers fast
    /// retransmit in compliant senders).
    pub probe_dup_acks: u8,
    /// Probe packet size in bytes.
    pub probe_size: u32,
    /// Label storage model for table-memory accounting
    /// ([`crate::FlowTables::approx_bytes`]). Classification itself is
    /// keyed by exact interned flow ids in every mode, so this no longer
    /// affects drop behaviour — only the modeled per-entry label cost.
    pub label_mode: LabelMode,
    /// SFT capacity (flows on probation).
    pub sft_capacity: usize,
    /// NFT capacity.
    pub nft_capacity: usize,
    /// PDT capacity.
    pub pdt_capacity: usize,
    /// Arrival-history retention for rate measurements.
    pub rate_horizon: SimDuration,
    /// Maximum number of flows tracked by the arrival recorder.
    pub rate_max_flows: usize,
    /// Optional NFT re-validation period: a flow that passed the probe
    /// test is re-probed this long after clearing, so pulsing (shrew)
    /// attackers that timed their silent phase over the probation window
    /// get another chance to be caught. `None` (the paper's behaviour)
    /// never re-probes.
    pub nft_revalidate_after: Option<SimDuration>,
    /// Seed for the drop-decision RNG.
    pub seed: u64,
}

impl Default for MaficConfig {
    fn default() -> Self {
        MaficConfig {
            drop_probability: 0.9,
            timer_rtt_multiplier: 2.0,
            default_rtt: SimDuration::from_millis(100),
            min_rtt: SimDuration::from_millis(20),
            max_rtt: SimDuration::from_millis(500),
            decrease_threshold: 0.7,
            probe_dup_acks: 3,
            probe_size: 40,
            label_mode: LabelMode::Hashed,
            sft_capacity: 4096,
            nft_capacity: 4096,
            pdt_capacity: 4096,
            rate_horizon: SimDuration::from_secs(3),
            rate_max_flows: 8192,
            nft_revalidate_after: None,
            seed: 0x4D41_4649,
        }
    }
}

impl MaficConfig {
    /// Starts a builder pre-loaded with the defaults.
    #[must_use]
    pub fn builder() -> MaficConfigBuilder {
        MaficConfigBuilder {
            config: MaficConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(ConfigError::new("drop_probability must be in [0, 1]"));
        }
        if !(self.timer_rtt_multiplier > 0.0 && self.timer_rtt_multiplier.is_finite()) {
            return Err(ConfigError::new("timer_rtt_multiplier must be positive"));
        }
        if self.min_rtt > self.max_rtt {
            return Err(ConfigError::new("min_rtt exceeds max_rtt"));
        }
        if !(0.0..=1.0).contains(&self.decrease_threshold) {
            return Err(ConfigError::new("decrease_threshold must be in [0, 1]"));
        }
        if self.probe_dup_acks == 0 {
            return Err(ConfigError::new("probe_dup_acks must be >= 1"));
        }
        if self.probe_size == 0 {
            return Err(ConfigError::new("probe_size must be positive"));
        }
        if self.sft_capacity == 0 || self.nft_capacity == 0 || self.pdt_capacity == 0 {
            return Err(ConfigError::new("table capacities must be positive"));
        }
        if self.rate_horizon.is_zero() {
            return Err(ConfigError::new("rate_horizon must be positive"));
        }
        if self.rate_max_flows == 0 {
            return Err(ConfigError::new("rate_max_flows must be positive"));
        }
        if let Some(period) = self.nft_revalidate_after {
            if period.is_zero() {
                return Err(ConfigError::new("nft_revalidate_after must be positive"));
            }
        }
        Ok(())
    }
}

/// Error returned when a [`MaficConfig`] is out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAFIC configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`MaficConfig`].
#[derive(Debug, Clone)]
pub struct MaficConfigBuilder {
    config: MaficConfig,
}

impl MaficConfigBuilder {
    /// Sets `Pd`.
    #[must_use]
    pub fn drop_probability(mut self, pd: f64) -> Self {
        self.config.drop_probability = pd;
        self
    }

    /// Sets the timer multiplier (paper: 2 × RTT).
    #[must_use]
    pub fn timer_rtt_multiplier(mut self, mult: f64) -> Self {
        self.config.timer_rtt_multiplier = mult;
        self
    }

    /// Sets the fallback RTT.
    #[must_use]
    pub fn default_rtt(mut self, rtt: SimDuration) -> Self {
        self.config.default_rtt = rtt;
        self
    }

    /// Sets the responsiveness threshold.
    #[must_use]
    pub fn decrease_threshold(mut self, threshold: f64) -> Self {
        self.config.decrease_threshold = threshold;
        self
    }

    /// Sets the probe burst size.
    #[must_use]
    pub fn probe_dup_acks(mut self, count: u8) -> Self {
        self.config.probe_dup_acks = count;
        self
    }

    /// Sets the label mode.
    #[must_use]
    pub fn label_mode(mut self, mode: LabelMode) -> Self {
        self.config.label_mode = mode;
        self
    }

    /// Sets all three table capacities at once.
    #[must_use]
    pub fn table_capacity(mut self, capacity: usize) -> Self {
        self.config.sft_capacity = capacity;
        self.config.nft_capacity = capacity;
        self.config.pdt_capacity = capacity;
        self
    }

    /// Sets the drop-decision RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables periodic NFT re-validation (anti-pulsing extension).
    #[must_use]
    pub fn nft_revalidate_after(mut self, period: SimDuration) -> Self {
        self.config.nft_revalidate_after = Some(period);
        self
    }

    /// Finishes the builder.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any field is out of range.
    pub fn build(self) -> Result<MaficConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = MaficConfig::default();
        assert_eq!(c.drop_probability, 0.9);
        assert_eq!(c.timer_rtt_multiplier, 2.0);
        assert_eq!(c.probe_dup_acks, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides() {
        let c = MaficConfig::builder()
            .drop_probability(0.7)
            .timer_rtt_multiplier(4.0)
            .decrease_threshold(0.5)
            .probe_dup_acks(5)
            .label_mode(LabelMode::Full)
            .table_capacity(128)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(c.drop_probability, 0.7);
        assert_eq!(c.timer_rtt_multiplier, 4.0);
        assert_eq!(c.decrease_threshold, 0.5);
        assert_eq!(c.probe_dup_acks, 5);
        assert_eq!(c.label_mode, LabelMode::Full);
        assert_eq!(c.sft_capacity, 128);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(MaficConfig::builder()
            .drop_probability(1.5)
            .build()
            .is_err());
        assert!(MaficConfig::builder()
            .timer_rtt_multiplier(0.0)
            .build()
            .is_err());
        assert!(MaficConfig::builder()
            .decrease_threshold(-0.1)
            .build()
            .is_err());
        assert!(MaficConfig::builder().probe_dup_acks(0).build().is_err());
        assert!(MaficConfig::builder().table_capacity(0).build().is_err());
        let c = MaficConfig {
            min_rtt: SimDuration::from_secs(2),
            ..MaficConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validator_allow_all() {
        assert!(AddressValidator::AllowAll.is_legal(Addr::new(0xDEAD_BEEF)));
    }

    #[test]
    fn validator_prefixes() {
        let v = AddressValidator::Prefixes(vec![
            (Addr::from_octets(10, 1, 0, 0), 16),
            (Addr::from_octets(10, 2, 0, 0), 16),
        ]);
        assert!(v.is_legal(Addr::from_octets(10, 1, 3, 4)));
        assert!(v.is_legal(Addr::from_octets(10, 2, 0, 1)));
        assert!(!v.is_legal(Addr::from_octets(192, 168, 0, 1)));
        assert!(!v.is_legal(Addr::from_octets(10, 3, 0, 1)));
    }

    #[test]
    fn config_error_display() {
        let err = MaficConfig::builder()
            .drop_probability(2.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("drop_probability"));
    }
}
