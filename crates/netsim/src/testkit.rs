//! Test harnesses for driving agents and filters outside a full simulator.
//!
//! Unit tests of transport agents and of the MAFIC filter need to call
//! `on_packet`/`on_timer` directly and observe the commands the component
//! issued. The command buffers are crate-private by design, so this module
//! offers small harnesses that execute a callback with a real context and
//! hand back the effects in a public form.
//!
//! Each harness owns a [`FlowInterner`], standing in for the simulator's
//! domain-wide interner: packets offered through a harness get their flow
//! id minted here, with the same stability guarantees as in a real run.

use crate::agent::{Agent, AgentCommand, AgentCtx};
use crate::event::FilterControl;
use crate::filter::{FilterAction, FilterCommand, FilterCtx, PacketEnv, PacketFilter, StatNote};
use crate::flows::{FlowId, FlowInterner};
use crate::ids::{AgentId, LinkId, NodeId};
use crate::packet::{FlowKey, Packet};
use crate::time::{SimDuration, SimTime};

/// Effects produced by one agent callback.
#[derive(Debug, Default)]
pub struct AgentEffects {
    /// Packets the agent sent.
    pub sent: Vec<Packet>,
    /// Timers the agent armed, as `(delay, token)` pairs.
    pub timers: Vec<(SimDuration, u64)>,
}

/// Drives a single [`Agent`] with a controllable clock.
#[derive(Debug)]
pub struct AgentHarness {
    /// The simulated "now" used for the next callback; tests may set it.
    pub now: SimTime,
    agent_id: AgentId,
    node: NodeId,
    next_packet_id: u64,
    interner: FlowInterner,
}

impl AgentHarness {
    /// Creates a harness with agent index 0 on node index 0.
    #[must_use]
    pub fn new() -> Self {
        AgentHarness {
            now: SimTime::ZERO,
            agent_id: AgentId::from_index(0),
            node: NodeId::from_index(0),
            next_packet_id: 0,
            interner: FlowInterner::new(),
        }
    }

    /// Advances the harness clock.
    pub fn advance(&mut self, by: SimDuration) {
        self.now += by;
    }

    /// Calls `on_start`.
    pub fn start(&mut self, agent: &mut dyn Agent) -> AgentEffects {
        self.drive(|a, ctx| a.on_start(ctx), agent, None)
    }

    /// Delivers a packet (its flow id is interned by the harness).
    pub fn deliver(&mut self, agent: &mut dyn Agent, packet: Packet) -> AgentEffects {
        let flow = self.interner.intern(packet.key);
        self.drive(move |a, ctx| a.on_packet(packet, ctx), agent, Some(flow))
    }

    /// Fires a timer with the given token.
    pub fn fire_timer(&mut self, agent: &mut dyn Agent, token: u64) -> AgentEffects {
        self.drive(move |a, ctx| a.on_timer(token, ctx), agent, None)
    }

    fn drive<F>(&mut self, f: F, agent: &mut dyn Agent, flow: Option<FlowId>) -> AgentEffects
    where
        F: FnOnce(&mut dyn Agent, &mut AgentCtx<'_>),
    {
        let mut commands = Vec::new();
        {
            let mut ctx = AgentCtx::new(
                self.now,
                self.agent_id,
                self.node,
                flow,
                &mut self.next_packet_id,
                &mut commands,
            );
            f(agent, &mut ctx);
        }
        let mut effects = AgentEffects::default();
        for cmd in commands {
            match cmd {
                AgentCommand::SendPacket(p) => effects.sent.push(p),
                AgentCommand::ScheduleTimer { delay, token } => {
                    effects.timers.push((delay, token));
                }
            }
        }
        effects
    }
}

impl Default for AgentHarness {
    fn default() -> Self {
        AgentHarness::new()
    }
}

/// Effects produced by one filter callback.
#[derive(Debug, Default)]
pub struct FilterEffects {
    /// The verdict, when the callback was `on_packet`.
    pub action: Option<FilterAction>,
    /// Packets the filter emitted (probes).
    pub emitted: Vec<Packet>,
    /// Legacy token timers armed, as `(delay, token)` pairs.
    pub timers: Vec<(SimDuration, u64)>,
    /// Flow timers armed on the wheel, as `(delay, flow, kind)` triples.
    pub flow_timers: Vec<(SimDuration, FlowId, u16)>,
    /// Statistics notes recorded, with the flow they referred to.
    pub notes: Vec<(StatNote, Option<FlowKey>)>,
}

/// Drives a single [`PacketFilter`] with a controllable clock.
#[derive(Debug)]
pub struct FilterHarness {
    /// The simulated "now" used for the next callback; tests may set it.
    pub now: SimTime,
    node: NodeId,
    next_packet_id: u64,
    interner: FlowInterner,
}

impl FilterHarness {
    /// Creates a harness on node index 0.
    #[must_use]
    pub fn new() -> Self {
        FilterHarness {
            now: SimTime::ZERO,
            node: NodeId::from_index(0),
            next_packet_id: 0,
            interner: FlowInterner::new(),
        }
    }

    /// Advances the harness clock.
    pub fn advance(&mut self, by: SimDuration) {
        self.now += by;
    }

    /// Interns a key with the harness's interner (stable across calls),
    /// for tests that need the id a packet will carry.
    pub fn intern(&mut self, key: FlowKey) -> FlowId {
        self.interner.intern(key)
    }

    /// Offers a packet with the given arrival environment; the flow id is
    /// interned by the harness.
    pub fn offer(
        &mut self,
        filter: &mut dyn PacketFilter,
        packet: &Packet,
        via_link: Option<LinkId>,
        dst_is_local: bool,
    ) -> FilterEffects {
        let env = PacketEnv {
            via_link,
            dst_is_local,
            flow: self.interner.intern(packet.key),
        };
        let mut commands = Vec::new();
        let action;
        {
            let mut ctx = FilterCtx::new(
                self.now,
                self.node,
                0,
                &mut self.next_packet_id,
                &mut commands,
            );
            action = filter.on_packet(packet, &env, &mut ctx);
        }
        let mut fx = Self::collect(commands);
        fx.action = Some(action);
        fx
    }

    /// Offers a packet that arrived on no particular link and is not
    /// locally bound (the common transit case).
    pub fn offer_transit(
        &mut self,
        filter: &mut dyn PacketFilter,
        packet: &Packet,
    ) -> FilterEffects {
        self.offer(filter, packet, None, false)
    }

    /// Fires a legacy token timer.
    pub fn fire_timer(&mut self, filter: &mut dyn PacketFilter, token: u64) -> FilterEffects {
        let mut commands = Vec::new();
        {
            let mut ctx = FilterCtx::new(
                self.now,
                self.node,
                0,
                &mut self.next_packet_id,
                &mut commands,
            );
            filter.on_timer(token, &mut ctx);
        }
        Self::collect(commands)
    }

    /// Fires a wheel flow timer.
    pub fn fire_flow_timer(
        &mut self,
        filter: &mut dyn PacketFilter,
        flow: FlowId,
        kind: u16,
    ) -> FilterEffects {
        let mut commands = Vec::new();
        {
            let mut ctx = FilterCtx::new(
                self.now,
                self.node,
                0,
                &mut self.next_packet_id,
                &mut commands,
            );
            filter.on_flow_timer(flow, kind, &mut ctx);
        }
        Self::collect(commands)
    }

    /// Delivers a control message.
    pub fn control(&mut self, filter: &mut dyn PacketFilter, msg: &FilterControl) -> FilterEffects {
        let mut commands = Vec::new();
        {
            let mut ctx = FilterCtx::new(
                self.now,
                self.node,
                0,
                &mut self.next_packet_id,
                &mut commands,
            );
            filter.on_control(msg, &mut ctx);
        }
        Self::collect(commands)
    }

    fn collect(commands: Vec<FilterCommand>) -> FilterEffects {
        let mut fx = FilterEffects::default();
        for cmd in commands {
            match cmd {
                FilterCommand::EmitPacket(p) => fx.emitted.push(p),
                FilterCommand::ScheduleTimer { delay, token, .. } => {
                    fx.timers.push((delay, token));
                }
                FilterCommand::ScheduleFlowTimer {
                    delay, flow, kind, ..
                } => {
                    fx.flow_timers.push((delay, flow, kind));
                }
                FilterCommand::Note { note, flow } => fx.notes.push((note, flow)),
            }
        }
        fx
    }
}

impl Default for FilterHarness {
    fn default() -> Self {
        FilterHarness::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::CountingSink;
    use crate::filter::PassthroughFilter;
    use crate::ids::Addr;
    use crate::packet::{PacketKind, Provenance};

    fn pkt() -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            kind: PacketKind::Udp,
            size_bytes: 100,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn agent_harness_round_trip() {
        let mut h = AgentHarness::new();
        let mut sink = CountingSink::new();
        let fx = h.start(&mut sink);
        assert!(fx.sent.is_empty() && fx.timers.is_empty());
        h.advance(SimDuration::from_millis(5));
        let _ = h.deliver(&mut sink, pkt());
        assert_eq!(sink.delivered(), 1);
    }

    #[test]
    fn filter_harness_captures_action() {
        let mut h = FilterHarness::new();
        let mut f = PassthroughFilter::new();
        let fx = h.offer_transit(&mut f, &pkt());
        assert_eq!(fx.action, Some(FilterAction::Forward));
        assert_eq!(f.seen(), 1);
    }

    #[test]
    fn harness_interner_ids_are_stable() {
        let mut h = FilterHarness::new();
        let id = h.intern(pkt().key);
        let again = h.intern(pkt().key);
        assert_eq!(id, again);
    }
}
