//! Identifier newtypes used across the simulator.
//!
//! Arena indices are wrapped in newtypes ([`NodeId`], [`LinkId`],
//! [`AgentId`]) so a link index can never be used where a node index is
//! expected. [`Addr`] is an IPv4-like 32-bit address assigned by the
//! topology layer; the simulator itself treats it as opaque.

use std::fmt;

/// Index of a node (router or host) in the simulator arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Index of a simplex link in the simulator arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

/// Index of a traffic agent in the simulator arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub(crate) u32);

/// An IPv4-like 32-bit network address.
///
/// # Example
///
/// ```
/// use mafic_netsim::Addr;
///
/// let a = Addr::from_octets(10, 0, 1, 7);
/// assert_eq!(a.to_string(), "10.0.1.7");
/// assert_eq!(Addr::new(a.as_u32()), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl NodeId {
    /// Raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a node id from a raw index.
    ///
    /// Only topology builders should need this; passing an id that was not
    /// handed out by the simulator panics at use time.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits u32"))
    }
}

impl LinkId {
    /// Raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a link id from a raw index (topology builders only).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        LinkId(u32::try_from(index).expect("link index fits u32"))
    }
}

impl AgentId {
    /// Raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an agent id from a raw index (test harnesses only).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        AgentId(u32::try_from(index).expect("agent index fits u32"))
    }
}

impl Addr {
    /// The unspecified address (`0.0.0.0`).
    pub const UNSPECIFIED: Addr = Addr(0);

    /// Constructs an address from its raw 32-bit value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Addr(raw)
    }

    /// Constructs an address from dotted-quad octets.
    #[must_use]
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The raw 32-bit value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// True if this address lies within `prefix/len`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    #[must_use]
    pub fn in_prefix(self, prefix: Addr, len: u8) -> bool {
        assert!(len <= 32, "prefix length {len} out of range");
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(len));
        (self.0 & mask) == (prefix.0 & mask)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            self.0 >> 24,
            (self.0 >> 16) & 0xFF,
            (self.0 >> 8) & 0xFF,
            self.0 & 0xFF
        )
    }
}

impl From<u32> for Addr {
    fn from(raw: u32) -> Self {
        Addr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_octets_round_trip() {
        let a = Addr::from_octets(192, 168, 1, 42);
        assert_eq!(a.to_string(), "192.168.1.42");
        assert_eq!(a.as_u32(), 0xC0A8_012A);
    }

    #[test]
    fn prefix_membership() {
        let net = Addr::from_octets(10, 1, 0, 0);
        assert!(Addr::from_octets(10, 1, 0, 5).in_prefix(net, 16));
        assert!(Addr::from_octets(10, 1, 255, 5).in_prefix(net, 16));
        assert!(!Addr::from_octets(10, 2, 0, 5).in_prefix(net, 16));
        assert!(
            Addr::from_octets(99, 0, 0, 1).in_prefix(net, 0),
            "len 0 matches all"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_length_validated() {
        let _ = Addr::UNSPECIFIED.in_prefix(Addr::UNSPECIFIED, 40);
    }

    #[test]
    fn id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(4).to_string(), "l4");
        assert_eq!(AgentId(5).to_string(), "a5");
    }

    #[test]
    fn node_id_from_index_round_trips() {
        assert_eq!(NodeId::from_index(7).index(), 7);
    }
}
