//! Pins the ARCHITECTURE.md "Id lifetime vs table flush" rule end to
//! end: a `PushbackStop` flushes the MAFIC tables mid-run, a second
//! attack wave re-triggers the defense, and across the two activations
//! the flow keeps its interned `FlowId` while stale timer-wheel entries
//! armed before the flush fire harmlessly.

use mafic_suite::core::{AddressValidator, MaficConfig, MaficFilter};
use mafic_suite::netsim::{
    Addr, CountingSink, FilterControl, FlowKey, LinkSpec, SimDuration, SimTime, Simulator,
};
use mafic_suite::transport::{CbrConfig, CbrProtocol, UnresponsiveSender};

const HOST_ADDR: Addr = Addr::from_octets(10, 1, 0, 1);
const VICTIM_ADDR: Addr = Addr::from_octets(10, 200, 0, 1);

/// host — router (MAFIC) — victim, with two same-key attack waves and a
/// stop/start cycle between them.
struct Fixture {
    sim: Simulator,
    router: mafic_suite::netsim::NodeId,
    filter_index: usize,
    key: FlowKey,
}

fn build() -> Fixture {
    let mut sim = Simulator::new(7);
    let host = sim.add_node("host");
    let router = sim.add_node("router");
    let victim = sim.add_node("victim");
    let spec = LinkSpec::new(10e6, SimDuration::from_millis(5), 64);
    let (h2r, _) = sim.add_duplex_link(host, router, spec);
    let (r2v, _) = sim.add_duplex_link(router, victim, spec);
    sim.add_route(host, VICTIM_ADDR, h2r);
    sim.add_route(router, VICTIM_ADDR, r2v);
    // Reverse route so MAFIC's probes toward the claimed source leave
    // the router.
    let back = {
        let (b, _) = sim.add_duplex_link(router, host, spec);
        b
    };
    sim.add_route(router, HOST_ADDR, back);

    let sink = sim.add_agent(victim, Box::new(CountingSink::new()), SimTime::ZERO);
    sim.bind_local_addr(victim, VICTIM_ADDR, sink);

    let config = MaficConfig {
        drop_probability: 1.0, // deterministic sampling into the SFT
        default_rtt: SimDuration::from_millis(50),
        seed: 99,
        ..MaficConfig::default()
    };
    let filter_index = sim.add_filter(
        router,
        Box::new(MaficFilter::new(config, AddressValidator::AllowAll)),
    );

    let key = FlowKey::new(HOST_ADDR, VICTIM_ADDR, 4000, 80);
    let cbr = CbrConfig {
        rate_pps: 200.0,
        packet_size: 500,
        jitter: 0.0,
        protocol: CbrProtocol::Udp,
    };
    // Wave 1: 0.1 s – 1.0 s.
    let mut wave1 = UnresponsiveSender::new(key, cbr, true, 1);
    wave1.set_stop_after(SimTime::from_secs_f64(1.0));
    let a1 = sim.add_agent(host, Box::new(wave1), SimTime::from_secs_f64(0.1));
    sim.bind_local_addr(host, HOST_ADDR, a1);
    // Wave 2: same 4-tuple, 2.0 s – 3.0 s.
    let mut wave2 = UnresponsiveSender::new(key, cbr, true, 2);
    wave2.set_stop_after(SimTime::from_secs_f64(3.0));
    let _a2 = sim.add_agent(host, Box::new(wave2), SimTime::from_secs_f64(2.0));

    // Defense lifecycle: active for wave 1, flushed in the lull,
    // re-activated for wave 2.
    sim.send_control(
        router,
        FilterControl::PushbackStart {
            victim: VICTIM_ADDR,
        },
        SimTime::from_secs_f64(0.05),
    );
    sim.send_control(
        router,
        FilterControl::PushbackStop,
        SimTime::from_secs_f64(1.5),
    );
    sim.send_control(
        router,
        FilterControl::PushbackStart {
            victim: VICTIM_ADDR,
        },
        SimTime::from_secs_f64(1.9),
    );

    Fixture {
        sim,
        router,
        filter_index,
        key,
    }
}

#[test]
fn flow_id_survives_the_flush_and_the_defense_retriggers() {
    let mut f = build();

    // Wave 1 raged and was condemned.
    f.sim.run_until(SimTime::from_secs_f64(1.4));
    let id_wave1 = f
        .sim
        .flow_interner()
        .lookup(f.key)
        .expect("flow interned during wave 1");
    {
        let filter = f
            .sim
            .filter::<MaficFilter>(f.router, f.filter_index)
            .expect("filter installed");
        assert!(filter.is_active());
        assert_eq!(filter.tables().pdt_len(), 1, "unresponsive flow condemned");
        assert_eq!(filter.counters().flows_malicious, 1);
    }

    // The flush empties the tables but not the interner.
    f.sim.run_until(SimTime::from_secs_f64(1.8));
    {
        let filter = f
            .sim
            .filter::<MaficFilter>(f.router, f.filter_index)
            .expect("filter installed");
        assert!(!filter.is_active(), "PushbackStop deactivates");
        assert_eq!(filter.tables().sft_len(), 0);
        assert_eq!(filter.tables().nft_len(), 0);
        assert_eq!(filter.tables().pdt_len(), 0, "flush empties the PDT");
    }
    assert_eq!(
        f.sim.flow_interner().lookup(f.key),
        Some(id_wave1),
        "the id ↔ key binding survives the flush"
    );

    // Wave 2 re-triggers the whole machinery under the SAME flow id.
    f.sim.run_until(SimTime::from_secs_f64(3.5));
    let filter = f
        .sim
        .filter::<MaficFilter>(f.router, f.filter_index)
        .expect("filter installed");
    assert!(filter.is_active());
    assert_eq!(
        filter.tables().pdt_len(),
        1,
        "second wave condemned afresh after the flush"
    );
    assert_eq!(
        filter.counters().flows_malicious,
        2,
        "one verdict per activation — stale wheel timers from wave 1 \
         (armed before the flush, firing after) must not add verdicts"
    );
    assert_eq!(filter.counters().flows_nice, 0);
    assert_eq!(
        filter.counters().probes_sent,
        2,
        "each activation probes the flow exactly once"
    );
    assert_eq!(
        f.sim.flow_interner().lookup(f.key),
        Some(id_wave1),
        "the flow keeps its FlowId across activations"
    );
}

#[test]
fn lull_between_waves_reaches_the_victim_unfiltered() {
    let mut f = build();
    f.sim.run_until(SimTime::from_secs_f64(3.5));
    let rec = f.sim.stats().flow(&f.key).expect("flow accounted");
    // Wave 1 at Pd=1: the probing drop plus PDT drops stop everything;
    // wave 2 likewise. The only deliveries happen in the wave-2 window
    // before the new activation's first verdict — and there are none,
    // because the filter is re-activated (1.9 s) before wave 2 starts.
    assert_eq!(rec.delivered, 0, "both waves fully cut: {rec:?}");
    assert!(rec.dropped_permanent > 0, "PDT did the bulk of the cutting");
    assert!(rec.dropped_probing >= 2, "one probing drop per activation");
}
