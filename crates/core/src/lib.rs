//! # mafic
//!
//! MAFIC — **MA**licious **F**low **I**dentification and **C**utoff — the
//! adaptive packet-dropping defense of Chen, Kwok & Hwang (ICDCSW 2005),
//! reimplemented as a router-resident packet filter for the
//! `mafic-netsim` simulator.
//!
//! When a victim's last-hop router detects a flooding attack (see the
//! `mafic-loglog` set-union counting pipeline), the Attack Transit
//! Routers receive a pushback request and activate the [`MaficFilter`]:
//!
//! * packets of new victim-bound flows are dropped with probability `Pd`,
//! * each sampled flow enters the **Suspicious Flow Table** and is probed
//!   with a burst of duplicate ACKs toward its claimed source,
//! * flows whose arrival rate falls within `2 × RTT` are "nice" (moved to
//!   the **NFT**, never dropped again); unresponsive flows are condemned
//!   to the **PDT** and cut off completely,
//! * flows with illegal (unallocated) source addresses are condemned
//!   immediately.
//!
//! The crate also provides the [`ProportionalFilter`] baseline (uniform
//! dropping, the approach MAFIC improves upon), the [`RateLimitFilter`]
//! aggregate token bucket (the cheapest policy a transit AS can deploy),
//! the [`DefensePolicy`] surface naming what one domain boundary runs in
//! heterogeneous deployments, and the [`LogLogTap`] sketch connector
//! used by the pushback monitor.
//!
//! # Example
//!
//! ```
//! use mafic::{AddressValidator, MaficConfig, MaficFilter};
//! use mafic_netsim::Addr;
//!
//! let mut filter = MaficFilter::new(MaficConfig::default(), AddressValidator::AllowAll);
//! assert!(!filter.is_active());
//! filter.activate(Addr::from_octets(10, 200, 0, 1));
//! assert!(filter.is_active());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod config;
pub mod dropper;
pub mod label;
pub mod policy;
pub mod rate;
pub mod ratelimit;
pub mod tables;
pub mod tap;

pub use baseline::{DropPolicy, ProportionalFilter};
pub use config::{AddressValidator, ConfigError, MaficConfig, MaficConfigBuilder};
pub use dropper::{MaficCounters, MaficFilter, TIMER_PROBATION, TIMER_REVALIDATE};
pub use label::{FlowLabel, LabelMode};
pub use policy::DefensePolicy;
pub use rate::ArrivalTracker;
pub use ratelimit::RateLimitFilter;
pub use tables::{FlowState, FlowTables, PdtReason, SftEntry};
pub use tap::LogLogTap;
