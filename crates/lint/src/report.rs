//! Findings, suppression pragmas, and the rendered report.

use std::fmt;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Nondeterminism-source ban (`Instant`, `std::thread`, `std::env`,
    /// ambient RNGs, `RandomState`, pointer formatting, hash-container
    /// dodges).
    Nondet,
    /// `println!`/`print!` in library crates (figure stdout is
    /// byte-compared by the CI diff gates).
    StdoutPurity,
    /// Float comparisons without a total order (`partial_cmp` on event
    /// or sort keys).
    FloatOrd,
    /// `unsafe` outside the sanctioned inventory, or without a
    /// `// SAFETY:` comment.
    UnsafeCode,
    /// Crate-graph back-edge or unknown dependency in a manifest.
    Layering,
    /// Missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` in
    /// a crate root.
    LibAttrs,
    /// Malformed or unused suppression pragma.
    Pragma,
}

impl RuleId {
    /// Stable rule id string (used in pragmas and reports).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::Nondet => "nondet",
            RuleId::StdoutPurity => "stdout-purity",
            RuleId::FloatOrd => "float-ord",
            RuleId::UnsafeCode => "unsafe-code",
            RuleId::Layering => "layering",
            RuleId::LibAttrs => "lib-attrs",
            RuleId::Pragma => "pragma",
        }
    }

    /// Parse a rule id string as written in an allow pragma.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "nondet" => RuleId::Nondet,
            "stdout-purity" => RuleId::StdoutPurity,
            "float-ord" => RuleId::FloatOrd,
            "unsafe-code" => RuleId::UnsafeCode,
            "layering" => RuleId::Layering,
            "lib-attrs" => RuleId::LibAttrs,
            "pragma" => RuleId::Pragma,
            _ => return None,
        })
    }

    /// Every rule, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::Nondet,
        RuleId::StdoutPurity,
        RuleId::FloatOrd,
        RuleId::UnsafeCode,
        RuleId::Layering,
        RuleId::LibAttrs,
        RuleId::Pragma,
    ];
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The rule that fired.
    pub rule: RuleId,
    /// Human-readable rationale for this specific occurrence.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One suppression pragma found in the tree
/// (`// mafic-lint: allow(<rule>) -- <reason>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaEntry {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: RuleId,
    /// The justification after `--`.
    pub reason: String,
    /// Whether the pragma actually suppressed a finding this run.
    pub used: bool,
}

/// Full result of a linter run: surviving findings plus the inventory
/// of every suppression in the tree.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Violations that were not suppressed.
    pub findings: Vec<Finding>,
    /// Every pragma encountered, used or not.
    pub pragmas: Vec<PragmaEntry>,
    /// Number of files scanned (sources + manifests).
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the tree is clean (no surviving findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the report in the stable, line-oriented format the CI job
    /// greps and humans read.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "mafic-lint: scanned {} file(s), {} finding(s), {} suppression(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.pragmas.len()
        ));
        for f in &self.findings {
            out.push_str(&format!("  FINDING {f}\n"));
        }
        if !self.pragmas.is_empty() {
            out.push_str("suppression inventory:\n");
            for p in &self.pragmas {
                out.push_str(&format!(
                    "  PRAGMA {}:{} allow({}) -- {}{}\n",
                    p.path,
                    p.line,
                    p.rule,
                    p.reason,
                    if p.used { "" } else { " [UNUSED]" }
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_id_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn render_marks_unused_pragmas() {
        let report = LintReport {
            findings: vec![],
            pragmas: vec![PragmaEntry {
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: RuleId::Nondet,
                reason: "test".into(),
                used: false,
            }],
            files_scanned: 1,
        };
        assert!(report.render().contains("[UNUSED]"));
    }
}
