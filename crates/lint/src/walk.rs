//! Deterministic workspace traversal.
//!
//! The linter's own report must replay byte-identically, so file
//! discovery is explicit about scope and order: the scanned roots are
//! fixed, directory entries are collected and sorted, and paths are
//! normalized to forward slashes before they reach any rule.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::LintConfig;
use crate::report::LintReport;
use crate::rules::{lint_manifest, lint_source};

/// Recursively collect `*.rs` files under `dir`, sorted by path.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The source roots scanned for Rust files, relative to the workspace
/// root. `vendor/` (third-party stand-ins) and `target/` are outside
/// all of them by construction.
const SOURCE_ROOTS: &[&str] = &["src", "tests", "examples"];

/// Per-crate subdirectories scanned inside each `crates/*` entry.
const CRATE_ROOTS: &[&str] = &["src", "tests", "benches"];

/// Lint the whole workspace rooted at `root`: every in-scope `.rs`
/// file plus the root and per-crate manifests, in sorted order.
///
/// # Errors
/// Propagates I/O errors from directory traversal or file reads.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    // Rust sources.
    let mut files = Vec::new();
    for sub in SOURCE_ROOTS {
        collect_rs(&root.join(sub), &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        crate_dirs.sort();
        for crate_dir in crate_dirs.into_iter().filter(|p| p.is_dir()) {
            for sub in CRATE_ROOTS {
                collect_rs(&crate_dir.join(sub), &mut files)?;
            }
        }
    }
    files.sort();
    for path in &files {
        let source = fs::read_to_string(path)?;
        let (findings, pragmas) = lint_source(&rel(root, path), &source, cfg);
        report.findings.extend(findings);
        report.pragmas.extend(pragmas);
        report.files_scanned += 1;
    }

    // Manifests: root first, then crates/*/Cargo.toml sorted.
    let mut manifests = vec![root.join("Cargo.toml")];
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let manifest = crate_dir.join("Cargo.toml");
            if manifest.is_file() {
                manifests.push(manifest);
            }
        }
    }
    for path in &manifests {
        let source = fs::read_to_string(path)?;
        report
            .findings
            .extend(lint_manifest(&rel(root, path), &source, cfg));
        report.files_scanned += 1;
    }

    Ok(report)
}
