//! The three MAFIC flow tables, stored as one dense slab.
//!
//! * **SFT** — Suspicious Flow Table: flows under probation. Each entry
//!   remembers when the probe started, the pre-probe baseline rate, the
//!   flow's RTT estimate, and the 2×RTT decision deadline.
//! * **NFT** — Nice Flow Table: flows that reduced their rate after the
//!   probe; never dropped again.
//! * **PDT** — Permanently Drop Table: flows whose rate did not respond,
//!   plus flows with illegal source addresses; every packet dropped.
//!
//! Classification state lives in a single [`FlowSlab`] indexed by the
//! interned [`FlowId`]: the packet hot path resolves a flow's standing
//! with **one array probe** ([`FlowTables::state`]) instead of the three
//! hash lookups the label-keyed tables used to pay. All three logical
//! tables remain capacity-bounded with FIFO eviction, matching a router's
//! fixed memory budget.

use mafic_netsim::{FlowId, FlowKey, FlowSlab, SimTime};
use std::collections::VecDeque;

/// Why a flow ended up in the PDT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PdtReason {
    /// The claimed source address is outside every allocated prefix.
    IllegalSource,
    /// The flow failed the probe test (rate did not decrease).
    Unresponsive,
}

/// One probation entry in the SFT.
#[derive(Debug, Clone, PartialEq)]
pub struct SftEntry {
    /// The flow's 4-tuple at insertion time (kept for probe addressing
    /// and statistics notes on the timer path, where no packet is at
    /// hand).
    pub key: FlowKey,
    /// When the probe was issued.
    pub probe_started: SimTime,
    /// Arrival rate (packets/s) measured just before the probe.
    pub baseline_rate: f64,
    /// The flow RTT estimate used for the timer.
    pub rtt_estimate: mafic_netsim::SimDuration,
    /// The decision deadline (`probe_started + mult × RTT`).
    pub deadline: SimTime,
    /// Packets seen since the probe started.
    pub arrivals_since_probe: u64,
}

/// A flow's classification standing — the single-probe answer the packet
/// path branches on.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowState {
    /// On probation (SFT).
    Suspicious(SftEntry),
    /// Passed the probe test (NFT) at the recorded instant; never
    /// dropped again (until optional re-validation).
    Nice {
        /// When the verdict was earned.
        since: SimTime,
    },
    /// Condemned (PDT); every packet dropped.
    Condemned(PdtReason),
}

/// Which logical table a [`FlowState`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Table {
    Sft,
    Nft,
    Pdt,
}

fn table_of(state: &FlowState) -> Table {
    match state {
        FlowState::Suspicious(_) => Table::Sft,
        FlowState::Nice { .. } => Table::Nft,
        FlowState::Condemned(_) => Table::Pdt,
    }
}

/// FIFO occupancy bound for one logical table.
///
/// Because a flow can leave a table and re-enter it later (probation →
/// nice → re-validation → probation again), the order deque may hold
/// stale entries for a flow's *earlier* residence. Each seat therefore
/// carries a stamp, and only the entry matching the flow's live stamp
/// counts — a stale front entry is skipped, never treated as the oldest
/// resident.
#[derive(Debug, Default)]
struct Fifo {
    order: VecDeque<(FlowId, u64)>,
    /// flow → stamp of its live seat in `order`; absent = not resident.
    seats: FlowSlab<u64>,
    capacity: usize,
    next_stamp: u64,
    evictions: u64,
}

impl Fifo {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "table capacity must be positive");
        Fifo {
            order: VecDeque::new(),
            seats: FlowSlab::new(),
            capacity,
            next_stamp: 0,
            evictions: 0,
        }
    }

    fn len(&self) -> usize {
        self.seats.len()
    }

    /// Seats `flow` at the back of the FIFO.
    fn occupy(&mut self, flow: FlowId) {
        // Stale entries are normally reclaimed by `pop_oldest`, which
        // only runs at capacity; below capacity a long transition churn
        // (probation → nice → re-validation → probation …) would grow
        // the deque without bound. Compact once it doubles: retaining
        // the ≤ capacity live seats keeps the amortized cost O(1).
        if self.order.len() >= self.capacity.saturating_mul(2).max(16) {
            let seats = &self.seats;
            self.order
                .retain(|&(flow, stamp)| seats.get(flow) == Some(&stamp));
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.order.push_back((flow, stamp));
        self.seats.insert(flow, stamp);
    }

    /// Releases `flow`'s seat (its order entry goes stale in place).
    fn release(&mut self, flow: FlowId) {
        self.seats.remove(flow);
    }

    /// Removes and returns the oldest current resident, skipping stale
    /// order entries.
    fn pop_oldest(&mut self) -> Option<FlowId> {
        while let Some((flow, stamp)) = self.order.pop_front() {
            if self.seats.get(flow) == Some(&stamp) {
                self.seats.remove(flow);
                self.evictions += 1;
                return Some(flow);
            }
        }
        None
    }

    fn clear(&mut self) {
        self.order.clear();
        self.seats.clear();
    }
}

/// The complete MAFIC table set: one slab of [`FlowState`] tags plus
/// per-table FIFO occupancy bounds.
#[derive(Debug)]
pub struct FlowTables {
    states: FlowSlab<FlowState>,
    sft: Fifo,
    nft: Fifo,
    pdt: Fifo,
    /// Lifetime peak occupancies — cost accounting that survives the
    /// `PushbackStop` flush (a withdrawn defense still paid for its
    /// tables while it ran).
    peak_sft: usize,
    peak_nft: usize,
    peak_pdt: usize,
}

impl FlowTables {
    /// Creates tables with the given per-table capacities.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    #[must_use]
    pub fn new(sft_capacity: usize, nft_capacity: usize, pdt_capacity: usize) -> Self {
        FlowTables {
            states: FlowSlab::new(),
            sft: Fifo::new(sft_capacity),
            nft: Fifo::new(nft_capacity),
            pdt: Fifo::new(pdt_capacity),
            peak_sft: 0,
            peak_nft: 0,
            peak_pdt: 0,
        }
    }

    /// The flow's classification standing, in one slab probe. This is the
    /// per-packet fast path.
    #[must_use]
    pub fn state(&self, flow: FlowId) -> Option<&FlowState> {
        self.states.get(flow)
    }

    fn fifo_mut(&mut self, table: Table) -> &mut Fifo {
        match table {
            Table::Sft => &mut self.sft,
            Table::Nft => &mut self.nft,
            Table::Pdt => &mut self.pdt,
        }
    }

    /// Transitions `flow` into `state`'s logical table, evicting the
    /// FIFO-oldest resident if that table is full. Returns the previous
    /// whole-slab state.
    fn set_state(&mut self, flow: FlowId, state: FlowState) -> Option<FlowState> {
        let target = table_of(&state);
        // Same-table overwrite keeps the original FIFO seat.
        if self.states.get(flow).map(table_of) == Some(target) {
            return self.states.insert(flow, state);
        }
        let victim = {
            let fifo = self.fifo_mut(target);
            if fifo.len() >= fifo.capacity {
                fifo.pop_oldest()
            } else {
                None
            }
        };
        if let Some(victim) = victim {
            self.states.remove(victim);
        }
        self.fifo_mut(target).occupy(flow);
        let old = self.states.insert(flow, state);
        if let Some(ref prev) = old {
            // The flow migrated from another table; release that seat.
            let from = table_of(prev);
            self.fifo_mut(from).release(flow);
        }
        self.peak_sft = self.peak_sft.max(self.sft.len());
        self.peak_nft = self.peak_nft.max(self.nft.len());
        self.peak_pdt = self.peak_pdt.max(self.pdt.len());
        old
    }

    fn take_state(&mut self, flow: FlowId, want: Table) -> Option<FlowState> {
        if self.states.get(flow).map(table_of) != Some(want) {
            return None;
        }
        let old = self.states.remove(flow);
        self.fifo_mut(want).release(flow);
        old
    }

    // --- SFT ---------------------------------------------------------

    /// Inserts a probation entry.
    pub fn sft_insert(&mut self, flow: FlowId, entry: SftEntry) {
        self.set_state(flow, FlowState::Suspicious(entry));
    }

    /// The probation entry for `flow`, if any.
    #[must_use]
    pub fn sft_get(&self, flow: FlowId) -> Option<&SftEntry> {
        match self.states.get(flow) {
            Some(FlowState::Suspicious(entry)) => Some(entry),
            _ => None,
        }
    }

    /// Mutable probation entry.
    pub fn sft_get_mut(&mut self, flow: FlowId) -> Option<&mut SftEntry> {
        match self.states.get_mut(flow) {
            Some(FlowState::Suspicious(entry)) => Some(entry),
            _ => None,
        }
    }

    /// Removes and returns the probation entry.
    pub fn sft_remove(&mut self, flow: FlowId) -> Option<SftEntry> {
        match self.take_state(flow, Table::Sft) {
            Some(FlowState::Suspicious(entry)) => Some(entry),
            _ => None,
        }
    }

    /// Number of flows on probation.
    #[must_use]
    pub fn sft_len(&self) -> usize {
        self.sft.len()
    }

    // --- NFT ---------------------------------------------------------

    /// Marks a flow as nice, recording when the verdict was earned (the
    /// re-validation timer checks this to recognise stale fires from a
    /// previous activation).
    pub fn nft_insert(&mut self, flow: FlowId, since: SimTime) {
        self.set_state(flow, FlowState::Nice { since });
    }

    /// True if the flow passed the probe test.
    #[must_use]
    pub fn nft_contains(&self, flow: FlowId) -> bool {
        matches!(self.states.get(flow), Some(FlowState::Nice { .. }))
    }

    /// When the flow's current nice verdict was earned, if it has one.
    #[must_use]
    pub fn nft_since(&self, flow: FlowId) -> Option<SimTime> {
        match self.states.get(flow) {
            Some(FlowState::Nice { since }) => Some(*since),
            _ => None,
        }
    }

    /// Number of nice flows.
    #[must_use]
    pub fn nft_len(&self) -> usize {
        self.nft.len()
    }

    /// Removes a flow from the NFT (re-validation); returns whether it
    /// was present.
    pub fn nft_remove(&mut self, flow: FlowId) -> bool {
        self.take_state(flow, Table::Nft).is_some()
    }

    // --- PDT ---------------------------------------------------------

    /// Condemns a flow.
    pub fn pdt_insert(&mut self, flow: FlowId, reason: PdtReason) {
        self.set_state(flow, FlowState::Condemned(reason));
    }

    /// The condemnation reason, if the flow is in the PDT.
    #[must_use]
    pub fn pdt_get(&self, flow: FlowId) -> Option<PdtReason> {
        match self.states.get(flow) {
            Some(FlowState::Condemned(reason)) => Some(*reason),
            _ => None,
        }
    }

    /// True if every packet of this flow must be dropped.
    #[must_use]
    pub fn pdt_contains(&self, flow: FlowId) -> bool {
        matches!(self.states.get(flow), Some(FlowState::Condemned(_)))
    }

    /// Number of condemned flows.
    #[must_use]
    pub fn pdt_len(&self) -> usize {
        self.pdt.len()
    }

    // --- Global ------------------------------------------------------

    /// Flushes all three tables (pushback end — "End dropping & Flush all
    /// tables" in Figure 2). Flow ids remain valid: the interner binding
    /// outlives any flush, only classification state is dropped.
    pub fn flush(&mut self) {
        self.states.clear();
        self.sft.clear();
        self.nft.clear();
        self.pdt.clear();
    }

    /// Total evictions across the tables (capacity-pressure diagnostics).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.sft.evictions + self.nft.evictions + self.pdt.evictions
    }

    /// Approximate resident memory of the three tables in bytes, using
    /// the label storage cost (the paper's motivation for hashing).
    #[must_use]
    pub fn approx_bytes(&self, label_bytes: usize) -> usize {
        Self::bytes_for(self.sft.len(), self.nft.len(), self.pdt.len(), label_bytes)
    }

    /// Approximate **peak** memory the tables ever held, in bytes. Unlike
    /// [`FlowTables::approx_bytes`] this survives a [`FlowTables::flush`],
    /// so a defense that stood down before the end of a run still reports
    /// what its tables cost while it was active.
    #[must_use]
    pub fn approx_peak_bytes(&self, label_bytes: usize) -> usize {
        Self::bytes_for(self.peak_sft, self.peak_nft, self.peak_pdt, label_bytes)
    }

    fn bytes_for(sft: usize, nft: usize, pdt: usize, label_bytes: usize) -> usize {
        let sft_entry = label_bytes + std::mem::size_of::<SftEntry>();
        let nft_entry = label_bytes;
        let pdt_entry = label_bytes + 1;
        sft * sft_entry + nft * nft_entry + pdt * pdt_entry
    }
}

fn snap_sft_entry(entry: &SftEntry, w: &mut mafic_obs::SnapWriter) {
    mafic_netsim::snap_flow_key(&entry.key, w);
    w.write_u64(entry.probe_started.as_nanos());
    w.write_f64(entry.baseline_rate);
    w.write_u64(entry.rtt_estimate.as_nanos());
    w.write_u64(entry.deadline.as_nanos());
    w.write_u64(entry.arrivals_since_probe);
}

fn read_sft_entry(r: &mut mafic_obs::SnapReader<'_>) -> Result<SftEntry, mafic_obs::SnapError> {
    Ok(SftEntry {
        key: mafic_netsim::read_flow_key(r)?,
        probe_started: SimTime::from_nanos(r.read_u64()?),
        baseline_rate: r.read_f64()?,
        rtt_estimate: mafic_netsim::SimDuration::from_nanos(r.read_u64()?),
        deadline: SimTime::from_nanos(r.read_u64()?),
        arrivals_since_probe: r.read_u64()?,
    })
}

fn snap_flow_state(state: &FlowState, w: &mut mafic_obs::SnapWriter) {
    match state {
        FlowState::Suspicious(entry) => {
            w.write_u8(0);
            snap_sft_entry(entry, w);
        }
        FlowState::Nice { since } => {
            w.write_u8(1);
            w.write_u64(since.as_nanos());
        }
        FlowState::Condemned(reason) => {
            w.write_u8(2);
            w.write_u8(match reason {
                PdtReason::IllegalSource => 0,
                PdtReason::Unresponsive => 1,
            });
        }
    }
}

fn read_flow_state(r: &mut mafic_obs::SnapReader<'_>) -> Result<FlowState, mafic_obs::SnapError> {
    Ok(match r.read_u8()? {
        0 => FlowState::Suspicious(read_sft_entry(r)?),
        1 => FlowState::Nice {
            since: SimTime::from_nanos(r.read_u64()?),
        },
        2 => FlowState::Condemned(match r.read_u8()? {
            0 => PdtReason::IllegalSource,
            1 => PdtReason::Unresponsive,
            tag => {
                return Err(mafic_obs::SnapError::Malformed(format!(
                    "pdt-reason tag {tag}"
                )))
            }
        }),
        tag => {
            return Err(mafic_obs::SnapError::Malformed(format!(
                "flow-state tag {tag}"
            )))
        }
    })
}

impl Fifo {
    /// Saves the deque (stale entries included — future evictions and
    /// the compaction trigger depend on it verbatim), the live seats,
    /// and the counters. The capacity is build-time configuration.
    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        w.write_usize(self.order.len());
        for &(flow, stamp) in &self.order {
            w.write_usize(flow.index());
            w.write_u64(stamp);
        }
        w.write_usize(self.seats.len());
        for (flow, &stamp) in self.seats.iter() {
            w.write_usize(flow.index());
            w.write_u64(stamp);
        }
        w.write_u64(self.next_stamp);
        w.write_u64(self.evictions);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        let n = r.read_usize()?;
        self.order.clear();
        for _ in 0..n {
            let flow = FlowId::from_index(r.read_usize()?);
            let stamp = r.read_u64()?;
            self.order.push_back((flow, stamp));
        }
        let n = r.read_usize()?;
        self.seats = FlowSlab::new();
        for _ in 0..n {
            let flow = FlowId::from_index(r.read_usize()?);
            let stamp = r.read_u64()?;
            self.seats.insert(flow, stamp);
        }
        self.next_stamp = r.read_u64()?;
        self.evictions = r.read_u64()?;
        Ok(())
    }
}

impl mafic_obs::SnapshotState for FlowTables {
    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        w.write_usize(self.states.len());
        for (id, state) in self.states.iter() {
            w.write_usize(id.index());
            snap_flow_state(state, w);
        }
        self.sft.snap_save(w);
        self.nft.snap_save(w);
        self.pdt.snap_save(w);
        w.write_usize(self.peak_sft);
        w.write_usize(self.peak_nft);
        w.write_usize(self.peak_pdt);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        let n = r.read_usize()?;
        self.states = FlowSlab::new();
        for _ in 0..n {
            let id = FlowId::from_index(r.read_usize()?);
            let state = read_flow_state(r)?;
            self.states.insert(id, state);
        }
        self.sft.snap_restore(r)?;
        self.nft.snap_restore(r)?;
        self.pdt.snap_restore(r)?;
        self.peak_sft = r.read_usize()?;
        self.peak_nft = r.read_usize()?;
        self.peak_pdt = r.read_usize()?;
        Ok(())
    }
}

impl mafic_obs::StateHash for SftEntry {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        self.key.hash_state(h);
        h.write_u64(self.probe_started.as_nanos());
        h.write_f64(self.baseline_rate);
        h.write_u64(self.rtt_estimate.as_nanos());
        h.write_u64(self.deadline.as_nanos());
        h.write_u64(self.arrivals_since_probe);
    }
}

impl mafic_obs::StateHash for FlowState {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        match self {
            FlowState::Suspicious(entry) => {
                h.write_u8(0);
                entry.hash_state(h);
            }
            FlowState::Nice { since } => {
                h.write_u8(1);
                h.write_u64(since.as_nanos());
            }
            FlowState::Condemned(reason) => {
                h.write_u8(2);
                h.write_u8(match reason {
                    PdtReason::IllegalSource => 0,
                    PdtReason::Unresponsive => 1,
                });
            }
        }
    }
}

impl Fifo {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_usize(self.len());
        h.write_usize(self.capacity);
        h.write_u64(self.next_stamp);
        h.write_u64(self.evictions);
    }
}

impl mafic_obs::StateHash for FlowTables {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_usize(self.states.len());
        for (id, state) in self.states.iter() {
            h.write_usize(id.index());
            state.hash_state(h);
        }
        // Seat order inside each FIFO is derivable from the stamps, so
        // hashing lengths + stamp counters + evictions pins the
        // occupancy machinery without walking stale deque entries.
        self.sft.hash_state(h);
        self.nft.hash_state(h);
        self.pdt.hash_state(h);
        h.write_usize(self.peak_sft);
        h.write_usize(self.peak_nft);
        h.write_usize(self.peak_pdt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::{Addr, SimDuration};

    fn flow(n: usize) -> FlowId {
        FlowId::from_index(n)
    }

    fn entry() -> SftEntry {
        SftEntry {
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 80),
            probe_started: SimTime::ZERO,
            baseline_rate: 100.0,
            rtt_estimate: SimDuration::from_millis(50),
            deadline: SimTime::ZERO + SimDuration::from_millis(100),
            arrivals_since_probe: 0,
        }
    }

    #[test]
    fn tables_start_empty() {
        let t = FlowTables::new(4, 4, 4);
        assert_eq!(t.sft_len(), 0);
        assert_eq!(t.nft_len(), 0);
        assert_eq!(t.pdt_len(), 0);
        assert_eq!(t.evictions(), 0);
        assert!(t.state(flow(0)).is_none());
    }

    #[test]
    fn sft_round_trip() {
        let mut t = FlowTables::new(4, 4, 4);
        t.sft_insert(flow(1), entry());
        assert!(t.sft_get(flow(1)).is_some());
        t.sft_get_mut(flow(1)).unwrap().arrivals_since_probe = 5;
        assert_eq!(t.sft_get(flow(1)).unwrap().arrivals_since_probe, 5);
        let removed = t.sft_remove(flow(1)).unwrap();
        assert_eq!(removed.arrivals_since_probe, 5);
        assert_eq!(t.sft_len(), 0);
    }

    #[test]
    fn nft_and_pdt_membership() {
        let mut t = FlowTables::new(4, 4, 4);
        t.nft_insert(flow(1), SimTime::ZERO);
        t.pdt_insert(flow(2), PdtReason::Unresponsive);
        t.pdt_insert(flow(3), PdtReason::IllegalSource);
        assert!(t.nft_contains(flow(1)));
        assert!(!t.nft_contains(flow(2)));
        assert_eq!(t.pdt_get(flow(2)), Some(PdtReason::Unresponsive));
        assert_eq!(t.pdt_get(flow(3)), Some(PdtReason::IllegalSource));
        assert!(!t.pdt_contains(flow(1)));
    }

    #[test]
    fn state_is_a_single_probe_classification() {
        let mut t = FlowTables::new(4, 4, 4);
        t.sft_insert(flow(1), entry());
        t.nft_insert(flow(2), SimTime::ZERO);
        t.pdt_insert(flow(3), PdtReason::Unresponsive);
        assert!(matches!(t.state(flow(1)), Some(FlowState::Suspicious(_))));
        assert!(matches!(t.state(flow(2)), Some(FlowState::Nice { .. })));
        assert!(matches!(
            t.state(flow(3)),
            Some(FlowState::Condemned(PdtReason::Unresponsive))
        ));
        assert!(t.state(flow(4)).is_none());
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut t = FlowTables::new(4, 4, 2);
        t.pdt_insert(flow(1), PdtReason::Unresponsive);
        t.pdt_insert(flow(2), PdtReason::Unresponsive);
        t.pdt_insert(flow(3), PdtReason::Unresponsive);
        assert_eq!(t.pdt_len(), 2);
        assert!(!t.pdt_contains(flow(1)), "oldest evicted first");
        assert!(t.pdt_contains(flow(2)));
        assert!(t.pdt_contains(flow(3)));
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn reinsertion_does_not_evict() {
        let mut t = FlowTables::new(4, 4, 2);
        t.pdt_insert(flow(1), PdtReason::Unresponsive);
        t.pdt_insert(flow(1), PdtReason::IllegalSource);
        assert_eq!(t.pdt_len(), 1);
        assert_eq!(t.pdt_get(flow(1)), Some(PdtReason::IllegalSource));
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn migration_between_tables_releases_the_old_seat() {
        let mut t = FlowTables::new(2, 2, 2);
        t.sft_insert(flow(1), entry());
        assert_eq!(t.sft_len(), 1);
        // Probation decided: the flow moves SFT → NFT.
        let _ = t.sft_remove(flow(1));
        t.nft_insert(flow(1), SimTime::ZERO);
        assert_eq!(t.sft_len(), 0);
        assert_eq!(t.nft_len(), 1);
        // Direct overwrite (no explicit remove) also releases the seat.
        t.sft_insert(flow(2), entry());
        t.pdt_insert(flow(2), PdtReason::Unresponsive);
        assert_eq!(t.sft_len(), 0);
        assert_eq!(t.pdt_len(), 1);
        assert!(matches!(t.state(flow(2)), Some(FlowState::Condemned(_))));
    }

    #[test]
    fn reentry_after_leaving_does_not_confuse_fifo() {
        // Regression: a flow that left the SFT and re-entered later must
        // not be treated as the oldest resident via its stale order
        // entry.
        let mut t = FlowTables::new(2, 4, 4);
        t.sft_insert(flow(1), entry());
        let _ = t.sft_remove(flow(1));
        t.sft_insert(flow(2), entry());
        t.sft_insert(flow(1), entry()); // re-entry; flow 2 is now oldest
        t.sft_insert(flow(3), entry()); // full: evict flow 2, not flow 1
        assert!(t.sft_get(flow(2)).is_none(), "oldest resident evicted");
        assert!(t.sft_get(flow(1)).is_some(), "re-entered flow survives");
        assert!(t.sft_get(flow(3)).is_some());
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.sft_len(), 2);
    }

    #[test]
    fn flush_empties_everything() {
        let mut t = FlowTables::new(4, 4, 4);
        t.sft_insert(flow(1), entry());
        t.nft_insert(flow(2), SimTime::ZERO);
        t.pdt_insert(flow(3), PdtReason::Unresponsive);
        t.flush();
        assert_eq!(t.sft_len() + t.nft_len() + t.pdt_len(), 0);
        assert!(t.state(flow(1)).is_none());
    }

    #[test]
    fn hashed_labels_cost_less_memory() {
        let mut t = FlowTables::new(64, 64, 64);
        for n in 0..10 {
            t.nft_insert(flow(n), SimTime::ZERO);
        }
        assert!(t.approx_bytes(8) < t.approx_bytes(12));
    }

    #[test]
    fn peak_bytes_survive_a_flush() {
        let mut t = FlowTables::new(64, 64, 64);
        t.sft_insert(flow(1), entry());
        t.nft_insert(flow(2), SimTime::ZERO);
        t.pdt_insert(flow(3), PdtReason::Unresponsive);
        let loaded = t.approx_bytes(8);
        assert_eq!(t.approx_peak_bytes(8), loaded);
        t.flush();
        assert_eq!(t.approx_bytes(8), 0, "resident state is gone");
        assert_eq!(
            t.approx_peak_bytes(8),
            loaded,
            "the peak remembers what the defense cost while active"
        );
        // A smaller re-occupancy never lowers the peak.
        t.nft_insert(flow(4), SimTime::ZERO);
        assert_eq!(t.approx_peak_bytes(8), loaded);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FlowTables::new(0, 1, 1);
    }
}
