//! Test harnesses for driving agents and filters outside a full simulator.
//!
//! Unit tests of transport agents and of the MAFIC filter need to call
//! `on_packet`/`on_timer` directly and observe the commands the component
//! issued. The command buffers are crate-private by design, so this module
//! offers small harnesses that execute a callback with a real context and
//! hand back the effects in a public form.

use crate::agent::{Agent, AgentCommand, AgentCtx};
use crate::event::ControlMsg;
use crate::filter::{FilterAction, FilterCommand, FilterCtx, PacketEnv, PacketFilter, StatNote};
use crate::ids::{AgentId, NodeId};
use crate::packet::{FlowKey, Packet};
use crate::time::{SimDuration, SimTime};

/// Effects produced by one agent callback.
#[derive(Debug, Default)]
pub struct AgentEffects {
    /// Packets the agent sent.
    pub sent: Vec<Packet>,
    /// Timers the agent armed, as `(delay, token)` pairs.
    pub timers: Vec<(SimDuration, u64)>,
}

/// Drives a single [`Agent`] with a controllable clock.
#[derive(Debug)]
pub struct AgentHarness {
    /// The simulated "now" used for the next callback; tests may set it.
    pub now: SimTime,
    agent_id: AgentId,
    node: NodeId,
    next_packet_id: u64,
}

impl AgentHarness {
    /// Creates a harness with agent index 0 on node index 0.
    #[must_use]
    pub fn new() -> Self {
        AgentHarness {
            now: SimTime::ZERO,
            agent_id: AgentId::from_index(0),
            node: NodeId::from_index(0),
            next_packet_id: 0,
        }
    }

    /// Advances the harness clock.
    pub fn advance(&mut self, by: SimDuration) {
        self.now += by;
    }

    /// Calls `on_start`.
    pub fn start(&mut self, agent: &mut dyn Agent) -> AgentEffects {
        self.drive(|a, ctx| a.on_start(ctx), agent)
    }

    /// Delivers a packet.
    pub fn deliver(&mut self, agent: &mut dyn Agent, packet: Packet) -> AgentEffects {
        self.drive(move |a, ctx| a.on_packet(packet, ctx), agent)
    }

    /// Fires a timer with the given token.
    pub fn fire_timer(&mut self, agent: &mut dyn Agent, token: u64) -> AgentEffects {
        self.drive(move |a, ctx| a.on_timer(token, ctx), agent)
    }

    fn drive<F>(&mut self, f: F, agent: &mut dyn Agent) -> AgentEffects
    where
        F: FnOnce(&mut dyn Agent, &mut AgentCtx<'_>),
    {
        let mut commands = Vec::new();
        {
            let mut ctx = AgentCtx::new(
                self.now,
                self.agent_id,
                self.node,
                &mut self.next_packet_id,
                &mut commands,
            );
            f(agent, &mut ctx);
        }
        let mut effects = AgentEffects::default();
        for cmd in commands {
            match cmd {
                AgentCommand::SendPacket(p) => effects.sent.push(p),
                AgentCommand::ScheduleTimer { delay, token } => {
                    effects.timers.push((delay, token));
                }
            }
        }
        effects
    }
}

impl Default for AgentHarness {
    fn default() -> Self {
        AgentHarness::new()
    }
}

/// Effects produced by one filter callback.
#[derive(Debug, Default)]
pub struct FilterEffects {
    /// The verdict, when the callback was `on_packet`.
    pub action: Option<FilterAction>,
    /// Packets the filter emitted (probes).
    pub emitted: Vec<Packet>,
    /// Timers armed, as `(delay, token)` pairs.
    pub timers: Vec<(SimDuration, u64)>,
    /// Statistics notes recorded, with the flow they referred to.
    pub notes: Vec<(StatNote, Option<FlowKey>)>,
}

/// Drives a single [`PacketFilter`] with a controllable clock.
#[derive(Debug)]
pub struct FilterHarness {
    /// The simulated "now" used for the next callback; tests may set it.
    pub now: SimTime,
    node: NodeId,
    next_packet_id: u64,
}

impl FilterHarness {
    /// Creates a harness on node index 0.
    #[must_use]
    pub fn new() -> Self {
        FilterHarness {
            now: SimTime::ZERO,
            node: NodeId::from_index(0),
            next_packet_id: 0,
        }
    }

    /// Advances the harness clock.
    pub fn advance(&mut self, by: SimDuration) {
        self.now += by;
    }

    /// Offers a packet with the given environment.
    pub fn offer(
        &mut self,
        filter: &mut dyn PacketFilter,
        packet: &Packet,
        env: PacketEnv,
    ) -> FilterEffects {
        let mut commands = Vec::new();
        let action;
        {
            let mut ctx =
                FilterCtx::new(self.now, self.node, 0, &mut self.next_packet_id, &mut commands);
            action = filter.on_packet(packet, &env, &mut ctx);
        }
        let mut fx = Self::collect(commands);
        fx.action = Some(action);
        fx
    }

    /// Offers a packet that arrived on a link and is not locally bound.
    pub fn offer_transit(&mut self, filter: &mut dyn PacketFilter, packet: &Packet) -> FilterEffects {
        self.offer(
            filter,
            packet,
            PacketEnv {
                via_link: None,
                dst_is_local: false,
            },
        )
    }

    /// Fires a filter timer.
    pub fn fire_timer(&mut self, filter: &mut dyn PacketFilter, token: u64) -> FilterEffects {
        let mut commands = Vec::new();
        {
            let mut ctx =
                FilterCtx::new(self.now, self.node, 0, &mut self.next_packet_id, &mut commands);
            filter.on_timer(token, &mut ctx);
        }
        Self::collect(commands)
    }

    /// Delivers a control message.
    pub fn control(&mut self, filter: &mut dyn PacketFilter, msg: &ControlMsg) -> FilterEffects {
        let mut commands = Vec::new();
        {
            let mut ctx =
                FilterCtx::new(self.now, self.node, 0, &mut self.next_packet_id, &mut commands);
            filter.on_control(msg, &mut ctx);
        }
        Self::collect(commands)
    }

    fn collect(commands: Vec<FilterCommand>) -> FilterEffects {
        let mut fx = FilterEffects::default();
        for cmd in commands {
            match cmd {
                FilterCommand::EmitPacket(p) => fx.emitted.push(p),
                FilterCommand::ScheduleTimer { delay, token, .. } => {
                    fx.timers.push((delay, token));
                }
                FilterCommand::Note { note, flow } => fx.notes.push((note, flow)),
            }
        }
        fx
    }
}

impl Default for FilterHarness {
    fn default() -> Self {
        FilterHarness::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::CountingSink;
    use crate::filter::PassthroughFilter;
    use crate::ids::Addr;
    use crate::packet::{PacketKind, Provenance};

    fn pkt() -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            kind: PacketKind::Udp,
            size_bytes: 100,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn agent_harness_round_trip() {
        let mut h = AgentHarness::new();
        let mut sink = CountingSink::new();
        let fx = h.start(&mut sink);
        assert!(fx.sent.is_empty() && fx.timers.is_empty());
        h.advance(SimDuration::from_millis(5));
        let _ = h.deliver(&mut sink, pkt());
        assert_eq!(sink.delivered(), 1);
    }

    #[test]
    fn filter_harness_captures_action() {
        let mut h = FilterHarness::new();
        let mut f = PassthroughFilter::new();
        let fx = h.offer_transit(&mut f, &pkt());
        assert_eq!(fx.action, Some(FilterAction::Forward));
        assert_eq!(f.seen(), 1);
    }
}
