//! # mafic-bench
//!
//! Shared helpers for the Criterion benchmarks that regenerate the
//! paper's tables and figures. The benches measure the *cost* of
//! regenerating each panel (and print the resulting values once per
//! bench run); the panel data itself is produced by `mafic-experiments`.
//!
//! Bench scenarios are deliberately smaller than the figure binaries'
//! (fewer flows, shorter horizon) so a full `cargo bench` pass stays in
//! the minutes range; the bin targets in `mafic-experiments` remain the
//! authoritative figure regenerators.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

use mafic_netsim::SimTime;
use mafic_workload::ScenarioSpec;

/// A reduced-size scenario for benchmarking: same structure as the
/// Table II defaults, ~6× fewer events.
#[must_use]
pub fn bench_spec() -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 20,
        n_routers: 10,
        end: SimTime::from_secs_f64(3.0),
        ..ScenarioSpec::default()
    }
}

/// Variant of [`bench_spec`] with the given traffic volume.
#[must_use]
pub fn bench_spec_with_vt(vt: usize) -> ScenarioSpec {
    ScenarioSpec {
        total_flows: vt,
        ..bench_spec()
    }
}
