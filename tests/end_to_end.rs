//! End-to-end integration tests spanning every crate: the full pipeline
//! from topology construction through attack, detection, probing, and
//! metric extraction.

use mafic_suite::core::DropPolicy;
use mafic_suite::netsim::{SimDuration, SimTime};
use mafic_suite::workload::{run_spec, DetectionMode, ScenarioSpec};

/// A small but complete scenario that runs in well under a second.
fn small_spec() -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 16,
        n_routers: 8,
        end: SimTime::from_secs_f64(4.0),
        ..ScenarioSpec::default()
    }
}

#[test]
fn full_pipeline_detects_and_cuts_the_attack() {
    let outcome = run_spec(small_spec()).expect("scenario runs");
    assert!(outcome.defense_engaged(), "pushback must trigger");
    let trigger = outcome.triggered_at.unwrap();
    assert!(trigger > small_spec().attack_start);
    assert!(
        trigger < small_spec().attack_start + SimDuration::from_millis(700),
        "detection latency too high: {trigger}"
    );
    // Headline claims of the paper, as wide bands.
    assert!(
        outcome.report.accuracy_pct > 97.0,
        "accuracy {:.3}%",
        outcome.report.accuracy_pct
    );
    assert!(
        outcome.report.false_negative_pct < 3.0,
        "theta_n {:.3}%",
        outcome.report.false_negative_pct
    );
    assert!(
        outcome.report.legit_drop_pct < 15.0,
        "Lr {:.3}%",
        outcome.report.legit_drop_pct
    );
    assert!(
        outcome.report.traffic_reduction_pct > 50.0,
        "beta {:.2}%",
        outcome.report.traffic_reduction_pct
    );
}

#[test]
fn all_attack_flows_end_up_condemned() {
    let outcome = run_spec(small_spec()).expect("scenario runs");
    let flows = outcome.report.flows;
    assert!(flows.attack_flows > 0);
    assert_eq!(
        flows.attack_condemned, flows.attack_flows,
        "every zombie should land in the PDT: {flows:?}"
    );
    assert_eq!(flows.attack_cleared, 0, "no zombie may pass the probe test");
}

#[test]
fn mafic_beats_proportional_on_collateral_damage() {
    let mafic = run_spec(small_spec()).expect("mafic run");
    let prop = run_spec(ScenarioSpec {
        policy: DropPolicy::Proportional,
        ..small_spec()
    })
    .expect("baseline run");
    assert!(
        mafic.report.legit_drop_pct < prop.report.legit_drop_pct / 4.0,
        "MAFIC Lr {:.2}% should be far below proportional Lr {:.2}%",
        mafic.report.legit_drop_pct,
        prop.report.legit_drop_pct
    );
    // And MAFIC must not pay for that with worse attack suppression.
    assert!(
        mafic.report.accuracy_pct > prop.report.accuracy_pct,
        "MAFIC alpha {:.2}% vs proportional {:.2}%",
        mafic.report.accuracy_pct,
        prop.report.accuracy_pct
    );
}

#[test]
fn undefended_run_floods_the_victim() {
    let defended = run_spec(small_spec()).expect("defended run");
    let undefended = run_spec(ScenarioSpec {
        detection: DetectionMode::Off,
        detection_fallback: None,
        ..small_spec()
    })
    .expect("undefended run");
    assert!(!undefended.defense_engaged());
    // Without the defense, far more attack bytes reach the victim.
    let attack_delivered = |o: &mafic_suite::workload::RunOutcome| {
        o.goodput_series.iter().map(|p| p.attack_bps).sum::<f64>()
    };
    assert!(
        attack_delivered(&undefended) > 5.0 * attack_delivered(&defended),
        "defense should cut attack goodput by >5x"
    );
}

#[test]
fn determinism_across_identical_runs() {
    let a = run_spec(small_spec()).expect("run a");
    let b = run_spec(small_spec()).expect("run b");
    assert_eq!(a.report, b.report);
    assert_eq!(a.triggered_at, b.triggered_at);
    assert_eq!(a.packets_sent, b.packets_sent);
    assert_eq!(a.packets_delivered, b.packets_delivered);
    assert_eq!(a.series.len(), b.series.len());
}

#[test]
fn different_seeds_produce_different_runs() {
    let a = run_spec(small_spec()).expect("run a");
    let b = run_spec(ScenarioSpec {
        seed: 999,
        ..small_spec()
    })
    .expect("run b");
    assert_ne!(
        a.packets_sent, b.packets_sent,
        "different seeds should perturb the run"
    );
}

#[test]
fn legit_flows_recover_after_passing_the_probe() {
    let outcome = run_spec(ScenarioSpec {
        end: SimTime::from_secs_f64(8.0),
        ..small_spec()
    })
    .expect("scenario runs");
    let trigger = outcome.triggered_at.unwrap().as_secs_f64();
    // Legit offered load just after the cut vs late in the run.
    let mean_legit = |from: f64, to: f64| {
        let pts: Vec<f64> = outcome
            .series
            .iter()
            .filter(|p| p.time_s >= from && p.time_s < to)
            .map(|p| p.legit_bps)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    let suppressed = mean_legit(trigger + 0.05, trigger + 0.3);
    let recovered = mean_legit(6.0, 8.0);
    assert!(
        recovered > 1.5 * suppressed,
        "legit flows should regain bandwidth: {suppressed:.0} -> {recovered:.0} B/s"
    );
}

#[test]
fn higher_pd_cuts_harder() {
    let low = run_spec(ScenarioSpec {
        drop_probability: 0.5,
        detection: DetectionMode::AtTime(SimTime::from_secs_f64(1.3)),
        ..small_spec()
    })
    .expect("low pd");
    let high = run_spec(ScenarioSpec {
        drop_probability: 0.95,
        detection: DetectionMode::AtTime(SimTime::from_secs_f64(1.3)),
        ..small_spec()
    })
    .expect("high pd");
    assert!(
        high.report.traffic_reduction_pct > low.report.traffic_reduction_pct,
        "beta must grow with Pd: {:.2}% vs {:.2}%",
        high.report.traffic_reduction_pct,
        low.report.traffic_reduction_pct
    );
    assert!(
        high.report.false_negative_pct < low.report.false_negative_pct,
        "theta_n must shrink with Pd"
    );
}
