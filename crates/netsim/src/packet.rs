//! Packets, flow keys, and drop accounting.
//!
//! The flow label follows the paper: the 4-tuple
//! `{source IP, destination IP, source port, destination port}` identifies
//! a flow even when the source address is spoofed — spoofed packets with
//! the same claimed tuple form one flow, which is exactly the granularity
//! MAFIC's tables operate on.
//!
//! Every packet additionally carries [`Provenance`] — the *ground truth*
//! about who really sent it and whether it belongs to an attack. Only the
//! metrics layer may read provenance; the algorithm under test never does.

use crate::ids::{Addr, AgentId};
use crate::time::SimTime;
use mafic_obs::{SnapError, SnapReader, SnapWriter};
use std::fmt;

/// The 4-tuple flow label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Claimed source address (possibly spoofed).
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Claimed source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl FlowKey {
    /// Creates a flow key.
    #[must_use]
    pub fn new(src: Addr, dst: Addr, src_port: u16, dst_port: u16) -> Self {
        FlowKey {
            src,
            dst,
            src_port,
            dst_port,
        }
    }

    /// The key of the reverse direction (ACK path).
    #[must_use]
    pub fn reversed(self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// Packs the tuple into a 96-bit-equivalent pair for hashing.
    #[must_use]
    pub fn as_words(self) -> (u64, u64) {
        (
            (u64::from(self.src.as_u32()) << 32) | u64::from(self.dst.as_u32()),
            (u64::from(self.src_port) << 16) | u64::from(self.dst_port),
        )
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}",
            self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// Version of the inter-domain pushback control protocol carried by
/// every [`ControlMsg`] envelope. Receivers deny envelopes from any
/// other version ([`DenyReason::BadVersion`]) instead of guessing at
/// their field semantics.
pub const CONTROL_PROTOCOL_VERSION: u8 = 2;

/// The authenticated identity of a pushback requester: the control
/// address of the domain boundary the message originated from.
///
/// The receiving control channel checks that the carrying packet's
/// source address matches the envelope's claimed requester, so a domain
/// cannot speak for another domain's boundary; the trust ledger then
/// decides whether that (authentic) requester is *authorized* to ask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequesterId(Addr);

impl RequesterId {
    /// Identity of the domain whose boundary owns `ctrl_addr`.
    #[must_use]
    pub fn new(ctrl_addr: Addr) -> Self {
        RequesterId(ctrl_addr)
    }

    /// The control address this identity is bound to.
    #[must_use]
    pub fn addr(self) -> Addr {
        self.0
    }
}

impl fmt::Display for RequesterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "requester({})", self.0)
    }
}

/// Why an upstream refused a pushback request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// The envelope carries an unknown protocol version.
    BadVersion,
    /// The requester is authentic but not authorized to ask this
    /// domain for drops (it is not a downstream neighbor on any
    /// victim-bound path through here).
    UntrustedRequester,
    /// The envelope's nonce did not advance past the last one accepted
    /// from this requester — a replayed or reordered message.
    Replayed,
    /// The claimed victim-bound aggregate is not corroborated by this
    /// domain's own boundary meter: the "victim" is observed receiving
    /// normal traffic, so installing drops would only cut legitimate
    /// flows (malicious pushback).
    Uncorroborated,
    /// The requester's install budget at this domain is exhausted.
    BudgetExhausted,
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DenyReason::BadVersion => "bad-version",
            DenyReason::UntrustedRequester => "untrusted-requester",
            DenyReason::Replayed => "replayed",
            DenyReason::Uncorroborated => "uncorroborated",
            DenyReason::BudgetExhausted => "budget-exhausted",
        };
        f.write_str(s)
    }
}

/// One verb of the inter-domain pushback protocol (see [`ControlMsg`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlVerb {
    /// Ask the upstream domain to install the defense for `victim`.
    Request {
        /// Address of the victim host under attack.
        victim: Addr,
        /// Victim-bound aggregate the requester observes entering its
        /// boundary (bytes/s) — the load its own deployment cannot stop
        /// at the source. The receiver corroborates this claim against
        /// its own meter before installing anything.
        aggregate_bps: u64,
        /// Escalation hops the receiver may still spend (depth cap).
        budget: u8,
    },
    /// Renew the lease on a previously requested defense. Carries the
    /// full lease state (RSVP-style soft-state refresh): a receiver
    /// whose lease lapsed — or that never saw the original request
    /// because the packet was lost on a congested link — re-installs
    /// the defense from the refresh alone (re-vetted like a request).
    Refresh {
        /// The victim the lease protects.
        victim: Addr,
        /// Escalation hops the receiver may still spend.
        budget: u8,
    },
    /// Tear the defense down (the requester stood down or its own
    /// lease lapsed). Cascades hop by hop toward the sources.
    Withdraw {
        /// The victim the defense protected.
        victim: Addr,
    },
    /// Victim-initiated stand-down: the victim domain observed healthy
    /// boundary traffic for its configured number of consecutive
    /// intervals and ends the conversation. Receivers tear down like a
    /// withdrawal and forward `Withdraw` to anyone *they* escalated to.
    Stop {
        /// The victim whose defense is ending.
        victim: Addr,
    },
    /// Upstream refusal, sent back downstream to the requester.
    Deny {
        /// The victim the refused request named.
        victim: Addr,
        /// Why the request was refused.
        reason: DenyReason,
    },
    /// Upstream status report, sent downstream to the requester that
    /// installed the defense. A chain-top defender is the only party
    /// that observes the *raw* victim-bound aggregate (nothing deeper
    /// is cutting it); each leased defender periodically reports its
    /// effective view — its own boundary inflow or the sum of its own
    /// upstreams' fresh reports, whichever is larger — so the victim
    /// can reconstruct the true flood scale. The victim's boundary
    /// meter alone cannot tell "flood ended" from "flood cut upstream"
    /// and must not stand the defense down on local evidence while
    /// escalated.
    Report {
        /// The victim the defense protects.
        victim: Addr,
        /// The reporter's effective victim-bound aggregate (bytes/s).
        aggregate_bps: u64,
    },
}

impl ControlVerb {
    /// The victim address this verb is about.
    #[must_use]
    pub fn victim(self) -> Addr {
        match self {
            ControlVerb::Request { victim, .. }
            | ControlVerb::Refresh { victim, .. }
            | ControlVerb::Withdraw { victim }
            | ControlVerb::Stop { victim }
            | ControlVerb::Deny { victim, .. }
            | ControlVerb::Report { victim, .. } => victim,
        }
    }
}

/// The versioned, identity-carrying envelope of the inter-domain
/// pushback control plane.
///
/// Every coordinator-to-coordinator message rides in one envelope:
/// protocol version, authenticated [`RequesterId`] (the originating
/// domain's boundary), a per-sender monotone nonce for replay
/// suppression, and the [`ControlVerb`]. Envelopes are **not** a side
/// channel: they travel inside [`PacketKind::Pushback`] packets over
/// the inter-domain links — serialized, delayed, queued, and ordered by
/// the deterministic event rules like any other traffic.
///
/// # Examples
///
/// Constructing a version-current request envelope:
///
/// ```
/// use mafic_netsim::{
///     Addr, ControlMsg, ControlVerb, RequesterId, CONTROL_PROTOCOL_VERSION,
/// };
///
/// let victim = Addr::from_octets(10, 200, 0, 1);
/// let me = RequesterId::new(Addr::from_octets(10, 250, 0, 1));
/// let msg = ControlMsg::new(
///     me,
///     1, // first nonce from this boundary
///     ControlVerb::Request { victim, aggregate_bps: 2_000_000, budget: 2 },
/// );
/// assert_eq!(msg.version, CONTROL_PROTOCOL_VERSION);
/// assert_eq!(msg.requester, me);
/// assert_eq!(msg.verb.victim(), victim);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlMsg {
    /// Protocol version ([`CONTROL_PROTOCOL_VERSION`] when built by
    /// [`ControlMsg::new`]).
    pub version: u8,
    /// Authenticated identity of the originating domain boundary.
    pub requester: RequesterId,
    /// Per-sender monotone sequence number (replay suppression).
    pub nonce: u64,
    /// What the sender asks for.
    pub verb: ControlVerb,
}

impl ControlMsg {
    /// Builds a version-current envelope.
    #[must_use]
    pub fn new(requester: RequesterId, nonce: u64, verb: ControlVerb) -> Self {
        ControlMsg {
            version: CONTROL_PROTOCOL_VERSION,
            requester,
            nonce,
            verb,
        }
    }
}

/// Transport-level content of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A TCP data segment.
    TcpData {
        /// Sequence number (in packets, not bytes — the simulator sends
        /// fixed-size segments).
        seq: u64,
        /// Sender timestamp option (TSval).
        ts: SimTime,
        /// Echoed peer timestamp (TSecr); `SimTime::ZERO` when none.
        ts_echo: SimTime,
    },
    /// A cumulative TCP acknowledgement.
    TcpAck {
        /// Next expected sequence number.
        ack: u64,
        /// Sender timestamp option.
        ts: SimTime,
        /// Echoed peer timestamp.
        ts_echo: SimTime,
    },
    /// A UDP datagram (no feedback loop).
    Udp,
    /// A MAFIC probe: a burst of duplicated ACKs addressed to the claimed
    /// flow source. `count` is the number of duplicate ACKs the burst
    /// represents (≥ 3 triggers fast retransmit in a compliant sender).
    ProbeDupAck {
        /// Number of duplicate ACKs in the burst.
        count: u8,
    },
    /// An inter-domain pushback control envelope in flight between two
    /// domain coordinators (see [`ControlMsg`]).
    Pushback(ControlMsg),
}

impl PacketKind {
    /// True for TCP data or ACK segments (used for the Γ share metrics).
    #[must_use]
    pub fn is_tcp(self) -> bool {
        matches!(self, PacketKind::TcpData { .. } | PacketKind::TcpAck { .. })
    }

    /// True for TCP data segments.
    #[must_use]
    pub fn is_tcp_data(self) -> bool {
        matches!(self, PacketKind::TcpData { .. })
    }

    /// True for probe packets.
    #[must_use]
    pub fn is_probe(self) -> bool {
        matches!(self, PacketKind::ProbeDupAck { .. })
    }

    /// True for inter-domain pushback control packets.
    #[must_use]
    pub fn is_pushback(self) -> bool {
        matches!(self, PacketKind::Pushback(_))
    }
}

/// Ground truth about the real origin of a packet.
///
/// Carried for measurement only: drop decisions must never consult it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// The agent that truly generated the packet.
    pub origin: AgentId,
    /// True if the packet belongs to an attack flow.
    pub is_attack: bool,
}

impl Provenance {
    /// Provenance for infrastructure-generated packets (probes, control).
    #[must_use]
    pub fn infrastructure() -> Self {
        Provenance {
            origin: AgentId(u32::MAX),
            is_attack: false,
        }
    }
}

/// A simulated packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Domain-unique packet identifier (used by the LogLog sketches).
    pub id: u64,
    /// The flow 4-tuple.
    pub key: FlowKey,
    /// Transport payload description.
    pub kind: PacketKind,
    /// On-wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Instant the packet was created by its sender.
    pub created_at: SimTime,
    /// Ground truth (metrics only).
    pub provenance: Provenance,
    /// Hops traversed so far; packets exceeding [`Packet::MAX_HOPS`] are
    /// dropped to keep misconfigured routing from looping forever.
    pub hops: u8,
}

impl Packet {
    /// Hop limit after which a packet is discarded.
    pub const MAX_HOPS: u8 = 64;

    /// True if this packet has exceeded its hop budget.
    #[must_use]
    pub fn hop_limit_exceeded(&self) -> bool {
        self.hops >= Self::MAX_HOPS
    }
}

/// Why a packet was dropped — the accounting backbone of every metric in
/// the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Drop-tail queue overflow on a link.
    QueueFull,
    /// No route toward the destination.
    NoRoute,
    /// Hop limit exceeded (routing loop guard).
    HopLimit,
    /// Random drop during MAFIC's probing phase (flow in SFT).
    FilterProbing,
    /// Drop because the flow is in the Permanently Drop Table.
    FilterPermanent,
    /// Immediate drop: claimed source address is illegal/unreachable.
    FilterIllegalSource,
    /// Drop by the proportional (baseline) policy.
    FilterProportional,
    /// Drop by an aggregate rate-limit policy (token bucket exhausted).
    FilterRateLimit,
    /// Drop by some other filter policy.
    FilterOther,
}

impl DropReason {
    /// True if the drop was decided by a defense filter rather than by the
    /// network itself.
    #[must_use]
    pub fn is_filter_drop(self) -> bool {
        matches!(
            self,
            DropReason::FilterProbing
                | DropReason::FilterPermanent
                | DropReason::FilterIllegalSource
                | DropReason::FilterProportional
                | DropReason::FilterRateLimit
                | DropReason::FilterOther
        )
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::QueueFull => "queue-full",
            DropReason::NoRoute => "no-route",
            DropReason::HopLimit => "hop-limit",
            DropReason::FilterProbing => "filter-probing",
            DropReason::FilterPermanent => "filter-permanent",
            DropReason::FilterIllegalSource => "filter-illegal-source",
            DropReason::FilterProportional => "filter-proportional",
            DropReason::FilterRateLimit => "filter-rate-limit",
            DropReason::FilterOther => "filter-other",
        };
        f.write_str(s)
    }
}

impl mafic_obs::StateHash for FlowKey {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        let (a, b) = self.as_words();
        h.write_u64(a);
        h.write_u64(b);
    }
}

impl mafic_obs::StateHash for DenyReason {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u8(match self {
            DenyReason::BadVersion => 0,
            DenyReason::UntrustedRequester => 1,
            DenyReason::Replayed => 2,
            DenyReason::Uncorroborated => 3,
            DenyReason::BudgetExhausted => 4,
        });
    }
}

impl mafic_obs::StateHash for ControlVerb {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        match self {
            ControlVerb::Request {
                victim,
                aggregate_bps,
                budget,
            } => {
                h.write_u8(0);
                h.write_u32(victim.as_u32());
                h.write_u64(*aggregate_bps);
                h.write_u8(*budget);
            }
            ControlVerb::Refresh { victim, budget } => {
                h.write_u8(1);
                h.write_u32(victim.as_u32());
                h.write_u8(*budget);
            }
            ControlVerb::Withdraw { victim } => {
                h.write_u8(2);
                h.write_u32(victim.as_u32());
            }
            ControlVerb::Stop { victim } => {
                h.write_u8(3);
                h.write_u32(victim.as_u32());
            }
            ControlVerb::Deny { victim, reason } => {
                h.write_u8(4);
                h.write_u32(victim.as_u32());
                reason.hash_state(h);
            }
            ControlVerb::Report {
                victim,
                aggregate_bps,
            } => {
                h.write_u8(5);
                h.write_u32(victim.as_u32());
                h.write_u64(*aggregate_bps);
            }
        }
    }
}

impl mafic_obs::StateHash for ControlMsg {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u8(self.version);
        h.write_u32(self.requester.addr().as_u32());
        h.write_u64(self.nonce);
        self.verb.hash_state(h);
    }
}

impl mafic_obs::StateHash for PacketKind {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        match self {
            PacketKind::TcpData { seq, ts, ts_echo } => {
                h.write_u8(0);
                h.write_u64(*seq);
                h.write_u64(ts.as_nanos());
                h.write_u64(ts_echo.as_nanos());
            }
            PacketKind::TcpAck { ack, ts, ts_echo } => {
                h.write_u8(1);
                h.write_u64(*ack);
                h.write_u64(ts.as_nanos());
                h.write_u64(ts_echo.as_nanos());
            }
            PacketKind::Udp => h.write_u8(2),
            PacketKind::ProbeDupAck { count } => {
                h.write_u8(3);
                h.write_u8(*count);
            }
            PacketKind::Pushback(msg) => {
                h.write_u8(4);
                msg.hash_state(h);
            }
        }
    }
}

/// Serializes a flow key into a checkpoint payload.
pub fn snap_flow_key(key: &FlowKey, w: &mut SnapWriter) {
    w.write_u32(key.src.as_u32());
    w.write_u32(key.dst.as_u32());
    w.write_u16(key.src_port);
    w.write_u16(key.dst_port);
}

/// Reads a flow key written by [`snap_flow_key`].
///
/// # Errors
///
/// [`SnapError::Truncated`] when the payload ends early.
pub fn read_flow_key(r: &mut SnapReader<'_>) -> Result<FlowKey, SnapError> {
    Ok(FlowKey {
        src: Addr::new(r.read_u32()?),
        dst: Addr::new(r.read_u32()?),
        src_port: r.read_u16()?,
        dst_port: r.read_u16()?,
    })
}

fn snap_deny_reason(reason: DenyReason, w: &mut SnapWriter) {
    w.write_u8(match reason {
        DenyReason::BadVersion => 0,
        DenyReason::UntrustedRequester => 1,
        DenyReason::Replayed => 2,
        DenyReason::Uncorroborated => 3,
        DenyReason::BudgetExhausted => 4,
    });
}

fn read_deny_reason(r: &mut SnapReader<'_>) -> Result<DenyReason, SnapError> {
    Ok(match r.read_u8()? {
        0 => DenyReason::BadVersion,
        1 => DenyReason::UntrustedRequester,
        2 => DenyReason::Replayed,
        3 => DenyReason::Uncorroborated,
        4 => DenyReason::BudgetExhausted,
        tag => return Err(SnapError::Malformed(format!("deny-reason tag {tag}"))),
    })
}

fn snap_control_verb(verb: &ControlVerb, w: &mut SnapWriter) {
    // Tags mirror the StateHash encoding above.
    match verb {
        ControlVerb::Request {
            victim,
            aggregate_bps,
            budget,
        } => {
            w.write_u8(0);
            w.write_u32(victim.as_u32());
            w.write_u64(*aggregate_bps);
            w.write_u8(*budget);
        }
        ControlVerb::Refresh { victim, budget } => {
            w.write_u8(1);
            w.write_u32(victim.as_u32());
            w.write_u8(*budget);
        }
        ControlVerb::Withdraw { victim } => {
            w.write_u8(2);
            w.write_u32(victim.as_u32());
        }
        ControlVerb::Stop { victim } => {
            w.write_u8(3);
            w.write_u32(victim.as_u32());
        }
        ControlVerb::Deny { victim, reason } => {
            w.write_u8(4);
            w.write_u32(victim.as_u32());
            snap_deny_reason(*reason, w);
        }
        ControlVerb::Report {
            victim,
            aggregate_bps,
        } => {
            w.write_u8(5);
            w.write_u32(victim.as_u32());
            w.write_u64(*aggregate_bps);
        }
    }
}

fn read_control_verb(r: &mut SnapReader<'_>) -> Result<ControlVerb, SnapError> {
    Ok(match r.read_u8()? {
        0 => ControlVerb::Request {
            victim: Addr::new(r.read_u32()?),
            aggregate_bps: r.read_u64()?,
            budget: r.read_u8()?,
        },
        1 => ControlVerb::Refresh {
            victim: Addr::new(r.read_u32()?),
            budget: r.read_u8()?,
        },
        2 => ControlVerb::Withdraw {
            victim: Addr::new(r.read_u32()?),
        },
        3 => ControlVerb::Stop {
            victim: Addr::new(r.read_u32()?),
        },
        4 => ControlVerb::Deny {
            victim: Addr::new(r.read_u32()?),
            reason: read_deny_reason(r)?,
        },
        5 => ControlVerb::Report {
            victim: Addr::new(r.read_u32()?),
            aggregate_bps: r.read_u64()?,
        },
        tag => return Err(SnapError::Malformed(format!("control-verb tag {tag}"))),
    })
}

/// Serializes a control envelope into a checkpoint payload.
pub fn snap_control_msg(msg: &ControlMsg, w: &mut SnapWriter) {
    w.write_u8(msg.version);
    w.write_u32(msg.requester.addr().as_u32());
    w.write_u64(msg.nonce);
    snap_control_verb(&msg.verb, w);
}

/// Reads a control envelope written by [`snap_control_msg`].
///
/// # Errors
///
/// [`SnapError::Truncated`] on early end of payload,
/// [`SnapError::Malformed`] on an unknown verb tag.
pub fn read_control_msg(r: &mut SnapReader<'_>) -> Result<ControlMsg, SnapError> {
    Ok(ControlMsg {
        version: r.read_u8()?,
        requester: RequesterId::new(Addr::new(r.read_u32()?)),
        nonce: r.read_u64()?,
        verb: read_control_verb(r)?,
    })
}

fn snap_packet_kind(kind: &PacketKind, w: &mut SnapWriter) {
    // Tags mirror the StateHash encoding above.
    match kind {
        PacketKind::TcpData { seq, ts, ts_echo } => {
            w.write_u8(0);
            w.write_u64(*seq);
            w.write_u64(ts.as_nanos());
            w.write_u64(ts_echo.as_nanos());
        }
        PacketKind::TcpAck { ack, ts, ts_echo } => {
            w.write_u8(1);
            w.write_u64(*ack);
            w.write_u64(ts.as_nanos());
            w.write_u64(ts_echo.as_nanos());
        }
        PacketKind::Udp => w.write_u8(2),
        PacketKind::ProbeDupAck { count } => {
            w.write_u8(3);
            w.write_u8(*count);
        }
        PacketKind::Pushback(msg) => {
            w.write_u8(4);
            snap_control_msg(msg, w);
        }
    }
}

fn read_packet_kind(r: &mut SnapReader<'_>) -> Result<PacketKind, SnapError> {
    Ok(match r.read_u8()? {
        0 => PacketKind::TcpData {
            seq: r.read_u64()?,
            ts: SimTime::from_nanos(r.read_u64()?),
            ts_echo: SimTime::from_nanos(r.read_u64()?),
        },
        1 => PacketKind::TcpAck {
            ack: r.read_u64()?,
            ts: SimTime::from_nanos(r.read_u64()?),
            ts_echo: SimTime::from_nanos(r.read_u64()?),
        },
        2 => PacketKind::Udp,
        3 => PacketKind::ProbeDupAck {
            count: r.read_u8()?,
        },
        4 => PacketKind::Pushback(read_control_msg(r)?),
        tag => return Err(SnapError::Malformed(format!("packet-kind tag {tag}"))),
    })
}

pub(crate) fn snap_packet(packet: &Packet, w: &mut SnapWriter) {
    w.write_u64(packet.id);
    snap_flow_key(&packet.key, w);
    snap_packet_kind(&packet.kind, w);
    w.write_u32(packet.size_bytes);
    w.write_u64(packet.created_at.as_nanos());
    w.write_u32(packet.provenance.origin.0);
    w.write_bool(packet.provenance.is_attack);
    w.write_u8(packet.hops);
}

pub(crate) fn read_packet(r: &mut SnapReader<'_>) -> Result<Packet, SnapError> {
    Ok(Packet {
        id: r.read_u64()?,
        key: read_flow_key(r)?,
        kind: read_packet_kind(r)?,
        size_bytes: r.read_u32()?,
        created_at: SimTime::from_nanos(r.read_u64()?),
        provenance: Provenance {
            origin: AgentId(r.read_u32()?),
            is_attack: r.read_bool()?,
        },
        hops: r.read_u8()?,
    })
}

pub(crate) fn snap_drop_reason(reason: DropReason, w: &mut SnapWriter) {
    w.write_u8(match reason {
        DropReason::QueueFull => 0,
        DropReason::NoRoute => 1,
        DropReason::HopLimit => 2,
        DropReason::FilterProbing => 3,
        DropReason::FilterPermanent => 4,
        DropReason::FilterIllegalSource => 5,
        DropReason::FilterProportional => 6,
        DropReason::FilterRateLimit => 7,
        DropReason::FilterOther => 8,
    });
}

pub(crate) fn read_drop_reason(r: &mut SnapReader<'_>) -> Result<DropReason, SnapError> {
    Ok(match r.read_u8()? {
        0 => DropReason::QueueFull,
        1 => DropReason::NoRoute,
        2 => DropReason::HopLimit,
        3 => DropReason::FilterProbing,
        4 => DropReason::FilterPermanent,
        5 => DropReason::FilterIllegalSource,
        6 => DropReason::FilterProportional,
        7 => DropReason::FilterRateLimit,
        8 => DropReason::FilterOther,
        tag => return Err(SnapError::Malformed(format!("drop-reason tag {tag}"))),
    })
}

/// Folds one packet's full contents into `h` (run-ledger encoding).
pub fn hash_packet(packet: &Packet, h: &mut mafic_obs::Fnv64) {
    use mafic_obs::StateHash as _;
    h.write_u64(packet.id);
    packet.key.hash_state(h);
    packet.kind.hash_state(h);
    h.write_u32(packet.size_bytes);
    h.write_u64(packet.created_at.as_nanos());
    h.write_u32(packet.provenance.origin.0);
    h.write_bool(packet.provenance.is_attack);
    h.write_u8(packet.hops);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::new(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(10, 9, 0, 1),
            1234,
            80,
        )
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.src, k.dst);
        assert_eq!(r.dst, k.src);
        assert_eq!(r.src_port, k.dst_port);
        assert_eq!(r.dst_port, k.src_port);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn words_distinguish_flows() {
        let a = key().as_words();
        let mut other = key();
        other.src_port = 1235;
        assert_ne!(a, other.as_words());
    }

    #[test]
    fn kind_predicates() {
        let data = PacketKind::TcpData {
            seq: 0,
            ts: SimTime::ZERO,
            ts_echo: SimTime::ZERO,
        };
        let ack = PacketKind::TcpAck {
            ack: 0,
            ts: SimTime::ZERO,
            ts_echo: SimTime::ZERO,
        };
        assert!(data.is_tcp() && data.is_tcp_data());
        assert!(ack.is_tcp() && !ack.is_tcp_data());
        assert!(!PacketKind::Udp.is_tcp());
        assert!(PacketKind::ProbeDupAck { count: 3 }.is_probe());
        let push = PacketKind::Pushback(ControlMsg::new(
            RequesterId::new(Addr::new(9)),
            1,
            ControlVerb::Refresh {
                victim: Addr::new(7),
                budget: 2,
            },
        ));
        assert!(push.is_pushback());
        assert!(!push.is_tcp() && !push.is_probe());
        assert!(!PacketKind::Udp.is_pushback());
    }

    #[test]
    fn drop_reason_classification() {
        assert!(DropReason::FilterProbing.is_filter_drop());
        assert!(DropReason::FilterPermanent.is_filter_drop());
        assert!(!DropReason::QueueFull.is_filter_drop());
        assert!(!DropReason::NoRoute.is_filter_drop());
    }

    #[test]
    fn display_formats() {
        assert_eq!(key().to_string(), "10.0.0.1:1234->10.9.0.1:80");
        assert_eq!(DropReason::QueueFull.to_string(), "queue-full");
    }

    #[test]
    fn snap_codecs_round_trip() {
        let kinds = [
            PacketKind::TcpData {
                seq: 7,
                ts: SimTime::from_nanos(11),
                ts_echo: SimTime::from_nanos(13),
            },
            PacketKind::TcpAck {
                ack: 9,
                ts: SimTime::from_nanos(17),
                ts_echo: SimTime::ZERO,
            },
            PacketKind::Udp,
            PacketKind::ProbeDupAck { count: 3 },
            PacketKind::Pushback(ControlMsg::new(
                RequesterId::new(Addr::new(9)),
                42,
                ControlVerb::Deny {
                    victim: Addr::new(7),
                    reason: DenyReason::Uncorroborated,
                },
            )),
        ];
        for (i, kind) in kinds.iter().enumerate() {
            let packet = Packet {
                id: 100 + i as u64,
                key: key(),
                kind: *kind,
                size_bytes: 500,
                created_at: SimTime::from_nanos(999),
                provenance: Provenance {
                    origin: AgentId(3),
                    is_attack: i % 2 == 0,
                },
                hops: 5,
            };
            let mut w = SnapWriter::new();
            snap_packet(&packet, &mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            assert_eq!(read_packet(&mut r).unwrap(), packet);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn snap_codec_rejects_unknown_tags() {
        let mut w = SnapWriter::new();
        w.write_u8(200);
        let bytes = w.into_bytes();
        assert!(matches!(
            read_drop_reason(&mut SnapReader::new(&bytes)),
            Err(SnapError::Malformed(_))
        ));
        assert!(matches!(
            read_packet_kind(&mut SnapReader::new(&bytes)),
            Err(SnapError::Malformed(_))
        ));
        assert!(matches!(
            read_control_verb(&mut SnapReader::new(&bytes)),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn hop_limit() {
        let mut p = Packet {
            id: 1,
            key: key(),
            kind: PacketKind::Udp,
            size_bytes: 500,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        };
        assert!(!p.hop_limit_exceeded());
        p.hops = Packet::MAX_HOPS;
        assert!(p.hop_limit_exceeded());
    }
}
