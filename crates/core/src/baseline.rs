//! The proportional-dropping baseline.
//!
//! The authors' earlier set-union-counting pushback work dropped *all*
//! victim-bound packets — legitimate or malicious — with the same
//! probability. MAFIC's motivation is the collateral damage this causes;
//! the baseline is implemented behind the same [`DropPolicy`] surface so
//! every experiment can be re-run with either policy.

use mafic_netsim::{
    Addr, DropReason, FilterAction, FilterControl, FilterCtx, FlowId, FlowSlab, Packet, PacketEnv,
    PacketFilter, StatNote,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;

/// Marker for which drop policy a filter implements (used by reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropPolicy {
    /// MAFIC adaptive dropping with probing.
    Mafic,
    /// Uniform proportional dropping of all victim-bound packets.
    Proportional,
}

impl std::fmt::Display for DropPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropPolicy::Mafic => f.write_str("MAFIC"),
            DropPolicy::Proportional => f.write_str("proportional"),
        }
    }
}

/// Uniform proportional dropper (the `[2]` baseline).
#[derive(Debug)]
pub struct ProportionalFilter {
    drop_probability: f64,
    rng: SmallRng,
    active: Option<Addr>,
    examined: u64,
    dropped: u64,
    /// Per-flow drop counts, indexed densely by the interned [`FlowId`]
    /// (collateral-damage diagnostics without any per-packet hashing).
    per_flow_dropped: FlowSlab<u64>,
}

impl ProportionalFilter {
    /// Creates an inactive proportional dropper.
    ///
    /// # Panics
    ///
    /// Panics if `drop_probability` is outside `[0, 1]`.
    #[must_use]
    pub fn new(drop_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability {drop_probability} out of [0, 1]"
        );
        ProportionalFilter {
            drop_probability,
            rng: SmallRng::seed_from_u64(seed),
            active: None,
            examined: 0,
            dropped: 0,
            per_flow_dropped: FlowSlab::new(),
        }
    }

    /// True while a pushback request is in force.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Packets examined while active.
    #[must_use]
    pub fn examined(&self) -> u64 {
        self.examined
    }

    /// Packets dropped.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets dropped for one flow.
    #[must_use]
    pub fn dropped_for(&self, flow: FlowId) -> u64 {
        self.per_flow_dropped.get(flow).copied().unwrap_or(0)
    }

    /// Number of distinct flows that lost at least one packet.
    #[must_use]
    pub fn flows_hit(&self) -> usize {
        self.per_flow_dropped.len()
    }

    /// Approximate per-flow state held by this filter, in bytes: one
    /// slab slot per flow that lost a packet (drop diagnostics only —
    /// the policy itself keeps no classification state).
    #[must_use]
    pub fn approx_state_bytes(&self) -> usize {
        self.per_flow_dropped.len() * std::mem::size_of::<Option<u64>>()
    }

    /// Activates the defense for `victim`.
    pub fn activate(&mut self, victim: Addr) {
        self.active = Some(victim);
    }

    /// Deactivates the defense.
    pub fn deactivate(&mut self) {
        self.active = None;
    }
}

impl mafic_obs::StateHash for ProportionalFilter {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        // The RNG is excluded (no state accessor); its draws are pinned
        // indirectly by the drop counters below.
        h.write_f64(self.drop_probability);
        match self.active {
            None => h.write_u8(0),
            Some(victim) => {
                h.write_u8(1);
                h.write_u32(victim.as_u32());
            }
        }
        h.write_u64(self.examined);
        h.write_u64(self.dropped);
        h.write_usize(self.per_flow_dropped.len());
        for (id, count) in self.per_flow_dropped.iter() {
            h.write_usize(id.index());
            h.write_u64(*count);
        }
    }
}

impl PacketFilter for ProportionalFilter {
    fn on_packet(
        &mut self,
        packet: &Packet,
        env: &PacketEnv,
        ctx: &mut FilterCtx<'_>,
    ) -> FilterAction {
        let Some(victim) = self.active else {
            return FilterAction::Forward;
        };
        if packet.key.dst != victim {
            return FilterAction::Forward;
        }
        self.examined += 1;
        ctx.note(StatNote::AtrSeen, Some(packet));
        if self.rng.gen::<f64>() < self.drop_probability {
            self.dropped += 1;
            match self.per_flow_dropped.get_mut(env.flow) {
                Some(count) => *count += 1,
                None => {
                    self.per_flow_dropped.insert(env.flow, 1);
                }
            }
            FilterAction::Drop(DropReason::FilterProportional)
        } else {
            FilterAction::Forward
        }
    }

    fn on_control(&mut self, msg: &FilterControl, _ctx: &mut FilterCtx<'_>) {
        match msg {
            FilterControl::PushbackStart { victim } => self.activate(*victim),
            FilterControl::PushbackStop => self.deactivate(),
        }
    }

    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        for word in self.rng.state() {
            w.write_u64(word);
        }
        match self.active {
            None => w.write_u8(0),
            Some(victim) => {
                w.write_u8(1);
                w.write_u32(victim.as_u32());
            }
        }
        w.write_u64(self.examined);
        w.write_u64(self.dropped);
        w.write_usize(self.per_flow_dropped.len());
        for (id, &count) in self.per_flow_dropped.iter() {
            w.write_usize(id.index());
            w.write_u64(count);
        }
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        let state = [r.read_u64()?, r.read_u64()?, r.read_u64()?, r.read_u64()?];
        self.rng = SmallRng::from_state(state);
        self.active = match r.read_u8()? {
            0 => None,
            1 => Some(Addr::new(r.read_u32()?)),
            tag => {
                return Err(mafic_obs::SnapError::Malformed(format!(
                    "proportional-active tag {tag}"
                )))
            }
        };
        self.examined = r.read_u64()?;
        self.dropped = r.read_u64()?;
        let n = r.read_usize()?;
        self.per_flow_dropped = FlowSlab::new();
        for _ in 0..n {
            let id = FlowId::from_index(r.read_usize()?);
            let count = r.read_u64()?;
            self.per_flow_dropped.insert(id, count);
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::FilterHarness;
    use mafic_netsim::{FlowKey, PacketKind, Provenance, SimTime};

    const VICTIM: Addr = Addr::new(0x0AC8_0001);

    fn pkt(dst: Addr) -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(Addr::from_octets(10, 1, 0, 1), dst, 5, 80),
            kind: PacketKind::Udp,
            size_bytes: 500,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn inactive_forwards() {
        let mut h = FilterHarness::new();
        let mut f = ProportionalFilter::new(1.0, 1);
        let fx = h.offer_transit(&mut f, &pkt(VICTIM));
        assert_eq!(fx.action, Some(FilterAction::Forward));
    }

    #[test]
    fn drops_victim_bound_at_rate() {
        let mut h = FilterHarness::new();
        let mut f = ProportionalFilter::new(0.9, 7);
        f.activate(VICTIM);
        let mut drops = 0;
        for _ in 0..1000 {
            match h.offer_transit(&mut f, &pkt(VICTIM)).action {
                Some(FilterAction::Drop(DropReason::FilterProportional)) => drops += 1,
                Some(FilterAction::Forward) => {}
                other => panic!("unexpected verdict {other:?}"),
            }
        }
        assert!(
            (850..=950).contains(&drops),
            "≈90% of 1000 packets expected, got {drops}"
        );
        assert_eq!(f.examined(), 1000);
        assert_eq!(f.dropped(), drops);
    }

    #[test]
    fn other_destinations_untouched() {
        let mut h = FilterHarness::new();
        let mut f = ProportionalFilter::new(1.0, 1);
        f.activate(VICTIM);
        let fx = h.offer_transit(&mut f, &pkt(Addr::from_octets(10, 1, 0, 9)));
        assert_eq!(fx.action, Some(FilterAction::Forward));
        assert_eq!(f.examined(), 0);
    }

    #[test]
    fn control_messages_toggle() {
        let mut h = FilterHarness::new();
        let mut f = ProportionalFilter::new(1.0, 1);
        let _ = h.control(&mut f, &FilterControl::PushbackStart { victim: VICTIM });
        assert!(f.is_active());
        let _ = h.control(&mut f, &FilterControl::PushbackStop);
        assert!(!f.is_active());
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn probability_validated() {
        let _ = ProportionalFilter::new(1.5, 1);
    }

    #[test]
    fn policy_display() {
        assert_eq!(DropPolicy::Mafic.to_string(), "MAFIC");
        assert_eq!(DropPolicy::Proportional.to_string(), "proportional");
    }

    #[test]
    fn snapshot_round_trips_rng_mid_stream() {
        let mut h = FilterHarness::new();
        let mut f = ProportionalFilter::new(0.5, 7);
        f.activate(VICTIM);
        for _ in 0..50 {
            let _ = h.offer_transit(&mut f, &pkt(VICTIM));
        }
        let mut w = mafic_obs::SnapWriter::new();
        f.snap_save(&mut w);
        let bytes = w.into_bytes();

        // A different seed proves the restored RNG words drive the
        // continuation, not the constructor seed.
        let mut g = ProportionalFilter::new(0.5, 999);
        let mut r = mafic_obs::SnapReader::new(&bytes);
        g.snap_restore(&mut r).expect("restore");
        assert!(r.is_empty());
        assert_eq!(g.examined(), 50);
        assert_eq!(g.dropped(), f.dropped());
        let mut h2 = FilterHarness::new();
        for _ in 0..50 {
            let fx = h.offer_transit(&mut f, &pkt(VICTIM));
            let gx = h2.offer_transit(&mut g, &pkt(VICTIM));
            assert_eq!(fx.action, gx.action);
        }
        assert_eq!(f.dropped(), g.dropped());
    }
}
