//! The victim-host endpoint: a demultiplexing sink for every flow aimed
//! at the victim address.
//!
//! A single agent is bound to the victim address, so it must keep
//! per-flow receiver state: TCP flows get cumulative ACKs (making the
//! senders' congestion control — and MAFIC's probing — work end to end),
//! UDP floods are merely counted and absorbed.

use mafic_netsim::{Agent, AgentCtx, FlowKey, FlowSlab, Packet, PacketKind, Provenance, SimTime};
use std::any::Any;
use std::collections::BTreeSet;

#[derive(Debug, Default)]
struct FlowState {
    rcv_next: u64,
    out_of_order: BTreeSet<u64>,
}

/// A sink absorbing every flow addressed to the victim.
///
/// Per-flow receiver state is a dense [`FlowSlab`] indexed by the
/// interned flow id the simulator delivers with each packet
/// ([`AgentCtx::packet_flow`]) — under a many-flow flood the per-segment
/// cost is one array probe, not a 4-tuple hash.
#[derive(Debug)]
pub struct VictimSink {
    ack_size: u32,
    tcp_flows: FlowSlab<FlowState>,
    tcp_segments: u64,
    udp_datagrams: u64,
    acks_sent: u64,
    /// Cap on tracked TCP flows (memory bound under SYN-flood-like load).
    max_flows: usize,
}

impl VictimSink {
    /// Creates a sink. `max_flows` bounds per-flow receiver state.
    ///
    /// # Panics
    ///
    /// Panics if `max_flows` is zero.
    #[must_use]
    pub fn new(ack_size: u32, max_flows: usize) -> Self {
        assert!(max_flows > 0, "max_flows must be positive");
        VictimSink {
            ack_size,
            tcp_flows: FlowSlab::new(),
            tcp_segments: 0,
            udp_datagrams: 0,
            acks_sent: 0,
            max_flows,
        }
    }

    /// TCP segments received across all flows.
    #[must_use]
    pub fn tcp_segments(&self) -> u64 {
        self.tcp_segments
    }

    /// UDP datagrams absorbed.
    #[must_use]
    pub fn udp_datagrams(&self) -> u64 {
        self.udp_datagrams
    }

    /// ACKs generated.
    #[must_use]
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Distinct TCP flows currently tracked.
    #[must_use]
    pub fn tracked_flows(&self) -> usize {
        self.tcp_flows.len()
    }

    fn ack(&mut self, key: FlowKey, ack: u64, ts_echo: SimTime, ctx: &mut AgentCtx<'_>) {
        let pkt = Packet {
            id: ctx.fresh_packet_id(),
            key: key.reversed(),
            kind: PacketKind::TcpAck {
                ack,
                ts: ctx.now(),
                ts_echo,
            },
            size_bytes: self.ack_size,
            created_at: ctx.now(),
            provenance: Provenance {
                origin: ctx.agent_id(),
                is_attack: false,
            },
            hops: 0,
        };
        ctx.send_packet(pkt);
        self.acks_sent += 1;
    }
}

impl Default for VictimSink {
    /// 40-byte ACKs, 16 384 tracked flows.
    fn default() -> Self {
        VictimSink::new(40, 16 * 1024)
    }
}

impl Agent for VictimSink {
    fn on_start(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        match packet.kind {
            PacketKind::TcpData { seq, ts, .. } => {
                self.tcp_segments += 1;
                let flow = ctx
                    .packet_flow()
                    .expect("on_packet always carries a flow id");
                if !self.tcp_flows.contains(flow) {
                    if self.tcp_flows.len() >= self.max_flows {
                        // State exhausted: absorb without acknowledging, as
                        // a real server under SYN-flood state pressure
                        // would.
                        return;
                    }
                    self.tcp_flows.insert(flow, FlowState::default());
                }
                let state = self.tcp_flows.get_mut(flow).expect("just ensured");
                if seq == state.rcv_next {
                    state.rcv_next += 1;
                    while state.out_of_order.remove(&state.rcv_next) {
                        state.rcv_next += 1;
                    }
                } else if seq > state.rcv_next {
                    state.out_of_order.insert(seq);
                }
                let ack = state.rcv_next;
                self.ack(packet.key, ack, ts, ctx);
            }
            PacketKind::Udp => {
                self.udp_datagrams += 1;
            }
            PacketKind::TcpAck { .. }
            | PacketKind::ProbeDupAck { .. }
            | PacketKind::Pushback(_) => {}
        }
    }

    fn snap_save(&self, w: &mut mafic_netsim::SnapWriter) {
        w.write_usize(self.tcp_flows.len());
        for (flow, state) in self.tcp_flows.iter() {
            w.write_usize(flow.index());
            w.write_u64(state.rcv_next);
            w.write_usize(state.out_of_order.len());
            for &seq in &state.out_of_order {
                w.write_u64(seq);
            }
        }
        w.write_u64(self.tcp_segments);
        w.write_u64(self.udp_datagrams);
        w.write_u64(self.acks_sent);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_netsim::SnapReader<'_>,
    ) -> Result<(), mafic_netsim::SnapError> {
        let n = r.read_usize()?;
        self.tcp_flows = FlowSlab::new();
        for _ in 0..n {
            let flow = mafic_netsim::FlowId::from_index(r.read_usize()?);
            let rcv_next = r.read_u64()?;
            let mut out_of_order = BTreeSet::new();
            for _ in 0..r.read_usize()? {
                out_of_order.insert(r.read_u64()?);
            }
            self.tcp_flows.insert(
                flow,
                FlowState {
                    rcv_next,
                    out_of_order,
                },
            );
        }
        self.tcp_segments = r.read_u64()?;
        self.udp_datagrams = r.read_u64()?;
        self.acks_sent = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::AgentHarness;
    use mafic_netsim::Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Addr::from_octets(10, 1, 0, 1),
            Addr::from_octets(10, 200, 0, 1),
            port,
            80,
        )
    }

    fn data(port: u16, seq: u64, now: SimTime) -> Packet {
        Packet {
            id: u64::from(port) * 1000 + seq,
            key: key(port),
            kind: PacketKind::TcpData {
                seq,
                ts: now,
                ts_echo: SimTime::ZERO,
            },
            size_bytes: 500,
            created_at: now,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    fn udp(port: u16) -> Packet {
        Packet {
            id: u64::from(port),
            key: key(port),
            kind: PacketKind::Udp,
            size_bytes: 500,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn tracks_flows_independently() {
        let mut h = AgentHarness::new();
        let mut s = VictimSink::default();
        let fx1 = h.deliver(&mut s, data(1, 0, h.now));
        let fx2 = h.deliver(&mut s, data(2, 0, h.now));
        assert_eq!(s.tracked_flows(), 2);
        assert_eq!(fx1.sent.len(), 1);
        assert_eq!(fx2.sent.len(), 1);
        // Both ACK seq 1 on their own reverse keys.
        assert_eq!(fx1.sent[0].key, key(1).reversed());
        assert_eq!(fx2.sent[0].key, key(2).reversed());
    }

    #[test]
    fn cumulative_ack_per_flow() {
        let mut h = AgentHarness::new();
        let mut s = VictimSink::default();
        let _ = h.deliver(&mut s, data(1, 0, h.now));
        let fx = h.deliver(&mut s, data(1, 2, h.now)); // gap
        match fx.sent[0].kind {
            PacketKind::TcpAck { ack, .. } => assert_eq!(ack, 1, "dup ack on gap"),
            ref k => panic!("expected ack, got {k:?}"),
        }
        let fx = h.deliver(&mut s, data(1, 1, h.now)); // fill
        match fx.sent[0].kind {
            PacketKind::TcpAck { ack, .. } => assert_eq!(ack, 3),
            ref k => panic!("expected ack, got {k:?}"),
        }
    }

    #[test]
    fn udp_is_absorbed_silently() {
        let mut h = AgentHarness::new();
        let mut s = VictimSink::default();
        let fx = h.deliver(&mut s, udp(9));
        assert!(fx.sent.is_empty());
        assert_eq!(s.udp_datagrams(), 1);
        assert_eq!(s.tracked_flows(), 0);
    }

    #[test]
    fn flow_cap_stops_new_state_not_existing() {
        let mut h = AgentHarness::new();
        let mut s = VictimSink::new(40, 2);
        let _ = h.deliver(&mut s, data(1, 0, h.now));
        let _ = h.deliver(&mut s, data(2, 0, h.now));
        let fx3 = h.deliver(&mut s, data(3, 0, h.now));
        assert!(fx3.sent.is_empty(), "no ACK once state exhausted");
        assert_eq!(s.tracked_flows(), 2);
        // Existing flows keep working.
        let fx1 = h.deliver(&mut s, data(1, 1, h.now));
        assert_eq!(fx1.sent.len(), 1);
    }

    #[test]
    fn acks_and_probes_are_ignored() {
        let mut h = AgentHarness::new();
        let mut s = VictimSink::default();
        let probe = Packet {
            id: 5,
            key: key(1),
            kind: PacketKind::ProbeDupAck { count: 3 },
            size_bytes: 40,
            created_at: h.now,
            provenance: Provenance::infrastructure(),
            hops: 0,
        };
        let fx = h.deliver(&mut s, probe);
        assert!(fx.sent.is_empty());
        assert_eq!(s.acks_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "max_flows must be positive")]
    fn zero_cap_rejected() {
        let _ = VictimSink::new(40, 0);
    }
}
