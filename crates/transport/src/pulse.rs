//! Pulsing (on/off) attack senders — the shrew-style adversary the
//! paper's HAWK reference targets, and a known blind spot of
//! probe-based classification.
//!
//! A [`PulsedSender`] alternates between a high-rate burst phase and a
//! silent phase. If the silent phase happens to cover MAFIC's 2×RTT
//! probation window, the flow's arrival rate *does* decrease after the
//! probe and the zombie is declared nice — a structural false negative
//! the paper leaves to future work. The workspace `pulse_evasion`
//! integration tests demonstrate the evasion and the `nft_revalidate_after`
//! counter-measure.

use mafic_netsim::{
    Agent, AgentCtx, FlowKey, Packet, PacketKind, Provenance, SimDuration, SimTime,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;

/// Tunables for [`PulsedSender`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseConfig {
    /// Sending rate during the burst phase (packets/s).
    pub burst_rate_pps: f64,
    /// Burst phase length.
    pub burst_len: SimDuration,
    /// Silent phase length.
    pub idle_len: SimDuration,
    /// Packet size in bytes.
    pub packet_size: u32,
    /// Random phase offset applied to the first burst (fraction of the
    /// full period, `0.0..1.0` sampled per seed) so a fleet of pulsers
    /// does not synchronize.
    pub randomize_phase: bool,
}

impl Default for PulseConfig {
    fn default() -> Self {
        PulseConfig {
            burst_rate_pps: 2_000.0,
            burst_len: SimDuration::from_millis(150),
            idle_len: SimDuration::from_millis(350),
            packet_size: 500,
            randomize_phase: true,
        }
    }
}

impl PulseConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.burst_rate_pps.is_finite() && self.burst_rate_pps > 0.0) {
            return Err("burst_rate_pps must be positive".into());
        }
        if self.burst_len.is_zero() {
            return Err("burst_len must be positive".into());
        }
        if self.packet_size == 0 {
            return Err("packet_size must be positive".into());
        }
        Ok(())
    }

    /// The full on+off period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.burst_len + self.idle_len
    }

    /// Average rate over a full period (packets/s).
    #[must_use]
    pub fn mean_rate_pps(&self) -> f64 {
        let period = self.period().as_secs_f64();
        if period == 0.0 {
            return 0.0;
        }
        self.burst_rate_pps * self.burst_len.as_secs_f64() / period
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Bursting,
    Idle,
}

/// An on/off zombie: floods during bursts, vanishes in between, and
/// ignores all feedback (ACKs and probes alike).
#[derive(Debug)]
pub struct PulsedSender {
    key: FlowKey,
    config: PulseConfig,
    rng: SmallRng,
    phase: Phase,
    seq: u64,
    sent: u64,
    bursts_completed: u64,
    stop_after: Option<SimTime>,
    timer_token: u64,
    burst_deadline: Option<SimTime>,
}

impl PulsedSender {
    /// Creates a pulsing sender for `key` (always an attack flow).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — a configuration bug.
    #[must_use]
    pub fn new(key: FlowKey, config: PulseConfig, seed: u64) -> Self {
        config.validate().expect("invalid PulseConfig");
        PulsedSender {
            key,
            config,
            rng: SmallRng::seed_from_u64(seed),
            phase: Phase::Idle,
            seq: 0,
            sent: 0,
            bursts_completed: 0,
            stop_after: None,
            timer_token: 0,
            burst_deadline: None,
        }
    }

    /// Stops transmitting after the given instant.
    pub fn set_stop_after(&mut self, at: SimTime) {
        self.stop_after = Some(at);
    }

    /// Packets transmitted.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Completed burst phases.
    #[must_use]
    pub fn bursts_completed(&self) -> u64 {
        self.bursts_completed
    }

    fn stopped(&self, now: SimTime) -> bool {
        self.stop_after.is_some_and(|t| now >= t)
    }

    fn send_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.config.burst_rate_pps)
    }

    fn emit(&mut self, ctx: &mut AgentCtx<'_>) {
        let pkt = Packet {
            id: ctx.fresh_packet_id(),
            key: self.key,
            kind: PacketKind::Udp,
            size_bytes: self.config.packet_size,
            created_at: ctx.now(),
            provenance: Provenance {
                origin: ctx.agent_id(),
                is_attack: true,
            },
            hops: 0,
        };
        ctx.send_packet(pkt);
        self.seq += 1;
        self.sent += 1;
    }

    fn arm(&mut self, delay: SimDuration, ctx: &mut AgentCtx<'_>) {
        self.timer_token += 1;
        ctx.schedule_in(delay, self.timer_token);
    }
}

impl Agent for PulsedSender {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        let offset = if self.config.randomize_phase {
            self.config.period().mul_f64(self.rng.gen::<f64>())
        } else {
            SimDuration::ZERO
        };
        self.phase = Phase::Idle;
        // The first timer flips us into the burst phase after the offset.
        self.arm(offset, ctx);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut AgentCtx<'_>) {
        // Unresponsive by design.
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_>) {
        if token != self.timer_token || self.stopped(ctx.now()) {
            return;
        }
        match self.phase {
            Phase::Idle => {
                // Enter a burst: send immediately and schedule the stream.
                self.phase = Phase::Bursting;
                self.emit(ctx);
                self.arm(self.send_interval(), ctx);
                // Remember when this burst must end.
                self.burst_deadline = Some(ctx.now() + self.config.burst_len);
            }
            Phase::Bursting => {
                if self
                    .burst_deadline
                    .is_some_and(|deadline| ctx.now() >= deadline)
                {
                    self.phase = Phase::Idle;
                    self.bursts_completed += 1;
                    self.burst_deadline = None;
                    self.arm(self.config.idle_len, ctx);
                } else {
                    self.emit(ctx);
                    self.arm(self.send_interval(), ctx);
                }
            }
        }
    }

    fn snap_save(&self, w: &mut mafic_netsim::SnapWriter) {
        for word in self.rng.state() {
            w.write_u64(word);
        }
        w.write_u8(match self.phase {
            Phase::Bursting => 0,
            Phase::Idle => 1,
        });
        w.write_u64(self.seq);
        w.write_u64(self.sent);
        w.write_u64(self.bursts_completed);
        match self.stop_after {
            None => w.write_u8(0),
            Some(t) => {
                w.write_u8(1);
                w.write_u64(t.as_nanos());
            }
        }
        w.write_u64(self.timer_token);
        match self.burst_deadline {
            None => w.write_u8(0),
            Some(t) => {
                w.write_u8(1);
                w.write_u64(t.as_nanos());
            }
        }
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_netsim::SnapReader<'_>,
    ) -> Result<(), mafic_netsim::SnapError> {
        let state = [r.read_u64()?, r.read_u64()?, r.read_u64()?, r.read_u64()?];
        self.rng = SmallRng::from_state(state);
        self.phase = match r.read_u8()? {
            0 => Phase::Bursting,
            1 => Phase::Idle,
            tag => {
                return Err(mafic_netsim::SnapError::Malformed(format!(
                    "pulse-phase tag {tag}"
                )))
            }
        };
        self.seq = r.read_u64()?;
        self.sent = r.read_u64()?;
        self.bursts_completed = r.read_u64()?;
        self.stop_after = match r.read_u8()? {
            0 => None,
            1 => Some(SimTime::from_nanos(r.read_u64()?)),
            tag => {
                return Err(mafic_netsim::SnapError::Malformed(format!(
                    "stop-after tag {tag}"
                )))
            }
        };
        self.timer_token = r.read_u64()?;
        self.burst_deadline = match r.read_u8()? {
            0 => None,
            1 => Some(SimTime::from_nanos(r.read_u64()?)),
            tag => {
                return Err(mafic_netsim::SnapError::Malformed(format!(
                    "burst-deadline tag {tag}"
                )))
            }
        };
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::AgentHarness;
    use mafic_netsim::Addr;

    fn key() -> FlowKey {
        FlowKey::new(
            Addr::from_octets(10, 2, 0, 1),
            Addr::from_octets(10, 200, 0, 1),
            7000,
            80,
        )
    }

    fn config() -> PulseConfig {
        PulseConfig {
            burst_rate_pps: 100.0,
            burst_len: SimDuration::from_millis(100),
            idle_len: SimDuration::from_millis(100),
            packet_size: 500,
            randomize_phase: false,
        }
    }

    #[test]
    fn mean_rate_reflects_duty_cycle() {
        let c = config();
        // 50% duty cycle at 100 pps => 50 pps mean.
        assert!((c.mean_rate_pps() - 50.0).abs() < 1e-9);
        assert_eq!(c.period(), SimDuration::from_millis(200));
    }

    #[test]
    fn alternates_between_phases() {
        let mut h = AgentHarness::new();
        let mut s = PulsedSender::new(key(), config(), 3);
        let fx = h.start(&mut s);
        assert!(fx.sent.is_empty(), "idle until the phase timer");
        let mut token = fx.timers[0].1;
        let mut total_sent = 0usize;
        // Drive 100 timer firings and verify bursts complete.
        for _ in 0..100 {
            h.advance(SimDuration::from_millis(10));
            let fx = h.fire_timer(&mut s, token);
            total_sent += fx.sent.len();
            if let Some(&(_, t)) = fx.timers.first() {
                token = t;
            }
        }
        assert!(total_sent > 0);
        assert!(s.bursts_completed() > 0, "bursts must cycle");
    }

    #[test]
    fn ignores_probes() {
        let mut h = AgentHarness::new();
        let mut s = PulsedSender::new(key(), config(), 3);
        let _ = h.start(&mut s);
        let probe = Packet {
            id: 1,
            key: key().reversed(),
            kind: PacketKind::ProbeDupAck { count: 3 },
            size_bytes: 40,
            created_at: h.now,
            provenance: Provenance::infrastructure(),
            hops: 0,
        };
        let fx = h.deliver(&mut s, probe);
        assert!(fx.sent.is_empty());
    }

    #[test]
    fn stop_after_ends_the_pulse_train() {
        let mut h = AgentHarness::new();
        let mut s = PulsedSender::new(key(), config(), 3);
        let fx = h.start(&mut s);
        s.set_stop_after(SimTime::ZERO);
        h.advance(SimDuration::from_millis(10));
        let fx2 = h.fire_timer(&mut s, fx.timers[0].1);
        assert!(fx2.sent.is_empty());
        assert!(fx2.timers.is_empty());
    }

    #[test]
    fn config_validation() {
        assert!(PulseConfig {
            burst_rate_pps: 0.0,
            ..config()
        }
        .validate()
        .is_err());
        assert!(PulseConfig {
            burst_len: SimDuration::ZERO,
            ..config()
        }
        .validate()
        .is_err());
        assert!(PulseConfig {
            packet_size: 0,
            ..config()
        }
        .validate()
        .is_err());
        assert!(config().validate().is_ok());
    }
}
