//! Regenerates Tables I and II plus a measured default-configuration run.

use mafic_experiments::{tables, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    print!("{}", tables::table_i());
    println!();
    print!("{}", tables::table_ii());
    println!();
    match tables::default_run_summary(&cfg) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
