//! `mafic_trace` — run-ledger inspector.
//!
//! ```text
//! mafic_trace show <ledger.jsonl>            pretty-print a ledger
//! mafic_trace diff <left.jsonl> <right.jsonl>  first diverging interval/component
//! mafic_trace tail <ledger.jsonl> [n]        last n embedded trace events
//! ```
//!
//! `diff` exits 1 when the ledgers diverge (and prints each ledger's
//! embedded trace tail around the divergence point), 0 when identical,
//! 2 on usage or I/O errors — so CI can gate on it directly.

use mafic_obs::{diff_ledgers, Divergence, RunLedger};
use std::process::ExitCode;

fn load(path: &str) -> Result<RunLedger, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    RunLedger::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn show(ledger: &RunLedger) {
    let h = &ledger.header;
    println!(
        "ledger v{} · crate {} · seed {} · spec {:016x} · workers {}",
        h.ledger_version, h.crate_version, h.seed, h.spec_fingerprint, h.workers
    );
    println!(
        "{} components, {} counters, {} intervals, {} trace lines",
        ledger.components.len(),
        ledger.counters.len(),
        ledger.intervals.len(),
        ledger.trace_tail.len()
    );
    println!("components: {}", ledger.components.join(", "));
    if !ledger.counters.is_empty() {
        println!("counters:   {}", ledger.counters.join(", "));
    }
    for rec in &ledger.intervals {
        let mut line = format!(
            "interval {:>4} t={:>8.3}s",
            rec.index,
            rec.at_nanos as f64 / 1e9
        );
        for (name, hash) in ledger.components.iter().zip(&rec.hashes) {
            line.push_str(&format!("  {name}={hash:016x}"));
        }
        println!("{line}");
        if !rec.counters.is_empty() {
            let counters: Vec<String> = ledger
                .counters
                .iter()
                .zip(&rec.counters)
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            println!("              {}", counters.join(" "));
        }
    }
}

fn tail(ledger: &RunLedger, n: usize) {
    if ledger.trace_tail.is_empty() {
        println!("(no embedded trace — record the run with tracing enabled)");
        return;
    }
    let start = ledger.trace_tail.len().saturating_sub(n);
    for line in &ledger.trace_tail[start..] {
        println!("{line}");
    }
}

fn diff(left: &RunLedger, right: &RunLedger) -> ExitCode {
    let report = diff_ledgers(left, right);
    print!("{report}");
    if report.is_identical() {
        println!("({} intervals compared)", left.intervals.len());
        return ExitCode::SUCCESS;
    }
    if let Divergence::FirstDivergence { at_nanos, .. } = report.finding {
        // Show each side's trace tail around the divergence point so the
        // first wrong event is one read away.
        for (name, ledger) in [("left", left), ("right", right)] {
            let around: Vec<&String> = ledger
                .trace_tail
                .iter()
                .filter(|line| {
                    trace_line_nanos(line).is_none_or(|t| t <= at_nanos.saturating_add(1))
                })
                .collect();
            if !around.is_empty() {
                println!("--- {name} trace tail up to divergence ---");
                for line in around.iter().rev().take(16).rev() {
                    println!("{line}");
                }
            }
        }
    }
    ExitCode::FAILURE
}

/// Best-effort parse of the `t=<secs>` prefix the netsim trace renderer
/// emits; `None` keeps the line (unknown format beats a dropped clue).
fn trace_line_nanos(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("t=")?;
    let end = rest.find(|c: char| !c.is_ascii_digit() && c != '.')?;
    let secs: f64 = rest[..end].parse().ok()?;
    Some((secs * 1e9) as u64)
}

fn usage() -> ExitCode {
    eprintln!("usage: mafic_trace show <ledger.jsonl>");
    eprintln!("       mafic_trace diff <left.jsonl> <right.jsonl>");
    eprintln!("       mafic_trace tail <ledger.jsonl> [n]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("show") => match args.get(1) {
            Some(path) => load(path).map(|l| {
                show(&l);
                ExitCode::SUCCESS
            }),
            None => return usage(),
        },
        Some("tail") => match args.get(1) {
            Some(path) => {
                let n = args
                    .get(2)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or(32);
                load(path).map(|l| {
                    tail(&l, n);
                    ExitCode::SUCCESS
                })
            }
            None => return usage(),
        },
        Some("diff") => match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => match (load(a), load(b)) {
                (Ok(l), Ok(r)) => Ok(diff(&l, &r)),
                (Err(e), _) | (_, Err(e)) => Err(e),
            },
            _ => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("mafic_trace: {e}");
            ExitCode::from(2)
        }
    }
}
