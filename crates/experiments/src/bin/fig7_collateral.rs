//! Regenerates Fig. 7: legitimate-packet dropping rate.

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    match figures::fig7(&cfg) {
        Ok(fig) => println!("{fig}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
