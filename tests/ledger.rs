//! End-to-end fixtures for the run-ledger differ: real scenario runs,
//! deliberately perturbed, must produce a divergence report that names
//! the first diverging interval and component. These are the
//! integration-level twins of the unit fixtures in `mafic-obs` — they
//! prove the whole probe → ledger → differ chain over actual simulator
//! state, not hand-built records.

use mafic_suite::netsim::SimTime;
use mafic_suite::obs::{diff_ledgers, Divergence, RunLedger};
use mafic_suite::topology::TransitTopology;
use mafic_suite::workload::{run_spec, ScenarioSpec};

fn base_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 12,
        n_routers: 6,
        end: SimTime::from_secs_f64(2.5),
        ledger: true,
        trace_capacity: 32,
        seed,
        ..ScenarioSpec::default()
    }
}

fn ledger_of(spec: ScenarioSpec) -> RunLedger {
    run_spec(spec)
        .expect("run")
        .ledger
        .expect("spec sets ledger: true")
}

#[test]
fn identical_runs_diff_clean() {
    let a = ledger_of(base_spec(11));
    let b = ledger_of(base_spec(11));
    let report = diff_ledgers(&a, &b);
    assert!(report.is_identical(), "unexpected divergence:\n{report}");
    assert!(report.header_notes.is_empty(), "{:?}", report.header_notes);
}

#[test]
fn perturbed_seed_names_first_interval_and_component() {
    let a = ledger_of(base_spec(11));
    let b = ledger_of(base_spec(12));
    let report = diff_ledgers(&a, &b);
    assert!(
        report.header_notes.iter().any(|n| n.contains("seeds")),
        "seed note missing: {:?}",
        report.header_notes
    );
    let Divergence::FirstDivergence {
        ref component,
        left,
        right,
        ..
    } = report.finding
    else {
        panic!(
            "expected first-divergence finding, got {:?}",
            report.finding
        );
    };
    assert_ne!(left, right);
    assert!(
        a.components.contains(component) || component.starts_with("counter:"),
        "component {component:?} not in the recorded set"
    );
    // The rendered report must carry both coordinates a human needs.
    let text = report.to_string();
    assert!(text.contains("interval"), "{text}");
    assert!(text.contains(component.as_str()), "{text}");
}

/// Perturbing the control-plane trust budget must surface in a
/// pushback-layer component (the coordinator embeds its trust ledger in
/// its hash), not merely in end-of-run metrics.
#[test]
fn perturbed_trust_budget_diverges_in_a_domain_component() {
    let multi = |budget: u32| ScenarioSpec {
        domains: 3,
        transit_topology: TransitTopology::Chain { depth: 1 },
        pushback_depth: 2,
        end: SimTime::from_secs_f64(3.0),
        trust_budget: budget,
        ..base_spec(21)
    };
    let a = ledger_of(multi(ScenarioSpec::default().trust_budget));
    let b = ledger_of(multi(1));
    let report = diff_ledgers(&a, &b);
    let Divergence::FirstDivergence { ref component, .. } = report.finding else {
        panic!("expected divergence, got {:?}", report.finding);
    };
    assert!(
        component.contains("coord") || component.contains("trust"),
        "trust-budget perturbation surfaced in {component:?}, expected a \
         coordinator/trust component"
    );
}

#[test]
fn truncated_ledger_is_reported_after_clean_prefix() {
    let full = ledger_of(base_spec(11));
    assert!(
        full.intervals.len() >= 4,
        "fixture needs multiple intervals, got {}",
        full.intervals.len()
    );
    let mut cut = full.clone();
    cut.intervals.truncate(full.intervals.len() - 3);
    let report = diff_ledgers(&full, &cut);
    assert_eq!(
        report.finding,
        Divergence::Truncated {
            left_intervals: full.intervals.len() as u64,
            right_intervals: cut.intervals.len() as u64,
        },
        "shared prefix is identical, so the finding must be truncation"
    );
}

#[test]
fn ledger_round_trips_through_jsonl() {
    let ledger = ledger_of(base_spec(11));
    let text = ledger.to_jsonl();
    let parsed = RunLedger::from_jsonl(&text).expect("parse back");
    assert_eq!(parsed, ledger);
    // A second serialize of the parsed ledger reproduces the exact bytes.
    assert_eq!(parsed.to_jsonl(), text);
}
