//! The rule engine: token-stream rules for source files and a
//! section-aware dependency check for manifests.

use crate::config::{classify, FileClass, LintConfig};
use crate::lexer::{lex, Token, TokenKind};
use crate::report::{Finding, PragmaEntry, RuleId};

/// A banned token sequence (matched over code tokens only) plus the
/// canonical name reported for it.
struct BannedSeq {
    seq: &'static [&'static str],
    name: &'static str,
    why: &'static str,
}

/// The nondeterminism-source ban list. Longest sequences first so the
/// greedy matcher reports `std::time::Instant` once, not once per
/// suffix.
const NONDET_SEQS: &[BannedSeq] = &[
    BannedSeq {
        seq: &["std", ":", ":", "time", ":", ":", "Instant"],
        name: "std::time::Instant",
        why: "wall-clock reads differ across runs; simulated time only",
    },
    BannedSeq {
        seq: &["std", ":", ":", "time", ":", ":", "SystemTime"],
        name: "std::time::SystemTime",
        why: "wall-clock reads differ across runs; simulated time only",
    },
    BannedSeq {
        seq: &["Instant", ":", ":", "now"],
        name: "Instant::now",
        why: "wall-clock reads differ across runs; simulated time only",
    },
    BannedSeq {
        seq: &["SystemTime", ":", ":", "now"],
        name: "SystemTime::now",
        why: "wall-clock reads differ across runs; simulated time only",
    },
    BannedSeq {
        seq: &["std", ":", ":", "thread"],
        name: "std::thread",
        why: "scheduling order is nondeterministic; the experiments engine owns the only pool",
    },
    BannedSeq {
        seq: &["std", ":", ":", "env"],
        name: "std::env",
        why: "ambient environment makes replay depend on the shell; EngineConfig owns env parsing",
    },
    BannedSeq {
        seq: &["thread_rng"],
        name: "rand::thread_rng",
        why: "ambient OS-seeded RNG; all randomness must flow from the scenario seed",
    },
    BannedSeq {
        seq: &["rand", ":", ":", "random"],
        name: "rand::random",
        why: "ambient OS-seeded RNG; all randomness must flow from the scenario seed",
    },
    BannedSeq {
        seq: &["RandomState"],
        name: "RandomState",
        why: "per-process random hasher state; use FlowSlab/BTreeMap per the interning contract",
    },
    BannedSeq {
        seq: &["hash_map", ":", ":"],
        name: "hash_map::",
        why: "std hash containers iterate in RandomState order; clippy's type ban must not be dodged via module paths",
    },
    BannedSeq {
        seq: &["hashbrown"],
        name: "hashbrown",
        why: "hash containers iterate in hasher order; use FlowSlab/BTreeMap",
    },
];

/// Doc comments (`///`, `//!`, `/**`, `/*!`) document; they cannot
/// carry pragmas or `SAFETY:` obligations. Suppressions are
/// implementation comments, so prose *about* the pragma grammar never
/// parses as a pragma.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Collect suppression pragmas from non-doc comment tokens, reporting
/// malformed ones as findings.
///
/// Grammar: `mafic-lint: allow(<rule-id>) -- <non-empty reason>`
/// anywhere inside a plain line or block comment.
fn collect_pragmas(
    rel_path: &str,
    tokens: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<PragmaEntry> {
    let mut pragmas = Vec::new();
    for tok in tokens
        .iter()
        .filter(|t| t.is_comment() && !is_doc_comment(&t.text))
    {
        let Some(at) = tok.text.find("mafic-lint:") else {
            continue;
        };
        let rest = tok.text[at + "mafic-lint:".len()..].trim_start();
        let parsed = (|| {
            let body = rest.strip_prefix("allow(")?;
            let close = body.find(')')?;
            let rule = RuleId::parse(&body[..close])?;
            let after = body[close + 1..].trim_start();
            let reason = after.strip_prefix("--")?.trim();
            if reason.is_empty() {
                return None;
            }
            Some((rule, reason.to_string()))
        })();
        match parsed {
            Some((rule, reason)) => pragmas.push(PragmaEntry {
                path: rel_path.to_string(),
                line: tok.line,
                rule,
                reason,
                used: false,
            }),
            None => findings.push(Finding {
                path: rel_path.to_string(),
                line: tok.line,
                rule: RuleId::Pragma,
                message: format!(
                    "malformed suppression pragma (expected `mafic-lint: \
                     allow(<rule>) -- <reason>`): `{}`",
                    rest.lines().next().unwrap_or(rest).trim()
                ),
            }),
        }
    }
    pragmas
}

/// Greedy banned-sequence scan over the code-token view.
fn scan_nondet(rel_path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < code.len() {
        let mut matched = false;
        for banned in NONDET_SEQS {
            if banned.seq.len() <= code.len() - i
                && banned
                    .seq
                    .iter()
                    .zip(&code[i..])
                    .all(|(want, tok)| tok.text == *want)
            {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: code[i].line,
                    rule: RuleId::Nondet,
                    message: format!("forbidden `{}`: {}", banned.name, banned.why),
                });
                i += banned.seq.len();
                matched = true;
                break;
            }
        }
        if !matched {
            i += 1;
        }
    }
}

/// `{:p}` (pointer formatting) inside string literals — addresses vary
/// per run under ASLR, so they must never reach figure output.
fn scan_pointer_format(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    // mafic-lint: allow(nondet) -- the scanner must name the pattern it scans for
    let needle = ":p}";
    for tok in tokens.iter().filter(|t| t.kind == TokenKind::Str) {
        if tok.text.contains(needle) {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: tok.line,
                rule: RuleId::Nondet,
                // mafic-lint: allow(nondet) -- the finding message must name the banned pattern
                message: "pointer formatting `{:p}` in a format string: addresses are nondeterministic under ASLR".to_string(),
            });
        }
    }
}

/// `println!`/`print!` in library sources: figure stdout is
/// byte-compared by the CI diff gates, so libraries must stay silent
/// (progress goes to stderr, results go through return values).
fn scan_stdout_purity(rel_path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    for pair in code.windows(2) {
        if (pair[0].text == "println" || pair[0].text == "print") && pair[1].text == "!" {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: pair[0].line,
                rule: RuleId::StdoutPurity,
                message: format!(
                    "`{}!` in a library crate: figure stdout is byte-compared in CI; \
                     print from binaries only (stderr via `eprintln!` is fine)",
                    pair[0].text
                ),
            });
        }
    }
}

/// `partial_cmp` is a replay hazard on float keys: it is not a total
/// order, and the customary `.unwrap()`/`.expect(...)` escape hatch
/// panics on NaN while silently depending on sort stability for
/// `-0.0`/`0.0`. Require `f64::total_cmp` (or integer keys).
fn scan_float_ord(rel_path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    for tok in code {
        if tok.text == "partial_cmp" {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: tok.line,
                rule: RuleId::FloatOrd,
                message: "`partial_cmp` on sort/event keys is not a total order; use \
                          `total_cmp` or integer keys"
                    .to_string(),
            });
        }
    }
}

/// `unsafe` tokens: allowed only in sanctioned files, and every
/// occurrence must carry a `// SAFETY:` comment within the four
/// preceding lines (or on the same line).
fn scan_unsafe(
    rel_path: &str,
    cfg: &LintConfig,
    tokens: &[Token],
    code: &[&Token],
    findings: &mut Vec<Finding>,
) {
    for tok in code {
        if tok.text != "unsafe" {
            continue;
        }
        if cfg.unsafe_sanction(rel_path).is_none() {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: tok.line,
                rule: RuleId::UnsafeCode,
                message: "`unsafe` outside the sanctioned inventory; if genuinely needed, \
                          add the file to the lint config with a reason"
                    .to_string(),
            });
            continue;
        }
        let documented = tokens.iter().any(|t| {
            t.is_comment()
                && t.text.contains("SAFETY:")
                && t.line <= tok.line
                && t.line + 4 >= tok.line
        });
        if !documented {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: tok.line,
                rule: RuleId::UnsafeCode,
                message: "`unsafe` without a `// SAFETY:` comment within the 4 preceding \
                          lines"
                    .to_string(),
            });
        }
    }
}

/// Crate roots must pin `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]` so the compiler itself enforces the
/// contracts between linter runs.
fn scan_lib_attrs(rel_path: &str, cfg: &LintConfig, code: &[&Token], findings: &mut Vec<Finding>) {
    let is_lib_root = rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"));
    if !is_lib_root || cfg.lib_attr_exempt.iter().any(|p| p == rel_path) {
        return;
    }
    let has_seq = |seq: &[&str]| {
        code.windows(seq.len())
            .any(|w| seq.iter().zip(w).all(|(want, tok)| tok.text == *want))
    };
    for (seq, attr) in [
        (
            &["forbid", "(", "unsafe_code", ")"][..],
            "#![forbid(unsafe_code)]",
        ),
        (
            &["deny", "(", "missing_docs", ")"][..],
            "#![deny(missing_docs)]",
        ),
    ] {
        if !has_seq(seq) {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: 1,
                rule: RuleId::LibAttrs,
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }
}

/// Apply suppression pragmas: a finding is suppressed by a pragma for
/// the same rule in the same file on the same line or the line directly
/// above. Unused pragmas become findings themselves — suppressions must
/// stay anchored to the code they excuse.
fn apply_pragmas(findings: Vec<Finding>, pragmas: &mut [PragmaEntry]) -> Vec<Finding> {
    let mut surviving = Vec::new();
    for finding in findings {
        let mut suppressed = false;
        for pragma in pragmas.iter_mut() {
            if pragma.rule == finding.rule
                && pragma.path == finding.path
                && (pragma.line == finding.line || pragma.line + 1 == finding.line)
            {
                pragma.used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            surviving.push(finding);
        }
    }
    for pragma in pragmas.iter().filter(|p| !p.used) {
        surviving.push(Finding {
            path: pragma.path.clone(),
            line: pragma.line,
            rule: RuleId::Pragma,
            message: format!(
                "unused suppression pragma allow({}); remove it or move it next to \
                 the code it excuses",
                pragma.rule
            ),
        });
    }
    surviving
}

/// Lint one source file. Returns surviving findings plus the pragma
/// inventory (with usage marked).
#[must_use]
pub fn lint_source(
    rel_path: &str,
    source: &str,
    cfg: &LintConfig,
) -> (Vec<Finding>, Vec<PragmaEntry>) {
    let tokens = lex(source);
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let class = classify(rel_path);

    let mut findings = Vec::new();
    let mut pragmas = collect_pragmas(rel_path, &tokens, &mut findings);

    if cfg.nondet_sanction(rel_path).is_none() {
        scan_nondet(rel_path, &code, &mut findings);
        scan_pointer_format(rel_path, &tokens, &mut findings);
    }
    if class == FileClass::Library {
        scan_stdout_purity(rel_path, &code, &mut findings);
    }
    scan_float_ord(rel_path, &code, &mut findings);
    scan_unsafe(rel_path, cfg, &tokens, &code, &mut findings);
    scan_lib_attrs(rel_path, cfg, &code, &mut findings);

    let mut surviving = apply_pragmas(findings, &mut pragmas);
    surviving.sort_by_key(|f| (f.line, f.rule));
    (surviving, pragmas)
}

/// Extract the dependency name from one line of a `[dependencies]`
/// section (`mafic-netsim.workspace = true`, `rand = { path = ... }`).
fn dep_name(line: &str) -> Option<&str> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
        return None;
    }
    let name = line
        .split(|c: char| c == '.' || c == '=' || c.is_whitespace())
        .next()?
        .trim();
    (!name.is_empty()).then_some(name)
}

/// Lint one `Cargo.toml` against the crate-layering DAG.
///
/// `[dependencies]` must match the crate's exact allowlist;
/// `[dev-dependencies]` may additionally reach any crate of strictly
/// lower rank (test conveniences must not become compiled back-edges).
/// Any dependency that is neither a workspace crate nor a vendored
/// stand-in is rejected outright: the build environment is offline.
#[must_use]
pub fn lint_manifest(rel_path: &str, source: &str, cfg: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    let mut package_name = String::new();

    // First pass: find the package name.
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            section = trimmed.trim_matches(['[', ']']).to_string();
        } else if section == "package" && trimmed.starts_with("name") {
            if let Some(v) = trimmed.split('"').nth(1) {
                package_name = v.to_string();
            }
        }
    }
    let Some(layer) = cfg.layer(&package_name) else {
        findings.push(Finding {
            path: rel_path.to_string(),
            line: 1,
            rule: RuleId::Layering,
            message: format!(
                "package `{package_name}` is not in the crate-layering DAG; add it to \
                 the lint config with its rank and dependency allowlist"
            ),
        });
        return findings;
    };

    section.clear();
    for (idx, line) in source.lines().enumerate() {
        let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let trimmed = line.trim();
        let mut dotted_dep: Option<(&str, bool)> = None;
        if trimmed.starts_with('[') {
            section = trimmed.trim_matches(['[', ']']).to_string();
            // Dotted table form: `[dependencies.foo]` / the
            // `[dev-dependencies.foo]` variant declare a dep too.
            dotted_dep = section
                .strip_prefix("dependencies.")
                .map(|n| (n, false))
                .or_else(|| section.strip_prefix("dev-dependencies.").map(|n| (n, true)));
            if dotted_dep.is_none() {
                continue;
            }
        }
        let (name, is_dev) = if let Some((name, is_dev)) = dotted_dep {
            (name, is_dev)
        } else {
            let is_dev = match section.as_str() {
                "dependencies" => false,
                "dev-dependencies" => true,
                _ => continue,
            };
            let Some(name) = dep_name(trimmed) else {
                continue;
            };
            (name, is_dev)
        };
        let allowed = if is_dev {
            cfg.external_allowed.contains(&name)
                || cfg.layer(name).is_some_and(|dep| dep.rank < layer.rank)
        } else {
            layer.deps.contains(&name)
        };
        if !allowed {
            let kind = if is_dev {
                "dev-dependency"
            } else {
                "dependency"
            };
            findings.push(Finding {
                path: rel_path.to_string(),
                line: line_no,
                rule: RuleId::Layering,
                message: format!(
                    "{kind} `{name}` is not allowed for `{package_name}` by the crate \
                     DAG (back-edge, unknown crate, or non-vendored external)"
                ),
            });
        }
    }
    findings
}
