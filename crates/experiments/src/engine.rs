//! Deterministic multi-threaded experiment engine.
//!
//! Every figure and table walks a grid of independent [`ScenarioSpec`]
//! runs. Each [`mafic_workload::Scenario`] owns its simulator, interner,
//! and seeded RNGs, so two runs share no state whatsoever — fanning them
//! across threads cannot violate the determinism rules (ARCHITECTURE.md
//! rule 5). The engine exploits exactly that: a job pool hands specs to
//! `available_parallelism()` workers (override with `MAFIC_JOBS`),
//! reassembles outcomes **in job-index order**, and propagates the first
//! error by job index — so output is byte-identical to the serial path
//! regardless of worker count or completion order.
//!
//! Std-only by design: the build environment has no registry access, so
//! the pool is `std::thread::scope` + `std::sync::mpsc`, nothing else.

use mafic_workload::{run_spec, RunOutcome, ScenarioSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

/// Jobs below this count run without progress lines; small grids (unit
/// tests, single runs) should not chatter on stderr.
const PROGRESS_MIN_JOBS: usize = 16;

/// Parsed once from the environment: how wide to fan out and how many
/// trials each sweep point averages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker-thread count (`MAFIC_JOBS`; default `available_parallelism()`).
    pub jobs: usize,
    /// Seeds averaged per sweep point (`MAFIC_TRIALS`; default 3).
    pub trials: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: default_jobs(),
            trials: 3,
        }
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl EngineConfig {
    /// Reads `MAFIC_JOBS` and `MAFIC_TRIALS` from the process
    /// environment. Call once at entry and pass the struct down; the
    /// experiment layer itself never re-reads the environment.
    ///
    /// # Errors
    ///
    /// Unset variables fall back to defaults; set-but-invalid values
    /// (unparsable or zero) are rejected with a message naming the
    /// variable — a typoed `MAFIC_TRIALS=O3` must fail loudly, not
    /// silently average 3 trials.
    pub fn from_env() -> Result<Self, String> {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// [`EngineConfig::from_env`] for binary entrypoints: prints the
    /// error and exits with status 2 on an invalid environment.
    #[must_use]
    pub fn from_env_or_exit() -> Self {
        Self::from_env().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// [`EngineConfig::from_env`] with an injectable variable source, so
    /// tests can exercise the parsing hermetically (no process-global
    /// environment mutation).
    ///
    /// # Errors
    ///
    /// Same contract as [`EngineConfig::from_env`].
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        let jobs = match lookup("MAFIC_JOBS") {
            None => default_jobs(),
            Some(raw) => raw
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("MAFIC_JOBS must be a positive integer, got {raw:?}"))?,
        };
        let trials =
            match lookup("MAFIC_TRIALS") {
                None => 3,
                Some(raw) => raw.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("MAFIC_TRIALS must be a positive integer, got {raw:?}")
                })?,
            };
        Ok(EngineConfig { jobs, trials })
    }

    /// A serial configuration (1 worker, `trials` seeds) — the reference
    /// path the determinism tests compare against.
    #[must_use]
    pub fn serial(trials: u64) -> Self {
        EngineConfig { jobs: 1, trials }
    }
}

/// Reads the `MAFIC_WARM_SWEEP` opt-in: `1` lets eligible figures
/// branch their sweep from a shared-prefix checkpoint
/// ([`crate::sweep::sweep_warm`] — byte-identical output, the prefix
/// simulated once per trial instead of once per grid cell); `0` or
/// unset runs every cell cold. Injectable lookup for the same reason as
/// [`EngineConfig::from_lookup`].
///
/// # Errors
///
/// Rejects any other value with a message naming the variable.
pub fn warm_sweep_enabled(lookup: impl Fn(&str) -> Option<String>) -> Result<bool, String> {
    match lookup("MAFIC_WARM_SWEEP").as_deref() {
        None | Some("0") => Ok(false),
        Some("1") => Ok(true),
        Some(raw) => Err(format!("MAFIC_WARM_SWEEP must be 0 or 1, got {raw:?}")),
    }
}

/// [`warm_sweep_enabled`] for binary entrypoints: reads the process
/// environment, printing the error and exiting with status 2 on an
/// invalid value.
#[must_use]
pub fn warm_sweep_from_env_or_exit() -> bool {
    warm_sweep_enabled(|key| std::env::var(key).ok()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Runs `worker` over `inputs` on a pool of `jobs` threads and returns
/// the outputs **in input order**. On failures, the error of the
/// lowest-indexed failing job is returned — the same error the serial
/// loop would have hit first — regardless of completion order.
///
/// Workers pull the next job index from a shared counter (dynamic load
/// balancing: grid points vary widely in cost) and report `(index,
/// result)` over an mpsc channel; only the calling thread assembles, so
/// ordering never depends on scheduling. After the first error arrives,
/// workers stop claiming new jobs (in-flight jobs still finish), so a
/// failing grid returns about as fast as the serial loop would have.
///
/// # Errors
///
/// Propagates the first `worker` error by job index.
pub fn run_jobs<I, O, F>(inputs: Vec<I>, jobs: usize, worker: F) -> Result<Vec<O>, String>
where
    I: Send,
    O: Send,
    F: Fn(I) -> Result<O, String> + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = jobs.clamp(1, n);
    // The job queue: workers claim `(index, input)` pairs in ascending
    // index order. One lock per claim — each job is a whole simulator
    // run, so contention is irrelevant.
    let queue = Mutex::new(inputs.into_iter().enumerate());
    let cancelled = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, Result<O, String>)>();

    let mut results: Vec<Option<Result<O, String>>> = Vec::new();
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(|| {
                let tx = tx; // move the clone, borrow everything else
                loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break; // Fail fast: an earlier job already errored.
                    }
                    let Some((idx, input)) = queue.lock().expect("job queue poisoned").next()
                    else {
                        break;
                    };
                    let result = worker(input);
                    if result.is_err() {
                        cancelled.store(true, Ordering::Relaxed);
                    }
                    if tx.send((idx, result)).is_err() {
                        break; // Collector gone: nothing left to report to.
                    }
                }
            });
        }
        drop(tx);
        // Collect on the calling thread; emit coarse progress for big
        // grids. Progress goes to stderr only — stdout stays reserved
        // for figure data and byte-identical across worker counts.
        let progress_every = n.div_ceil(10);
        let mut done = 0usize;
        while let Ok((idx, result)) = rx.recv() {
            results[idx] = Some(result);
            done += 1;
            if n >= PROGRESS_MIN_JOBS && (done.is_multiple_of(progress_every) || done == n) {
                eprintln!("[engine] {done}/{n} runs complete ({workers} workers)");
            }
        }
    });

    // Indexes are claimed in ascending order, so every job below a
    // failing one was claimed, ran, and reported: scanning in index
    // order always hits the lowest-indexed error before any job left
    // unclaimed by the fail-fast cancellation. That makes the returned
    // error deterministic even though *which* later jobs got skipped is
    // scheduling-dependent.
    let mut out = Vec::with_capacity(n);
    for result in results {
        match result {
            Some(Ok(o)) => out.push(o),
            Some(Err(e)) => return Err(e),
            None => return Err("job cancelled after an earlier failure".to_string()),
        }
    }
    Ok(out)
}

/// Fans independent scenario runs across the pool; outcomes come back in
/// `specs` order, so callers see exactly the serial semantics, faster.
///
/// # Errors
///
/// Propagates the first build/run error by job index (the typed
/// `WorkloadError` is rendered to the engine's string error domain).
pub fn run_specs(specs: Vec<ScenarioSpec>, jobs: usize) -> Result<Vec<RunOutcome>, String> {
    run_jobs(specs, jobs, |spec| {
        run_spec(spec).map_err(|e| e.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn outputs_come_back_in_input_order() {
        for jobs in [1, 2, 4, 9] {
            let inputs: Vec<usize> = (0..23).collect();
            let out = run_jobs(inputs, jobs, |i| Ok(i * 10)).unwrap();
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_jobs(Vec::<u32>::new(), 4, Ok).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn first_error_by_job_index_wins() {
        // Jobs 3 and 7 fail; job 7 finishes long before job 3 under any
        // scheduling, yet job 3's error must be the one reported.
        for jobs in [1, 2, 4] {
            let inputs: Vec<usize> = (0..10).collect();
            let err = run_jobs(inputs, jobs, |i| {
                if i == 3 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Err("boom at 3".to_string())
                } else if i == 7 {
                    Err("boom at 7".to_string())
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, "boom at 3", "jobs={jobs}");
        }
    }

    #[test]
    fn failure_cancels_unclaimed_jobs() {
        // With one worker the claim order is the job order, so after job
        // 0 errors no later job may run at all.
        let ran = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..50).collect();
        let err = run_jobs(inputs, 1, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err("boom at 0".to_string())
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, "boom at 0");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "later jobs must not run");
    }

    #[test]
    fn config_defaults_without_env() {
        let cfg = EngineConfig::from_lookup(|_| None).unwrap();
        assert_eq!(cfg.trials, 3);
        assert!(cfg.jobs >= 1);
    }

    #[test]
    fn config_parses_explicit_values() {
        let cfg = EngineConfig::from_lookup(|key| match key {
            "MAFIC_JOBS" => Some("4".to_string()),
            "MAFIC_TRIALS" => Some("7".to_string()),
            _ => None,
        })
        .unwrap();
        assert_eq!(cfg, EngineConfig { jobs: 4, trials: 7 });
    }

    #[test]
    fn config_rejects_invalid_values() {
        for (key, raw) in [
            ("MAFIC_TRIALS", "O3"),
            ("MAFIC_TRIALS", "0"),
            ("MAFIC_TRIALS", "-1"),
            ("MAFIC_JOBS", "fast"),
            ("MAFIC_JOBS", "0"),
        ] {
            let err = EngineConfig::from_lookup(|k| (k == key).then(|| raw.to_string()))
                .expect_err(&format!("{key}={raw} must be rejected"));
            assert!(err.contains(key), "error must name {key}: {err}");
            assert!(err.contains(raw), "error must echo the value: {err}");
        }
    }

    #[test]
    fn warm_sweep_knob_parses_strictly() {
        assert_eq!(warm_sweep_enabled(|_| None), Ok(false));
        assert_eq!(warm_sweep_enabled(|_| Some("0".to_string())), Ok(false));
        assert_eq!(warm_sweep_enabled(|_| Some("1".to_string())), Ok(true));
        let err = warm_sweep_enabled(|_| Some("yes".to_string())).unwrap_err();
        assert!(err.contains("MAFIC_WARM_SWEEP"), "{err}");
        assert!(err.contains("yes"), "{err}");
    }

    #[test]
    fn serial_config_pins_one_worker() {
        let cfg = EngineConfig::serial(2);
        assert_eq!(cfg.jobs, 1);
        assert_eq!(cfg.trials, 2);
    }

    #[test]
    fn parallel_specs_match_serial_specs() {
        let specs: Vec<ScenarioSpec> = (0..3)
            .map(|i| ScenarioSpec {
                total_flows: 10 + i,
                n_routers: 5,
                end: mafic_netsim::SimTime::from_secs_f64(2.0),
                seed: 40 + i as u64,
                ..ScenarioSpec::default()
            })
            .collect();
        let serial = run_specs(specs.clone(), 1).unwrap();
        let parallel = run_specs(specs, 3).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.report, p.report);
            assert_eq!(s.triggered_at, p.triggered_at);
            assert_eq!(s.packets_sent, p.packets_sent);
        }
    }
}
