//! Nodes: routers and hosts.
//!
//! A node owns a routing table (exact-match host routes plus an optional
//! default route), a set of locally attached addresses (delivered up to
//! agents), and an ordered chain of packet filters — the hook the MAFIC
//! dropper and the LogLog taps attach to, mirroring the NS-2 `Connector`
//! objects the paper inserts at link heads.

use crate::filter::PacketFilter;
use crate::ids::{Addr, AgentId, LinkId, NodeId};

/// A router or host in the simulated domain.
///
/// Routing and local-binding tables are address-sorted `Vec`s: per-node
/// tables are small (host routes plus attached addresses), so a binary
/// search over a dense array beats a `BTreeMap`'s pointer chases on the
/// per-hop path, and sorted order keeps every table walk deterministic —
/// the simulation crates ban `std::collections::HashMap` (see
/// `clippy.toml`).
pub(crate) struct Node {
    pub(crate) id: NodeId,
    pub(crate) name: String,
    /// Host routes, sorted by destination address.
    routes: Vec<(Addr, LinkId)>,
    default_route: Option<LinkId>,
    /// Memo of the most recent `route_for` lookup. Forwarding is heavily
    /// skewed toward one destination (the victim), so this turns most
    /// route lookups into a single compare. Invalidated on any table
    /// change; a hit always equals what the table would answer.
    last_route: Option<(Addr, Option<LinkId>)>,
    /// Locally attached addresses, sorted; hosts carry one or two entries.
    local: Vec<(Addr, AgentId)>,
    pub(crate) filters: Vec<Box<dyn PacketFilter>>,
}

impl Node {
    pub(crate) fn new(id: NodeId, name: String) -> Self {
        Node {
            id,
            name,
            routes: Vec::new(),
            default_route: None,
            last_route: None,
            local: Vec::new(),
            filters: Vec::new(),
        }
    }

    /// Installs or replaces a host route.
    pub(crate) fn add_route(&mut self, dst: Addr, via: LinkId) {
        match self.routes.binary_search_by_key(&dst, |&(a, _)| a) {
            Ok(i) => self.routes[i].1 = via,
            Err(i) => self.routes.insert(i, (dst, via)),
        }
        self.last_route = None;
    }

    /// Sets the default route used when no host route matches.
    pub(crate) fn set_default_route(&mut self, via: Option<LinkId>) {
        self.default_route = via;
        self.last_route = None;
    }

    /// Next-hop link for `dst`, if any.
    pub(crate) fn route_for(&mut self, dst: Addr) -> Option<LinkId> {
        if let Some((memo_dst, via)) = self.last_route {
            if memo_dst == dst {
                return via;
            }
        }
        let via = self
            .routes
            .binary_search_by_key(&dst, |&(a, _)| a)
            .ok()
            .map(|i| self.routes[i].1)
            .or(self.default_route);
        self.last_route = Some((dst, via));
        via
    }

    /// Binds a local address to an agent (delivery up the stack).
    pub(crate) fn bind_local(&mut self, addr: Addr, agent: AgentId) {
        match self.local.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.local[i].1 = agent,
            Err(i) => self.local.insert(i, (addr, agent)),
        }
    }

    /// The agent bound to `addr` on this node, if any.
    pub(crate) fn local_agent(&self, addr: Addr) -> Option<AgentId> {
        // Hosts carry one or two bindings; a linear scan beats a binary
        // search's branch setup at these sizes.
        self.local
            .iter()
            .find(|&&(a, _)| a == addr)
            .map(|&(_, agent)| agent)
    }

    /// True if `addr` is attached to this node.
    pub(crate) fn is_local(&self, addr: Addr) -> bool {
        self.local.iter().any(|&(a, _)| a == addr)
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("routes", &self.routes.len())
            .field("default_route", &self.default_route)
            .field("local", &self.local.len())
            .field("filters", &self.filters.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_prefers_host_routes_over_default() {
        let mut n = Node::new(NodeId(0), "r0".into());
        let a = Addr::from_octets(10, 0, 0, 1);
        n.set_default_route(Some(LinkId(9)));
        n.add_route(a, LinkId(3));
        assert_eq!(n.route_for(a), Some(LinkId(3)));
        assert_eq!(n.route_for(Addr::from_octets(10, 0, 0, 2)), Some(LinkId(9)));
    }

    #[test]
    fn no_route_without_default() {
        let mut n = Node::new(NodeId(0), "r0".into());
        assert_eq!(n.route_for(Addr::new(5)), None);
    }

    #[test]
    fn local_binding() {
        let mut n = Node::new(NodeId(0), "h0".into());
        let a = Addr::from_octets(10, 0, 0, 1);
        assert!(!n.is_local(a));
        n.bind_local(a, AgentId(7));
        assert!(n.is_local(a));
        assert_eq!(n.local_agent(a), Some(AgentId(7)));
        assert_eq!(n.local_agent(Addr::new(1)), None);
    }

    #[test]
    fn debug_shows_counts() {
        let mut n = Node::new(NodeId(1), "r1".into());
        n.add_route(Addr::new(1), LinkId(0));
        let text = format!("{n:?}");
        assert!(text.contains("r1"));
        assert!(text.contains("routes: 1"));
    }
}
