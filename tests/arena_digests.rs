//! Pins the arena-backed batched data path to the *pre-arena* replay
//! digests: the packet-arena / link-delivery-batching rework must be a
//! pure representation change, observably identical to the original
//! one-event-per-packet path. The constants below were captured from
//! the last pre-arena build on the exact same specs; any divergence
//! means the refactor changed simulation behavior, not just layout.

use mafic_suite::experiments::engine::run_specs;
use mafic_suite::netsim::SimTime;
use mafic_suite::workload::{run_spec, RunOutcome, ScenarioSpec};

/// The determinism-suite spec (identical to `tests/determinism.rs`).
fn determinism_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 14,
        n_routers: 7,
        end: SimTime::from_secs_f64(3.0),
        seed,
        ..ScenarioSpec::default()
    }
}

/// The bench harness's pinned end-to-end scenario (identical to
/// `crates/bench/src/bin/bench_harness.rs`).
fn bench_e2e_spec() -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 40,
        n_routers: 20,
        end: SimTime::from_secs_f64(8.0),
        seed: 6,
        ..ScenarioSpec::default()
    }
}

/// A multi-domain cascade point, so the pinned surface also covers
/// pushback control packets riding the arena path.
fn cascade_spec() -> ScenarioSpec {
    ScenarioSpec {
        domains: 4,
        pushback_depth: 2,
        total_flows: 24,
        n_routers: 8,
        end: SimTime::from_secs_f64(3.0),
        seed: 9,
        ..ScenarioSpec::default()
    }
}

/// Renders the report exactly as its derived `Debug` did when the
/// pre-arena constants were captured — i.e. *without* the
/// observability fields added later (`peak_arena_packets`,
/// `scratch_inbox_drains`, `scratch_sketch_recycles`). Those are
/// runner-side instrumentation, not simulated behavior, so the pinned
/// digests deliberately exclude them; every simulated field is still
/// byte-compared.
fn report_digest(r: &mafic_suite::metrics::MetricsReport) -> String {
    format!(
        "MetricsReport {{ accuracy_pct: {:?}, false_negative_pct: {:?}, \
         false_positive_pct: {:?}, legit_drop_pct: {:?}, \
         traffic_reduction_pct: {:?}, attack_seen: {:?}, attack_dropped: {:?}, \
         legit_seen: {:?}, legit_dropped: {:?}, legit_dropped_as_malicious: {:?}, \
         victim_rate_before: {:?}, victim_rate_after: {:?}, \
         residual_attack_bps: {:?}, legit_goodput_bps: {:?}, \
         legit_data_sent: {:?}, legit_data_lost: {:?}, collateral_pct: {:?}, \
         flows: {:?} }}",
        r.accuracy_pct,
        r.false_negative_pct,
        r.false_positive_pct,
        r.legit_drop_pct,
        r.traffic_reduction_pct,
        r.attack_seen,
        r.attack_dropped,
        r.legit_seen,
        r.legit_dropped,
        r.legit_dropped_as_malicious,
        r.victim_rate_before,
        r.victim_rate_after,
        r.residual_attack_bps,
        r.legit_goodput_bps,
        r.legit_data_sent,
        r.legit_data_lost,
        r.collateral_pct,
        r.flows,
    )
}

/// Same digest composition as `tests/determinism.rs`.
fn digest(outcome: &RunOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", report_digest(&outcome.report)));
    out.push_str(&format!("{:?}\n", outcome.triggered_at));
    out.push_str(&format!("{:?}\n", outcome.atr_nodes));
    out.push_str(&format!(
        "sent={} delivered={}\n",
        outcome.packets_sent, outcome.packets_delivered
    ));
    for p in &outcome.series {
        out.push_str(&format!("{p:?}\n"));
    }
    for p in &outcome.goodput_series {
        out.push_str(&format!("{p:?}\n"));
    }
    out
}

/// FNV-1a over the digest bytes: compresses the multi-kilobyte digest
/// string into one pinnable constant.
fn digest_hash(outcome: &RunOutcome) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in digest(outcome).as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_hash(spec: ScenarioSpec) -> u64 {
    digest_hash(&run_spec(spec).expect("run"))
}

/// Digest hashes captured from the last pre-arena build (one event per
/// packet, `Packet` by value in the heap). The arena path must
/// reproduce them bit for bit.
const PRE_ARENA_DETERMINISM_SEED1: u64 = 0xf63d_783d_f461_c260;
const PRE_ARENA_DETERMINISM_SEED77: u64 = 0x2e4e_0933_7a5e_cc81;
const PRE_ARENA_BENCH_E2E: u64 = 0x4af8_4c44_0f16_3301;
const PRE_ARENA_CASCADE: u64 = 0x3ab7_d362_a1aa_803d;

#[test]
fn determinism_scenarios_match_pre_arena_digests() {
    assert_eq!(run_hash(determinism_spec(1)), PRE_ARENA_DETERMINISM_SEED1);
    assert_eq!(run_hash(determinism_spec(77)), PRE_ARENA_DETERMINISM_SEED77);
}

#[test]
fn bench_scenario_matches_pre_arena_digest() {
    assert_eq!(run_hash(bench_e2e_spec()), PRE_ARENA_BENCH_E2E);
}

#[test]
fn cascade_scenario_matches_pre_arena_digest() {
    assert_eq!(run_hash(cascade_spec()), PRE_ARENA_CASCADE);
}

/// The new bench scenario replays byte-identically whether the grid
/// runs serially or on four workers.
#[test]
fn bench_scenario_one_vs_four_workers() {
    let specs = vec![bench_e2e_spec(), cascade_spec()];
    let serial = run_specs(specs.clone(), 1).expect("serial");
    let parallel = run_specs(specs, 4).expect("parallel");
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(digest(s), digest(p), "worker count must not perturb runs");
    }
}
