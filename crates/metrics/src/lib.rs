//! # mafic-metrics
//!
//! Turns the raw per-flow accounting of a `mafic-netsim` run into the
//! five metrics the MAFIC paper evaluates:
//!
//! | Symbol | Meaning | Figure |
//! |--------|---------|--------|
//! | α      | attack-packet dropping accuracy | Fig. 3 |
//! | β      | traffic reduction rate at the victim | Fig. 4a |
//! | θp     | false positive rate | Fig. 5 |
//! | θn     | false negative rate | Fig. 6 |
//! | Lr     | legitimate-packet dropping rate | Fig. 7 |
//!
//! plus the victim-side bandwidth time series of Fig. 4b, the residual
//! attack rate / legitimate goodput / collateral damage of the
//! multi-domain scenarios, the per-policy deployment-cost proxies
//! ([`PolicyCostReport`]: table state bytes, timer events) of the
//! heterogeneous partial-deployment studies, and the control-plane
//! health counters ([`ControlPlaneReport`]: denials by reason, forged
//! envelopes, stand-down latency) of the trust-aware pushback
//! protocol.
//!
//! # Example
//!
//! ```
//! use mafic_metrics::{MeasureWindows, MetricsReport};
//! use mafic_netsim::StatsCollector;
//!
//! let report = MetricsReport::from_stats(&StatsCollector::new(), &MeasureWindows::default());
//! assert_eq!(report.attack_seen, 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod control;
pub mod cost;
pub mod report;
pub mod series;

pub use control::{control_table, ControlPlaneReport};
pub use cost::{cost_table, PolicyCostReport};
pub use report::{FlowTally, MeasureWindows, MetricsReport};
pub use series::{downsample, victim_arrival_series, victim_bandwidth_series, BandwidthPoint};
