//! # mafic-pushback
//!
//! Inter-domain **cascaded pushback**: the control plane that carries a
//! victim domain's defense one hop upstream at a time, so MAFIC's
//! suppression moves toward the zombies instead of ending at the victim
//! domain's own ingress routers (the literal "push back" of the paper's
//! title, in the spirit of El Defrawy et al.'s filter placement and
//! Li et al.'s adaptive distributed filtering).
//!
//! Five pieces, each deliberately simulator-agnostic:
//!
//! * [`DomainCoordinator`] — the per-domain lifecycle state machine
//!   (idle → defending → escalated → standing-down → idle). It watches
//!   the victim-bound aggregate entering the domain boundary and, when
//!   its local MAFIC deployment cannot stop the flood at the source
//!   (sustained pressure for `trigger_intervals` monitor intervals),
//!   escalates one hop upstream with a depth budget. Upstream defenses
//!   are soft-state leases: renewed (or re-installed after a lost
//!   request / lapsed lease) by full-state `Refresh` envelopes, torn
//!   down by `Withdraw`, victim-initiated `Stop`, or expiry, so a
//!   vanished requester cannot leave stale drops behind.
//! * [`TrustLedger`] — the per-requester trust state every upstream
//!   coordinator vets envelopes against: protocol version, authorized
//!   downstream identity, replay nonce, attestation of the claimed
//!   aggregate against the domain's own meter, and a per-requester
//!   install budget. Failed vetting answers with `Deny{reason}` — the
//!   defense against *malicious pushback* (an attacker asking an
//!   upstream to drop a victim's legitimate traffic).
//! * [`ControlPlane`] — the transport abstraction the coordinator sends
//!   envelopes through. The workload runner implements it over routed
//!   simulator packets (the deterministic in-band channel); the
//!   [`BufferedPlane`] records envelopes in memory for tests and
//!   out-of-simulator hosts.
//! * [`VictimRateMeter`] — a passive packet filter measuring the
//!   victim-bound byte rate at an Attack Transit Router, windowed per
//!   monitor interval. Installed before the dropper it measures offered
//!   pressure (also the attestation evidence); installed after it
//!   measures the residual that leaks through.
//! * [`ControlChannel`] — the agent bound to a domain's control address.
//!   Envelopes arrive **as simulated packets** over the inter-domain
//!   links (deterministically ordered with all other traffic, never a
//!   side channel); the channel authenticates the claimed requester
//!   against the packet source and queues survivors for the coordinator
//!   to drain once per monitor interval.
//!
//! The coordinator is policy-agnostic: `ActivateLocal` instructs
//! whatever defense filters the domain's resolved
//! `mafic::DefensePolicy` installed at its ATRs (full MAFIC, the
//! proportional baseline, or an aggregate rate limit). Domains that do
//! not participate have no coordinator activity at all — the workload
//! layer routes escalation requests *through* them to the nearest
//! participating domain, charging the escalation budget one hop per
//! level crossed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod channel;
pub mod coordinator;
pub mod meter;
pub mod plane;
pub mod trust;

pub use channel::ControlChannel;
pub use coordinator::{
    CoordinatorStats, DomainCoordinator, LifecycleState, PushbackAction, PushbackConfig,
    PushbackConfigError, PushbackRole,
};
pub use meter::VictimRateMeter;
pub use plane::{BufferedPlane, ControlPlane};
pub use trust::{DenyTally, TrustConfig, TrustLedger};
