//! `mafic-lint` CLI: lint the workspace and exit nonzero on findings.
//!
//! ```text
//! cargo run -p mafic-lint -- [--ci] [--root <path>]
//! ```
//!
//! `--root` defaults to the nearest workspace root above this crate
//! (so the binary works from any cwd inside the repo). `--ci` is the
//! mode CI runs: identical checks, and the report is printed even when
//! the tree is clean so the suppression inventory lands in the job log.

use std::path::PathBuf;
use std::process::ExitCode;

use mafic_lint::{lint_workspace, LintConfig};

fn main() -> ExitCode {
    let mut ci = false;
    let mut root: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--ci" => ci = true,
            "--root" => match argv.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mafic-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: mafic-lint [--ci] [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mafic-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // CARGO_MANIFEST_DIR is crates/lint; the workspace root is two up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/lint has a workspace root two levels up")
            .to_path_buf()
    });

    let cfg = LintConfig::workspace();
    match lint_workspace(&root, &cfg) {
        Ok(report) => {
            if ci || !report.is_clean() {
                print!("{}", report.render());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("mafic-lint: I/O error walking {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
