//! A TCP Reno-style sender agent.
//!
//! Implements the congestion-control behaviours MAFIC's probing relies on:
//! slow start, additive increase, fast retransmit on three duplicate ACKs,
//! multiplicative decrease, retransmission timeouts with exponential
//! backoff, and — crucially — a compliant response to MAFIC's
//! [`PacketKind::ProbeDupAck`] bursts: a probe counts as a loss signal, so
//! the sender halves its window and its arrival rate at the router drops
//! within one RTT, which is exactly the "TCP-friendly" behaviour the SFT
//! timer checks for.
//!
//! The sender models an infinite-backlog application (FTP-like) sending
//! fixed-size segments; sequence numbers count segments, not bytes.

use crate::rtt::RttEstimator;
use mafic_netsim::{
    Agent, AgentCtx, FlowKey, Packet, PacketKind, Provenance, SimDuration, SimTime,
};
use std::any::Any;

/// Tunables for [`TcpSender`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Segment size in bytes (data packets).
    pub segment_size: u32,
    /// ACK size in bytes.
    pub ack_size: u32,
    /// Initial congestion window (segments).
    pub initial_cwnd: f64,
    /// Initial slow-start threshold (segments).
    pub initial_ssthresh: f64,
    /// Upper bound on the congestion window (receiver window stand-in).
    pub max_cwnd: f64,
    /// Initial retransmission timeout before any RTT sample.
    pub initial_rto: SimDuration,
    /// Lower bound for the RTO.
    pub min_rto: SimDuration,
    /// Upper bound for the RTO.
    pub max_rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            segment_size: 500,
            ack_size: 40,
            initial_cwnd: 2.0,
            initial_ssthresh: 32.0,
            max_cwnd: 64.0,
            initial_rto: SimDuration::from_millis(1000),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(8),
        }
    }
}

impl TcpConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.segment_size == 0 {
            return Err("segment_size must be positive".into());
        }
        if self.initial_cwnd.is_nan() || self.initial_cwnd < 1.0 {
            return Err(format!(
                "initial_cwnd must be >= 1, got {}",
                self.initial_cwnd
            ));
        }
        if self.max_cwnd.is_nan() || self.max_cwnd < self.initial_cwnd {
            return Err("max_cwnd must be >= initial_cwnd".into());
        }
        if self.min_rto > self.max_rto {
            return Err("min_rto exceeds max_rto".into());
        }
        Ok(())
    }
}

/// Congestion-control phase, exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpPhase {
    /// Exponential window growth below `ssthresh`.
    SlowStart,
    /// Additive increase above `ssthresh`.
    CongestionAvoidance,
    /// Between a fast retransmit and the ACK covering `recover`.
    FastRecovery,
}

/// A TCP Reno-style bulk sender.
pub struct TcpSender {
    key: FlowKey,
    config: TcpConfig,
    is_attack: bool,
    started: bool,
    stop_after: Option<SimTime>,
    // Sliding window state (segment granularity).
    next_seq: u64,
    snd_una: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    recover: u64,
    in_fast_recovery: bool,
    // RTT machinery.
    rtt: RttEstimator,
    last_peer_ts: SimTime,
    rto_generation: u64,
    // Counters.
    data_sent: u64,
    retransmits: u64,
    timeouts: u64,
    probes_received: u64,
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("key", &self.key)
            .field("cwnd", &self.cwnd)
            .field("ssthresh", &self.ssthresh)
            .field("snd_una", &self.snd_una)
            .field("next_seq", &self.next_seq)
            .field("phase", &self.phase())
            .finish()
    }
}

impl TcpSender {
    /// Creates a sender for `key`.
    ///
    /// `is_attack` is ground truth recorded on every emitted packet; a
    /// compliant TCP attack flow would be throttled like any other TCP
    /// flow, so attack zombies normally use `UnresponsiveSender` instead.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — a configuration bug.
    #[must_use]
    pub fn new(key: FlowKey, config: TcpConfig, is_attack: bool) -> Self {
        config.validate().expect("invalid TcpConfig");
        TcpSender {
            key,
            config,
            is_attack,
            started: false,
            stop_after: None,
            next_seq: 0,
            snd_una: 0,
            cwnd: config.initial_cwnd,
            ssthresh: config.initial_ssthresh,
            dup_acks: 0,
            recover: 0,
            in_fast_recovery: false,
            rtt: RttEstimator::new(config.initial_rto, config.min_rto, config.max_rto),
            last_peer_ts: SimTime::ZERO,
            rto_generation: 0,
            data_sent: 0,
            retransmits: 0,
            timeouts: 0,
            probes_received: 0,
        }
    }

    /// Stops sending new data after the given instant (retransmissions of
    /// in-flight data continue).
    pub fn set_stop_after(&mut self, at: SimTime) {
        self.stop_after = Some(at);
    }

    /// Current congestion window in segments.
    #[must_use]
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold.
    #[must_use]
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// The congestion-control phase.
    #[must_use]
    pub fn phase(&self) -> TcpPhase {
        if self.in_fast_recovery {
            TcpPhase::FastRecovery
        } else if self.cwnd < self.ssthresh {
            TcpPhase::SlowStart
        } else {
            TcpPhase::CongestionAvoidance
        }
    }

    /// Data segments transmitted (including retransmissions).
    #[must_use]
    pub fn data_sent(&self) -> u64 {
        self.data_sent
    }

    /// Retransmitted segments.
    #[must_use]
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Retransmission timeouts experienced.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// MAFIC probe bursts received.
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        self.probes_received
    }

    /// The flow key this sender transmits on.
    #[must_use]
    pub fn flow_key(&self) -> FlowKey {
        self.key
    }

    fn sending_allowed(&self, now: SimTime) -> bool {
        match self.stop_after {
            Some(t) => now < t,
            None => true,
        }
    }

    fn make_segment(&self, seq: u64, ctx: &mut AgentCtx<'_>) -> Packet {
        Packet {
            id: ctx.fresh_packet_id(),
            key: self.key,
            kind: PacketKind::TcpData {
                seq,
                ts: ctx.now(),
                ts_echo: self.last_peer_ts,
            },
            size_bytes: self.config.segment_size,
            created_at: ctx.now(),
            provenance: Provenance {
                origin: ctx.agent_id(),
                is_attack: self.is_attack,
            },
            hops: 0,
        }
    }

    fn send_window(&mut self, ctx: &mut AgentCtx<'_>) {
        if !self.sending_allowed(ctx.now()) {
            return;
        }
        let window = self.cwnd.floor().max(1.0) as u64;
        while self.next_seq < self.snd_una + window {
            let seq = self.next_seq;
            let pkt = self.make_segment(seq, ctx);
            ctx.send_packet(pkt);
            self.next_seq += 1;
            self.data_sent += 1;
        }
    }

    fn retransmit_head(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.snd_una >= self.next_seq {
            return;
        }
        let pkt = self.make_segment(self.snd_una, ctx);
        ctx.send_packet(pkt);
        self.data_sent += 1;
        self.retransmits += 1;
    }

    fn arm_rto(&mut self, ctx: &mut AgentCtx<'_>) {
        self.rto_generation += 1;
        ctx.schedule_in(self.rtt.rto(), self.rto_generation);
    }

    /// Shared multiplicative-decrease entry point for both genuine loss
    /// signals (three duplicate ACKs) and MAFIC probe bursts.
    fn enter_fast_recovery(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.in_fast_recovery {
            return;
        }
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
        self.in_fast_recovery = true;
        self.recover = self.next_seq;
        self.retransmit_head(ctx);
    }

    fn on_ack(&mut self, ack: u64, ts: SimTime, ts_echo: SimTime, ctx: &mut AgentCtx<'_>) {
        self.last_peer_ts = ts;
        if ack > self.snd_una {
            let newly_acked = ack - self.snd_una;
            self.snd_una = ack;
            self.dup_acks = 0;
            if ts_echo != SimTime::ZERO {
                let rtt = ctx.now().saturating_since(ts_echo);
                if !rtt.is_zero() {
                    self.rtt.sample(rtt);
                }
            }
            if self.in_fast_recovery {
                if ack >= self.recover {
                    self.in_fast_recovery = false;
                    self.cwnd = self.ssthresh;
                }
            } else if self.cwnd < self.ssthresh {
                // Slow start: one segment per ACKed segment.
                self.cwnd = (self.cwnd + newly_acked as f64).min(self.config.max_cwnd);
            } else {
                // Congestion avoidance: ~1 segment per RTT.
                self.cwnd = (self.cwnd + newly_acked as f64 / self.cwnd).min(self.config.max_cwnd);
            }
            self.arm_rto(ctx);
            self.send_window(ctx);
        } else if ack == self.snd_una && self.snd_una < self.next_seq {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                self.enter_fast_recovery(ctx);
            }
        }
    }
}

impl Agent for TcpSender {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.started = true;
        self.send_window(ctx);
        self.arm_rto(ctx);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        match packet.kind {
            PacketKind::TcpAck { ack, ts, ts_echo } => self.on_ack(ack, ts, ts_echo, ctx),
            PacketKind::ProbeDupAck { count } => {
                self.probes_received += 1;
                // A compliant source treats a duplicate-ACK burst as
                // congestion feedback: multiplicative decrease.
                if count >= 3 {
                    self.enter_fast_recovery(ctx);
                } else {
                    self.dup_acks += u32::from(count);
                    if self.dup_acks >= 3 {
                        self.enter_fast_recovery(ctx);
                    }
                }
            }
            // Data, UDP, or control addressed to a sender: ignore.
            PacketKind::TcpData { .. } | PacketKind::Udp | PacketKind::Pushback(_) => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_>) {
        if token != self.rto_generation {
            return; // Stale timer from a superseded schedule.
        }
        if self.snd_una >= self.next_seq {
            // Nothing outstanding; idle restart keeps the timer armed only
            // if data remains to be sent.
            if self.sending_allowed(ctx.now()) {
                self.send_window(ctx);
                self.arm_rto(ctx);
            }
            return;
        }
        // Retransmission timeout.
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        self.in_fast_recovery = false;
        self.rtt.backoff();
        self.retransmit_head(ctx);
        self.arm_rto(ctx);
    }

    fn snap_save(&self, w: &mut mafic_netsim::SnapWriter) {
        w.write_bool(self.started);
        match self.stop_after {
            None => w.write_u8(0),
            Some(t) => {
                w.write_u8(1);
                w.write_u64(t.as_nanos());
            }
        }
        w.write_u64(self.next_seq);
        w.write_u64(self.snd_una);
        w.write_f64(self.cwnd);
        w.write_f64(self.ssthresh);
        w.write_u32(self.dup_acks);
        w.write_u64(self.recover);
        w.write_bool(self.in_fast_recovery);
        self.rtt.snap_save(w);
        w.write_u64(self.last_peer_ts.as_nanos());
        w.write_u64(self.rto_generation);
        w.write_u64(self.data_sent);
        w.write_u64(self.retransmits);
        w.write_u64(self.timeouts);
        w.write_u64(self.probes_received);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_netsim::SnapReader<'_>,
    ) -> Result<(), mafic_netsim::SnapError> {
        self.started = r.read_bool()?;
        self.stop_after = match r.read_u8()? {
            0 => None,
            1 => Some(SimTime::from_nanos(r.read_u64()?)),
            tag => {
                return Err(mafic_netsim::SnapError::Malformed(format!(
                    "stop-after tag {tag}"
                )))
            }
        };
        self.next_seq = r.read_u64()?;
        self.snd_una = r.read_u64()?;
        self.cwnd = r.read_f64()?;
        self.ssthresh = r.read_f64()?;
        self.dup_acks = r.read_u32()?;
        self.recover = r.read_u64()?;
        self.in_fast_recovery = r.read_bool()?;
        self.rtt.snap_restore(r)?;
        self.last_peer_ts = SimTime::from_nanos(r.read_u64()?);
        self.rto_generation = r.read_u64()?;
        self.data_sent = r.read_u64()?;
        self.retransmits = r.read_u64()?;
        self.timeouts = r.read_u64()?;
        self.probes_received = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::AgentHarness;
    use mafic_netsim::{Addr, AgentId};

    fn key() -> FlowKey {
        FlowKey::new(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(10, 9, 0, 1),
            4000,
            80,
        )
    }

    fn ack_packet(ack: u64, now: SimTime) -> Packet {
        Packet {
            id: 999,
            key: key().reversed(),
            kind: PacketKind::TcpAck {
                ack,
                ts: now,
                ts_echo: SimTime::ZERO,
            },
            size_bytes: 40,
            created_at: now,
            provenance: Provenance {
                origin: AgentId::from_index(1),
                is_attack: false,
            },
            hops: 0,
        }
    }

    fn probe_packet(count: u8, now: SimTime) -> Packet {
        Packet {
            id: 998,
            key: key().reversed(),
            kind: PacketKind::ProbeDupAck { count },
            size_bytes: 40,
            created_at: now,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    fn sender() -> TcpSender {
        TcpSender::new(key(), TcpConfig::default(), false)
    }

    #[test]
    fn start_sends_initial_window() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let fx = h.start(&mut s);
        assert_eq!(fx.sent.len(), 2, "initial cwnd is 2 segments");
        assert!(matches!(
            fx.sent[0].kind,
            PacketKind::TcpData { seq: 0, .. }
        ));
        assert!(matches!(
            fx.sent[1].kind,
            PacketKind::TcpData { seq: 1, .. }
        ));
        assert_eq!(fx.timers.len(), 1, "RTO armed at start");
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        h.advance(SimDuration::from_millis(50));
        let fx = h.deliver(&mut s, ack_packet(2, h.now));
        assert_eq!(s.cwnd(), 4.0);
        assert_eq!(fx.sent.len(), 4);
        assert_eq!(s.phase(), TcpPhase::SlowStart);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        h.advance(SimDuration::from_millis(20));
        let _ = h.deliver(&mut s, ack_packet(2, h.now));
        let _ = h.deliver(&mut s, ack_packet(3, h.now));
        let before = s.cwnd();
        let _ = h.deliver(&mut s, ack_packet(3, h.now));
        let _ = h.deliver(&mut s, ack_packet(3, h.now));
        let fx = h.deliver(&mut s, ack_packet(3, h.now));
        assert_eq!(s.phase(), TcpPhase::FastRecovery);
        assert!(s.cwnd() < before, "window must shrink on loss");
        assert_eq!(s.retransmits(), 1);
        assert_eq!(fx.sent.len(), 1, "head-of-line retransmission");
        assert!(matches!(
            fx.sent[0].kind,
            PacketKind::TcpData { seq: 3, .. }
        ));
    }

    #[test]
    fn probe_burst_halves_window() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        h.advance(SimDuration::from_millis(20));
        let _ = h.deliver(&mut s, ack_packet(2, h.now));
        let _ = h.deliver(&mut s, ack_packet(4, h.now));
        let before = s.cwnd();
        let fx = h.deliver(&mut s, probe_packet(3, h.now));
        assert_eq!(s.probes_received(), 1);
        assert_eq!(s.phase(), TcpPhase::FastRecovery);
        assert!(s.cwnd() <= before / 2.0 + 1e-9);
        assert_eq!(fx.sent.len(), 1, "probe also triggers a retransmission");
    }

    #[test]
    fn small_probe_bursts_accumulate() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        h.advance(SimDuration::from_millis(20));
        let _ = h.deliver(&mut s, ack_packet(2, h.now));
        let _ = h.deliver(&mut s, probe_packet(1, h.now));
        assert_ne!(s.phase(), TcpPhase::FastRecovery);
        let _ = h.deliver(&mut s, probe_packet(1, h.now));
        let _ = h.deliver(&mut s, probe_packet(1, h.now));
        assert_eq!(s.phase(), TcpPhase::FastRecovery);
    }

    #[test]
    fn rto_collapses_window_to_one() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        // Fire the armed RTO (generation 1) without any ACK.
        let fx = h.fire_timer(&mut s, 1);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.timeouts(), 1);
        assert_eq!(fx.sent.len(), 1);
        assert!(matches!(
            fx.sent[0].kind,
            PacketKind::TcpData { seq: 0, .. }
        ));
    }

    #[test]
    fn stale_timer_is_ignored() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        h.advance(SimDuration::from_millis(10));
        let _ = h.deliver(&mut s, ack_packet(2, h.now)); // re-arms => generation 2
        let fx = h.fire_timer(&mut s, 1);
        assert!(fx.sent.is_empty());
        assert_eq!(s.timeouts(), 0);
    }

    #[test]
    fn recovery_exits_on_covering_ack() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        h.advance(SimDuration::from_millis(20));
        let _ = h.deliver(&mut s, ack_packet(2, h.now));
        let _ = h.deliver(&mut s, probe_packet(3, h.now));
        assert_eq!(s.phase(), TcpPhase::FastRecovery);
        let recover_point = s.next_seq;
        let _ = h.deliver(&mut s, ack_packet(recover_point, h.now));
        assert_ne!(s.phase(), TcpPhase::FastRecovery);
    }

    #[test]
    fn rtt_sample_updates_estimator() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        h.advance(SimDuration::from_millis(80));
        // ts_echo carries the original send timestamp.
        let ack = Packet {
            id: 997,
            key: key().reversed(),
            kind: PacketKind::TcpAck {
                ack: 1,
                ts: h.now,
                ts_echo: SimTime::ZERO + SimDuration::from_millis(10),
            },
            size_bytes: 40,
            created_at: h.now,
            provenance: Provenance::infrastructure(),
            hops: 0,
        };
        let _ = h.deliver(&mut s, ack);
        // RTT sample = 80ms - 10ms = 70ms.
        assert!(s.rtt.srtt().is_some());
        assert_eq!(s.rtt.srtt().unwrap(), SimDuration::from_millis(70));
    }

    #[test]
    fn stop_after_halts_new_data() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        s.set_stop_after(SimTime::from_secs_f64(0.5));
        let _ = h.start(&mut s);
        h.now = SimTime::from_secs_f64(1.0);
        let fx = h.deliver(&mut s, ack_packet(2, h.now));
        assert!(fx.sent.is_empty(), "no new data after stop_after");
    }

    #[test]
    fn cwnd_is_capped() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        let mut acked = 0u64;
        for _ in 0..50 {
            h.advance(SimDuration::from_millis(10));
            acked = s.next_seq;
            let _ = h.deliver(&mut s, ack_packet(acked, h.now));
        }
        assert!(s.cwnd() <= TcpConfig::default().max_cwnd);
        assert!(acked > 0);
    }

    #[test]
    fn snapshot_round_trips_window_and_rtt_state() {
        let mut h = AgentHarness::new();
        let mut s = sender();
        let _ = h.start(&mut s);
        h.advance(SimDuration::from_millis(50));
        let _ = h.deliver(&mut s, ack_packet(2, h.now));
        let _ = h.deliver(&mut s, probe_packet(3, h.now));
        let mut w = mafic_netsim::SnapWriter::new();
        s.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut g = sender();
        let mut r = mafic_netsim::SnapReader::new(&bytes);
        g.snap_restore(&mut r).expect("restore");
        assert!(r.is_empty(), "trailing bytes");
        assert_eq!(g.cwnd(), s.cwnd());
        assert_eq!(g.ssthresh(), s.ssthresh());
        assert_eq!(g.phase(), TcpPhase::FastRecovery);
        assert_eq!(g.probes_received(), 1);
        assert_eq!(g.rtt.srtt(), s.rtt.srtt());
        // Both exit recovery on the same covering ACK and resume in step.
        let recover_point = s.next_seq;
        let mut h2 = AgentHarness::new();
        h2.advance(h.now.saturating_since(SimTime::ZERO));
        let fx = h.deliver(&mut s, ack_packet(recover_point, h.now));
        let gx = h2.deliver(&mut g, ack_packet(recover_point, h2.now));
        assert_eq!(fx.sent.len(), gx.sent.len());
        assert_eq!(s.cwnd(), g.cwnd());
    }

    #[test]
    fn config_validation() {
        assert!(TcpConfig {
            segment_size: 0,
            ..TcpConfig::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            initial_cwnd: 0.5,
            ..TcpConfig::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            max_cwnd: 1.0,
            ..TcpConfig::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig::default().validate().is_ok());
    }
}
