//! Scenario construction: domain + agents + filters, fully wired.
//!
//! Two shapes:
//!
//! * **Single-domain** (`spec.domains == 1`) — the paper's Figure 1
//!   scenario, exactly as before.
//! * **Multi-domain** (`spec.domains >= 2`) — an [`Internet`] of stub
//!   domains and a transit tier. Flows split round-robin over the
//!   stubs, so part of the flood is remote and crosses the inter-domain
//!   links; every *participating* domain boundary gets inactive defense
//!   filters matching its resolved [`DefensePolicy`], rate meters, and
//!   a pushback coordinator (the [`PushbackPlan`]) so the defense can
//!   cascade upstream at run time. Non-participating domains deploy
//!   nothing; escalation requests skip over them to the nearest
//!   participating domain (routing through the gap).

use crate::error::WorkloadError;
use crate::spec::{DetectionMode, ScenarioSpec};
use mafic::{
    AddressValidator, DefensePolicy, LogLogTap, MaficConfig, MaficFilter, ProportionalFilter,
    RateLimitFilter,
};
use mafic_netsim::{
    Addr, AgentId, FlowKey, LinkSpec, NodeId, RequesterId, SimDuration, SimTime, Simulator,
};
use mafic_pushback::{ControlChannel, DomainCoordinator, PushbackRole};
use mafic_topology::{
    AddressSpace, Domain, DomainConfig, HostInfo, Internet, InternetConfig, PREFIX_LEN,
};
use mafic_transport::{
    CbrConfig, CbrProtocol, TcpConfig, TcpSender, UnresponsiveSender, VictimSink,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Spoofing mode of one attack flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpoofMode {
    /// Uses the zombie's genuine address.
    None,
    /// Claims an unallocated (illegal) address.
    Illegal,
    /// Claims a legal address from another subnet.
    LegalOtherSubnet,
}

/// Ground-truth description of one provisioned flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowInfo {
    /// The flow's wire 4-tuple (claimed source included).
    pub key: FlowKey,
    /// The sending agent.
    pub agent: AgentId,
    /// True for attack flows.
    pub is_attack: bool,
    /// True for flows whose data segments are TCP.
    pub is_tcp: bool,
    /// The spoofing mode (always `None` for legitimate flows).
    pub spoof: SpoofMode,
    /// Index of the ingress router the flow enters through (within its
    /// own stub domain).
    pub ingress_index: usize,
    /// Index of the stub domain hosting the flow's source (0 = the
    /// victim's own domain).
    pub stub_index: usize,
}

/// One upstream escalation target of a domain — the nearest
/// *participating* domain in that direction. When intermediate domains
/// opted out of the federation, the target sits more than one level
/// away and the request packet routes *through* the non-participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushbackUpstream {
    /// Index of the target domain in [`Internet::domains`].
    pub domain: usize,
    /// Its coordinator's control address.
    pub ctrl_addr: Addr,
    /// The local border router where the message is injected (the
    /// packet then crosses the shared inter-domain link and keeps
    /// routing until it reaches the target's control address).
    pub border: NodeId,
    /// Pushback levels between this domain and the target (1 = direct
    /// neighbor; more when non-participating domains are skipped). Each
    /// level crossed costs one hop of the escalation budget.
    pub level_cost: u32,
}

/// Runtime control state of one domain boundary.
#[derive(Debug)]
pub struct PushbackDomainControl {
    /// The coordinator state machine.
    pub coordinator: DomainCoordinator,
    /// The defense policy this domain deploys. Non-participating
    /// domains carry no filters or meters and are never stepped by the
    /// runner; their coordinator exists but stays idle.
    pub policy: DefensePolicy,
    /// The domain's control-channel agent (bound to `ctrl_addr`).
    pub channel: AgentId,
    /// The domain's control address.
    pub ctrl_addr: Addr,
    /// The domain's gateway router (faces the downstream neighbor) —
    /// where downstream-bound control packets (`Deny`) are injected.
    pub gateway: NodeId,
    /// Pushback level (victim domain = 0).
    pub level: u32,
    /// Upstream neighbors, escalation targets.
    pub upstream: Vec<PushbackUpstream>,
    /// `(router, filter index)` of the domain's ATR defense filters.
    pub atrs: Vec<(NodeId, usize)>,
    /// Border routers among the ATRs (inter-domain links from upstream
    /// terminate here), sorted. Pre-meters at these nodes measure
    /// pass-through traffic an upstream report can cover; the rest is
    /// the domain's own local-ingress component.
    pub border_nodes: Vec<NodeId>,
    /// Pre-dropper meters: offered victim-bound pressure.
    pub pre_meters: Vec<(NodeId, usize)>,
    /// Post-dropper meters: residual leaking past the local defense.
    pub post_meters: Vec<(NodeId, usize)>,
    /// Residual victim-bound bytes accumulated by the runner.
    pub residual_bytes: u64,
}

/// The full pushback control plane of a multi-domain scenario.
#[derive(Debug)]
pub struct PushbackPlan {
    /// Per-domain control state, in [`Internet::domains`] order.
    pub domains: Vec<PushbackDomainControl>,
}

/// A fully wired scenario, ready to run.
pub struct Scenario {
    /// The simulator holding the domain, agents, and filters.
    pub sim: Simulator,
    /// The victim's domain handles (the only domain when
    /// `spec.domains == 1`).
    pub domain: Domain,
    /// The multi-domain topology, when one was built.
    pub internet: Option<Internet>,
    /// The inter-domain pushback control plane, when one was built.
    pub pushback: Option<PushbackPlan>,
    /// The spec this scenario was built from.
    pub spec: ScenarioSpec,
    /// All provisioned flows with ground truth.
    pub flows: Vec<FlowInfo>,
    /// `(router, filter index)` of the defense filter on each of the
    /// victim domain's ingress routers.
    pub droppers: Vec<(NodeId, usize)>,
    /// `(router, filter index)` of the LogLog tap on each victim-domain
    /// router, in [`Domain::routers`] order.
    pub taps: Vec<(NodeId, usize)>,
    /// The victim sink agent.
    pub victim_agent: AgentId,
    /// Flow keys of the background cross-traffic flows through the
    /// transit tier (empty unless `spec.cross_traffic_bps > 0`). These
    /// are legitimate flows not aimed at the victim.
    pub cross_traffic: Vec<FlowKey>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("flows", &self.flows.len())
            .field("droppers", &self.droppers.len())
            .field("taps", &self.taps.len())
            .field(
                "domains",
                &self.internet.as_ref().map_or(1, |n| n.domains.len()),
            )
            .finish()
    }
}

/// Bandwidth of every inter-domain link (bits/s). Deliberately tighter
/// than the aggregate flood so depth-0 pushback leaves the transit→
/// victim links congested — the collateral deeper deployment relieves.
const INTER_DOMAIN_BANDWIDTH_BPS: f64 = 20e6;
/// Propagation delay of every inter-domain link.
const INTER_DOMAIN_DELAY: SimDuration = SimDuration::from_millis(10);
/// Queue capacity (packets) of every inter-domain link.
const INTER_DOMAIN_QUEUE: usize = 192;

impl Scenario {
    /// Builds the scenario described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] if the spec or derived topology is
    /// invalid.
    pub fn build(spec: ScenarioSpec) -> Result<Scenario, WorkloadError> {
        spec.validate().map_err(WorkloadError::Spec)?;
        if spec.domains <= 1 {
            Scenario::build_single(spec)
        } else {
            Scenario::build_multi(spec)
        }
    }

    /// The paper's single-domain scenario.
    fn build_single(spec: ScenarioSpec) -> Result<Scenario, WorkloadError> {
        let mut rng = SmallRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9));
        let mut sim = Simulator::new(spec.seed);
        if spec.trace_capacity > 0 {
            sim.enable_trace(spec.trace_capacity);
        }

        let domain_config = DomainConfig {
            n_routers: spec.n_routers,
            n_hosts: spec.total_flows,
            seed: spec.seed ^ 0xD0_4A1,
            ..DomainConfig::default()
        };
        let domain = Domain::build(&mut sim, &domain_config).map_err(WorkloadError::Topology)?;

        // Victim endpoint.
        let victim_agent = sim.add_agent(
            domain.victim_host,
            Box::new(VictimSink::default()),
            SimTime::ZERO,
        );
        sim.bind_local_addr(domain.victim_host, domain.victim_addr, victim_agent);
        sim.stats_mut()
            .watch_victim(domain.victim_host, spec.victim_bin);
        sim.stats_mut()
            .watch_arrivals(domain.victim_router, domain.victim_addr, spec.victim_bin);

        // Filters: tap first (counts arrivals), then the dropper.
        let validator = AddressValidator::Prefixes(
            (0..domain.address_space.ingress_count())
                .map(|i| (domain.address_space.ingress_prefix(i), PREFIX_LEN))
                .chain(std::iter::once((
                    domain.address_space.victim_prefix(),
                    PREFIX_LEN,
                )))
                .collect(),
        );
        let taps = install_taps(&mut sim, &spec, &domain, &[]);
        let droppers = install_droppers(
            &mut sim,
            &spec,
            &domain.ingress_routers,
            &validator,
            0,
            spec.base_policy(),
        );

        // Traffic: one host per flow. Legitimate TCP first, zombies last.
        let n_legit = spec.legit_flow_count();
        let n_attack = spec.attack_flow_count();
        debug_assert_eq!(n_legit + n_attack, spec.total_flows);
        let mut flows = Vec::with_capacity(spec.total_flows);
        for (i, host) in domain.hosts.iter().enumerate() {
            flows.push(provision_flow(
                &mut sim,
                &spec,
                &mut rng,
                i,
                n_legit,
                n_attack,
                host,
                &domain.address_space,
                domain.victim_addr,
                0,
            ));
        }

        // Fixed-time detection installs the control messages up front.
        if let DetectionMode::AtTime(at) = spec.detection {
            for &(router, _) in &droppers {
                sim.send_control(
                    router,
                    mafic_netsim::FilterControl::PushbackStart {
                        victim: domain.victim_addr,
                    },
                    at,
                );
            }
        }

        Ok(Scenario {
            sim,
            domain,
            internet: None,
            pushback: None,
            spec,
            flows,
            droppers,
            taps,
            victim_agent,
            cross_traffic: Vec::new(),
        })
    }

    /// The multi-domain internet with the cascaded-pushback control
    /// plane.
    fn build_multi(spec: ScenarioSpec) -> Result<Scenario, WorkloadError> {
        let mut rng = SmallRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9));
        let mut sim = Simulator::new(spec.seed);
        if spec.trace_capacity > 0 {
            sim.enable_trace(spec.trace_capacity);
        }
        let n_stubs = spec.domains;
        let n_transit = spec.transit_topology.domain_count();

        // Flows split round-robin over the stubs; every stub domain must
        // still carry at least one host to be buildable.
        let mut stub_flow_counts = vec![0usize; n_stubs];
        for i in 0..spec.total_flows {
            stub_flow_counts[i % n_stubs] += 1;
        }
        let stub_cfgs: Vec<DomainConfig> = (0..n_stubs)
            .map(|s| DomainConfig {
                // The victim's domain keeps the paper's size; source
                // stubs are half-size edge networks.
                n_routers: if s == 0 {
                    spec.n_routers
                } else {
                    (spec.n_routers / 2).max(6)
                },
                n_hosts: stub_flow_counts[s].max(1),
                seed: spec.seed ^ 0xD0_4A1,
                ..DomainConfig::default()
            })
            .collect();
        let transit_cfg = DomainConfig {
            n_routers: 8,
            // Cross traffic needs a sender (host 0) and a sink (host 1)
            // per transit domain; without it one idle host suffices.
            n_hosts: if spec.cross_traffic_bps > 0.0 { 2 } else { 1 },
            seed: spec.seed ^ 0xD0_4A1,
            ..DomainConfig::default()
        };
        let internet_cfg = InternetConfig {
            stubs: stub_cfgs,
            transit: spec.transit_topology,
            transit_domain: transit_cfg,
            inter_link: LinkSpec::new(
                INTER_DOMAIN_BANDWIDTH_BPS,
                INTER_DOMAIN_DELAY,
                INTER_DOMAIN_QUEUE,
            ),
        };
        let internet = Internet::build(&mut sim, &internet_cfg).map_err(WorkloadError::Topology)?;
        let domain = internet.domains[0].domain.clone();

        // Victim endpoint + watches, exactly as in the single domain.
        let victim_agent = sim.add_agent(
            domain.victim_host,
            Box::new(VictimSink::default()),
            SimTime::ZERO,
        );
        sim.bind_local_addr(domain.victim_host, domain.victim_addr, victim_agent);
        sim.stats_mut()
            .watch_victim(domain.victim_host, spec.victim_bin);
        sim.stats_mut()
            .watch_arrivals(domain.victim_router, domain.victim_addr, spec.victim_bin);

        // One source-legality oracle over every domain's address plan: a
        // remote host's genuine address is legal everywhere.
        let validator = AddressValidator::Prefixes(
            internet
                .address_spaces()
                .flat_map(|space| {
                    (0..space.ingress_count())
                        .map(|i| (space.ingress_prefix(i), PREFIX_LEN))
                        .chain(std::iter::once((space.victim_prefix(), PREFIX_LEN)))
                        .collect::<Vec<_>>()
                })
                .collect(),
        );

        // Victim-domain taps feed the detector; border routers also
        // count inter-domain arrivals as domain entries.
        let border_links: Vec<(NodeId, mafic_netsim::LinkId)> = internet.domains[0]
            .upstream
            .iter()
            .map(|e| (e.border, e.in_link))
            .collect();
        let taps = install_taps(&mut sim, &spec, &domain, &border_links);

        // ATR filters + meters + coordinators, one set per domain —
        // heterogeneous per the resolved policy assignment.
        let policies = spec.resolved_policies();
        debug_assert_eq!(policies.len(), internet.domains.len());
        let mut droppers = Vec::new();
        let mut plan_domains = Vec::with_capacity(internet.domains.len());
        let pushback_config = spec.pushback_config();
        for (d, idom) in internet.domains.iter().enumerate() {
            let policy = policies[d];
            // The domain's ATRs: where victim-bound traffic enters it.
            // Non-participating domains deploy nothing at all.
            let atr_routers: Vec<NodeId> = if !policy.participating() {
                Vec::new()
            } else if d == 0 || idom.role == mafic_topology::DomainRole::Stub {
                idom.domain.ingress_routers.clone()
            } else {
                let mut borders: Vec<NodeId> = idom.upstream.iter().map(|e| e.border).collect();
                borders.sort();
                borders.dedup();
                borders
            };
            let mut atrs = Vec::with_capacity(atr_routers.len());
            let mut pre_meters = Vec::with_capacity(atr_routers.len());
            let mut post_meters = Vec::with_capacity(atr_routers.len());
            for &router in &atr_routers {
                let idx = sim.add_filter(
                    router,
                    Box::new(mafic_pushback::VictimRateMeter::new(domain.victim_addr)),
                );
                pre_meters.push((router, idx));
            }
            let domain_droppers =
                install_droppers(&mut sim, &spec, &atr_routers, &validator, d as u64, policy);
            for &router in &atr_routers {
                let idx = sim.add_filter(
                    router,
                    Box::new(mafic_pushback::VictimRateMeter::new(domain.victim_addr)),
                );
                post_meters.push((router, idx));
            }
            if d == 0 {
                droppers = domain_droppers.clone();
            }
            atrs.extend(domain_droppers);

            // Control channel at the gateway router. Installed for every
            // domain so the control address stays bound, but requests are
            // only ever addressed to participating domains.
            let channel =
                sim.add_agent(idom.gateway, Box::new(ControlChannel::new()), SimTime::ZERO);
            sim.bind_local_addr(idom.gateway, idom.ctrl_addr, channel);

            let role = if d == 0 {
                PushbackRole::Victim
            } else {
                PushbackRole::Upstream
            };
            let coordinator =
                DomainCoordinator::new(pushback_config, role, RequesterId::new(idom.ctrl_addr));
            let mut border_nodes: Vec<NodeId> = idom.upstream.iter().map(|e| e.border).collect();
            border_nodes.sort();
            border_nodes.dedup();
            plan_domains.push(PushbackDomainControl {
                coordinator,
                policy,
                channel,
                ctrl_addr: idom.ctrl_addr,
                gateway: idom.gateway,
                level: idom.level,
                upstream: effective_upstreams(&internet, &policies, d),
                border_nodes,
                atrs,
                pre_meters,
                post_meters,
                residual_bytes: 0,
            });
        }

        // Trust wiring: invert the escalation topology. Whoever domain
        // `d` may escalate to must recognize `d`'s boundary identity as
        // an authorized downstream requester — and `d` in turn believes
        // only those targets' replies (`Deny`, `Report`). Everybody
        // else stays untrusted. A compromised-but-authorized domain is
        // then stopped by attestation, not identity.
        let edges: Vec<(usize, usize)> = plan_domains
            .iter()
            .enumerate()
            .flat_map(|(d, dom)| dom.upstream.iter().map(move |up| (d, up.domain)))
            .collect();
        for (requester, target) in edges {
            let requester_id = RequesterId::new(plan_domains[requester].ctrl_addr);
            let target_id = RequesterId::new(plan_domains[target].ctrl_addr);
            plan_domains[target].coordinator.authorize(requester_id);
            plan_domains[requester]
                .coordinator
                .trust_upstream(target_id);
        }

        // Traffic: flow i lives in stub i % n_stubs.
        let n_legit = spec.legit_flow_count();
        let n_attack = spec.attack_flow_count();
        let mut flows = Vec::with_capacity(spec.total_flows);
        for i in 0..spec.total_flows {
            let s = i % n_stubs;
            let idom = if s == 0 { 0 } else { n_transit + s };
            let host = internet.domains[idom].domain.hosts[i / n_stubs];
            flows.push(provision_flow(
                &mut sim,
                &spec,
                &mut rng,
                i,
                n_legit,
                n_attack,
                &host,
                &internet.domains[idom].domain.address_space,
                domain.victim_addr,
                s,
            ));
        }

        // Background cross traffic through the transit tier: one
        // long-lived TCP flow per transit domain, host 0 of transit
        // level l toward host 1 of the next transit domain around the
        // tier (itself when the tier has a single domain) — innocent
        // bystander traffic sharing the congested inter-domain links
        // without ever touching the victim.
        let cross_traffic = if spec.cross_traffic_bps > 0.0 {
            provision_cross_traffic(&mut sim, &spec, &internet, n_transit)
        } else {
            Vec::new()
        };

        // Fixed-time detection: victim-domain defense at a fixed time.
        if let DetectionMode::AtTime(at) = spec.detection {
            for &(router, _) in &droppers {
                sim.send_control(
                    router,
                    mafic_netsim::FilterControl::PushbackStart {
                        victim: domain.victim_addr,
                    },
                    at,
                );
            }
        }

        Ok(Scenario {
            sim,
            domain,
            internet: Some(internet),
            pushback: Some(PushbackPlan {
                domains: plan_domains,
            }),
            spec,
            flows,
            droppers,
            taps,
            victim_agent,
            cross_traffic,
        })
    }
}

/// Port base of the transit cross-traffic flows (clear of the per-flow
/// `1024 + i` range used by the scenario's victim-bound senders).
const CROSS_TRAFFIC_PORT_BASE: u16 = 21000;

/// Provisions one background TCP flow per transit domain (sender at
/// host 0, sink at host 1 of the next transit domain around the tier).
/// The flows are declared legitimate, so their losses show up in the
/// collateral accounting — transit congestion now harms bystanders the
/// metrics can see. `cross_traffic_bps` bounds each flow's rate through
/// its congestion-window cap (approximate: window = rate × an assumed
/// 100 ms RTT).
fn provision_cross_traffic(
    sim: &mut Simulator,
    spec: &ScenarioSpec,
    internet: &Internet,
    n_transit: usize,
) -> Vec<FlowKey> {
    let mut keys = Vec::with_capacity(n_transit);
    let segment_bytes = 500.0;
    let assumed_rtt_s = 0.1;
    let max_cwnd = (spec.cross_traffic_bps * assumed_rtt_s / segment_bytes).clamp(2.0, 64.0);
    for t in 1..=n_transit {
        let dest = if n_transit == 1 {
            t
        } else {
            (t % n_transit) + 1
        };
        let src_host = &internet.domains[t].domain.hosts[0];
        let dst_host = &internet.domains[dest].domain.hosts[1];
        let key = FlowKey::new(
            src_host.addr,
            dst_host.addr,
            CROSS_TRAFFIC_PORT_BASE + t as u16,
            80,
        );
        let sink = sim.add_agent(
            dst_host.node,
            Box::new(VictimSink::default()),
            SimTime::ZERO,
        );
        sim.bind_local_addr(dst_host.node, dst_host.addr, sink);
        let tcp_config = TcpConfig {
            max_cwnd,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(2),
            ..TcpConfig::default()
        };
        let sender = TcpSender::new(key, tcp_config, false);
        let agent = sim.add_agent(src_host.node, Box::new(sender), SimTime::ZERO);
        sim.bind_local_addr(src_host.node, src_host.addr, agent);
        sim.stats_mut().declare_flow(key, false, true);
        keys.push(key);
    }
    keys
}

/// Installs the LogLog taps over the victim domain's routers (in
/// [`Domain::routers`] order). `border_links` lists inter-domain links
/// terminating at victim-domain border routers; their arrivals count as
/// domain entries for the detector's traffic matrix.
fn install_taps(
    sim: &mut Simulator,
    spec: &ScenarioSpec,
    domain: &Domain,
    border_links: &[(NodeId, mafic_netsim::LinkId)],
) -> Vec<(NodeId, usize)> {
    let mut taps = Vec::new();
    for &router in &domain.routers() {
        let (mut ingress_links, egress_addrs): (Vec<_>, Vec<Addr>) = if router
            == domain.victim_router
        {
            (Vec::new(), vec![domain.victim_addr])
        } else if let Some(ingress_index) = domain.ingress_routers.iter().position(|&r| r == router)
        {
            let links = domain
                .hosts
                .iter()
                .filter(|h| h.ingress_index == ingress_index)
                .map(|h| h.uplink)
                .collect();
            let addrs = domain
                .hosts
                .iter()
                .filter(|h| h.ingress_index == ingress_index)
                .map(|h| h.addr)
                .collect();
            (links, addrs)
        } else {
            (Vec::new(), Vec::new())
        };
        ingress_links.extend(
            border_links
                .iter()
                .filter(|&&(node, _)| node == router)
                .map(|&(_, link)| link),
        );
        let tap = LogLogTap::new(spec.loglog_precision, ingress_links, egress_addrs);
        let idx = sim.add_filter(router, Box::new(tap));
        taps.push((router, idx));
    }
    taps
}

/// Computes domain `d`'s effective escalation targets: each direct
/// upstream neighbor if it participates, otherwise the nearest
/// participating domains *beyond* it (requests route through the
/// non-participant's links — the coverage gap of partial deployment).
/// The local injection border stays the one facing the skipped
/// neighbor; `level_cost` records how many pushback levels the target
/// sits away, each costing one hop of the escalation budget.
fn effective_upstreams(
    internet: &Internet,
    policies: &[DefensePolicy],
    d: usize,
) -> Vec<PushbackUpstream> {
    let my_level = internet.domains[d].level;
    let mut targets = Vec::new();
    // (candidate domain, local border to inject at), depth-first in
    // construction order so the list is deterministic.
    let mut frontier: Vec<(usize, NodeId)> = internet.domains[d]
        .upstream
        .iter()
        .map(|e| (e.domain, e.border))
        .collect();
    frontier.reverse(); // pop() walks construction order
    while let Some((candidate, border)) = frontier.pop() {
        if policies[candidate].participating() {
            targets.push(PushbackUpstream {
                domain: candidate,
                ctrl_addr: internet.domains[candidate].ctrl_addr,
                border,
                level_cost: internet.domains[candidate].level.saturating_sub(my_level),
            });
        } else {
            for e in internet.domains[candidate].upstream.iter().rev() {
                frontier.push((e.domain, border));
            }
        }
    }
    targets
}

/// Installs one (inactive) defense dropper per router, per the domain's
/// resolved policy. `domain_salt` decorrelates filter RNGs across
/// domains. Non-participating policies install nothing.
fn install_droppers(
    sim: &mut Simulator,
    spec: &ScenarioSpec,
    routers: &[NodeId],
    validator: &AddressValidator,
    domain_salt: u64,
    policy: DefensePolicy,
) -> Vec<(NodeId, usize)> {
    let mut droppers = Vec::new();
    for (i, &router) in routers.iter().enumerate() {
        let filter_seed = spec
            .seed
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(domain_salt.wrapping_mul(0x10_0001))
            .wrapping_add(i as u64);
        let idx = match policy {
            DefensePolicy::FullMafic => {
                let config = MaficConfig {
                    drop_probability: spec.drop_probability,
                    timer_rtt_multiplier: spec.timer_rtt_multiplier,
                    decrease_threshold: spec.decrease_threshold,
                    label_mode: spec.label_mode,
                    nft_revalidate_after: spec.nft_revalidate_after,
                    seed: filter_seed,
                    ..MaficConfig::default()
                };
                sim.add_filter(
                    router,
                    Box::new(MaficFilter::new(config, validator.clone())),
                )
            }
            DefensePolicy::ProportionalDrop => sim.add_filter(
                router,
                Box::new(ProportionalFilter::new(spec.drop_probability, filter_seed)),
            ),
            DefensePolicy::AggregateRateLimit {
                limit_bytes_per_sec,
            } => sim.add_filter(router, Box::new(RateLimitFilter::new(limit_bytes_per_sec))),
            DefensePolicy::NonParticipating => continue,
        };
        droppers.push((router, idx));
    }
    droppers
}

/// Provisions flow `i` on `host`: a legitimate TCP sender for the first
/// `n_legit` indices, an attack zombie (with the configured spoof and
/// protocol mix) for the rest.
#[allow(clippy::too_many_arguments)]
fn provision_flow(
    sim: &mut Simulator,
    spec: &ScenarioSpec,
    rng: &mut SmallRng,
    i: usize,
    n_legit: usize,
    n_attack: usize,
    host: &HostInfo,
    address_space: &AddressSpace,
    victim_addr: Addr,
    stub_index: usize,
) -> FlowInfo {
    let src_port = 1024 + i as u16;
    let is_attack = i >= n_legit;
    if !is_attack {
        let key = FlowKey::new(host.addr, victim_addr, src_port, 80);
        let start = SimTime::ZERO
            + SimDuration::from_nanos(rng.gen_range(0..=spec.legit_start_spread.as_nanos().max(1)));
        // Moderate RTO bounds so nice flows regain their share
        // promptly after passing the probe test (Fig. 4b).
        let tcp_config = TcpConfig {
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(2),
            ..TcpConfig::default()
        };
        let sender = TcpSender::new(key, tcp_config, false);
        let agent = sim.add_agent(host.node, Box::new(sender), start);
        sim.bind_local_addr(host.node, host.addr, agent);
        sim.stats_mut().declare_flow(key, false, true);
        return FlowInfo {
            key,
            agent,
            is_attack: false,
            is_tcp: true,
            spoof: SpoofMode::None,
            ingress_index: host.ingress_index,
            stub_index,
        };
    }
    // Attack flow: pick spoofing and protocol by configured mix.
    let attack_rank = i - n_legit;
    let spoof_roll = (attack_rank as f64 + 0.5) / n_attack as f64;
    let spoof = if spoof_roll < spec.spoof_illegal {
        SpoofMode::Illegal
    } else if spoof_roll < spec.spoof_illegal + spec.spoof_legal {
        SpoofMode::LegalOtherSubnet
    } else {
        SpoofMode::None
    };
    let claimed_src = match spoof {
        SpoofMode::None => host.addr,
        SpoofMode::Illegal => address_space.random_illegal(rng),
        SpoofMode::LegalOtherSubnet => address_space
            .random_legal_spoof(host.ingress_index, rng)
            .unwrap_or(host.addr),
    };
    let tcp_like_roll = rng.gen::<f64>();
    let protocol = if tcp_like_roll < spec.attack_tcp_like {
        CbrProtocol::TcpLike
    } else {
        CbrProtocol::Udp
    };
    let key = FlowKey::new(claimed_src, victim_addr, src_port, 80);
    let config = CbrConfig {
        rate_pps: spec.attack_rate_pps(),
        packet_size: 500,
        jitter: 0.2,
        protocol,
    };
    let mut sender = UnresponsiveSender::new(key, config, true, spec.seed ^ (i as u64) << 3);
    sender.set_stop_after(spec.attack_end.unwrap_or(spec.end));
    if let Some((resume, stop)) = spec.second_wave {
        sender.set_second_wave(resume, stop);
    }
    let agent = sim.add_agent(host.node, Box::new(sender), spec.attack_start);
    sim.bind_local_addr(host.node, host.addr, agent);
    sim.stats_mut()
        .declare_flow(key, true, protocol == CbrProtocol::TcpLike);
    FlowInfo {
        key,
        agent,
        is_attack: true,
        is_tcp: protocol == CbrProtocol::TcpLike,
        spoof,
        ingress_index: host.ingress_index,
        stub_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic::DropPolicy;
    use mafic_topology::TransitTopology;

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            total_flows: 10,
            n_routers: 6,
            end: SimTime::from_secs_f64(2.0),
            ..ScenarioSpec::default()
        }
    }

    fn multi_spec() -> ScenarioSpec {
        ScenarioSpec {
            total_flows: 12,
            n_routers: 6,
            domains: 3,
            transit_topology: TransitTopology::Chain { depth: 1 },
            pushback_depth: 2,
            end: SimTime::from_secs_f64(2.0),
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn build_provisions_everything() {
        let s = Scenario::build(small_spec()).unwrap();
        assert_eq!(s.flows.len(), 10);
        assert_eq!(s.droppers.len(), s.domain.ingress_routers.len());
        assert_eq!(s.taps.len(), s.domain.routers().len());
        let attackers = s.flows.iter().filter(|f| f.is_attack).count();
        assert_eq!(attackers, small_spec().attack_flow_count());
        assert!(s.internet.is_none());
        assert!(s.pushback.is_none());
    }

    #[test]
    fn legit_flows_use_genuine_addresses() {
        let s = Scenario::build(small_spec()).unwrap();
        for (flow, host) in s.flows.iter().zip(s.domain.hosts.iter()) {
            if !flow.is_attack {
                assert_eq!(flow.key.src, host.addr);
                assert_eq!(flow.spoof, SpoofMode::None);
            }
        }
    }

    #[test]
    fn spoof_mix_is_respected() {
        let spec = ScenarioSpec {
            total_flows: 40,
            tcp_share: 0.5, // 20 attack flows
            spoof_illegal: 0.25,
            spoof_legal: 0.25,
            ..small_spec()
        };
        let s = Scenario::build(spec).unwrap();
        let attack: Vec<_> = s.flows.iter().filter(|f| f.is_attack).collect();
        assert_eq!(attack.len(), 20);
        let illegal = attack
            .iter()
            .filter(|f| f.spoof == SpoofMode::Illegal)
            .count();
        let legal = attack
            .iter()
            .filter(|f| f.spoof == SpoofMode::LegalOtherSubnet)
            .count();
        assert_eq!(illegal, 5, "25% of 20 attack flows");
        assert_eq!(legal, 5);
        for f in &attack {
            match f.spoof {
                SpoofMode::Illegal => {
                    assert!(!s.domain.address_space.is_legal(f.key.src));
                }
                SpoofMode::LegalOtherSubnet => {
                    assert!(s.domain.address_space.is_legal(f.key.src));
                }
                SpoofMode::None => {}
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = Scenario::build(small_spec()).unwrap();
        let b = Scenario::build(small_spec()).unwrap();
        let keys_a: Vec<_> = a.flows.iter().map(|f| f.key).collect();
        let keys_b: Vec<_> = b.flows.iter().map(|f| f.key).collect();
        assert_eq!(keys_a, keys_b);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let bad = ScenarioSpec {
            total_flows: 0,
            ..ScenarioSpec::default()
        };
        assert!(matches!(Scenario::build(bad), Err(WorkloadError::Spec(_))));
    }

    #[test]
    fn proportional_policy_installs_baseline_filters() {
        let spec = ScenarioSpec {
            policy: DropPolicy::Proportional,
            ..small_spec()
        };
        let s = Scenario::build(spec).unwrap();
        let (node, idx) = s.droppers[0];
        assert!(s.sim.filter::<ProportionalFilter>(node, idx).is_some());
    }

    #[test]
    fn multi_domain_build_wires_the_control_plane() {
        let s = Scenario::build(multi_spec()).unwrap();
        let net = s.internet.as_ref().expect("internet built");
        let plan = s.pushback.as_ref().expect("pushback plan built");
        // victim + 1 transit + 2 source stubs.
        assert_eq!(net.domains.len(), 4);
        assert_eq!(plan.domains.len(), 4);
        assert_eq!(plan.domains[0].level, 0);
        assert!(plan.domains[0].upstream.len() == 1, "victim → transit");
        assert_eq!(plan.domains[1].upstream.len(), 2, "transit → 2 stubs");
        assert!(plan.domains[2].upstream.is_empty(), "stubs are the top");
        // Every domain has matching meter/dropper counts.
        for d in &plan.domains {
            assert_eq!(d.atrs.len(), d.pre_meters.len());
            assert_eq!(d.atrs.len(), d.post_meters.len());
            assert!(!d.atrs.is_empty());
        }
        // Upstream ATR filters exist and are inactive.
        let (node, idx) = plan.domains[1].atrs[0];
        let filter = s.sim.filter::<MaficFilter>(node, idx).expect("dropper");
        assert!(!filter.is_active());
    }

    #[test]
    fn multi_domain_flows_spread_over_stubs() {
        let s = Scenario::build(multi_spec()).unwrap();
        let per_stub = |idx: usize| s.flows.iter().filter(|f| f.stub_index == idx).count();
        assert_eq!(per_stub(0), 4);
        assert_eq!(per_stub(1), 4);
        assert_eq!(per_stub(2), 4);
        // Remote hosts use their own domain's (globally legal) addresses.
        let net = s.internet.as_ref().unwrap();
        for f in s.flows.iter().filter(|f| f.spoof == SpoofMode::None) {
            let legal_somewhere = net.address_spaces().any(|a| a.is_legal(f.key.src));
            assert!(legal_somewhere, "{} must be legal", f.key.src);
        }
    }

    #[test]
    fn heterogeneous_policies_install_matching_filter_types() {
        let spec = ScenarioSpec {
            transit_policy: Some(DefensePolicy::AggregateRateLimit {
                limit_bytes_per_sec: 250_000.0,
            }),
            ..multi_spec()
        };
        let s = Scenario::build(spec).unwrap();
        let plan = s.pushback.as_ref().unwrap();
        // Victim domain (0) runs full MAFIC.
        let (node, idx) = plan.domains[0].atrs[0];
        assert!(s.sim.filter::<MaficFilter>(node, idx).is_some());
        // Transit domain (1) runs the rate limiter.
        let (node, idx) = plan.domains[1].atrs[0];
        let rl = s
            .sim
            .filter::<RateLimitFilter>(node, idx)
            .expect("transit ATR carries a rate limiter");
        assert_eq!(rl.limit_bytes_per_sec(), 250_000.0);
        assert!(!rl.is_active());
        // Source stubs (2, 3) run full MAFIC.
        let (node, idx) = plan.domains[2].atrs[0];
        assert!(s.sim.filter::<MaficFilter>(node, idx).is_some());
    }

    #[test]
    fn non_participating_domain_installs_nothing_and_is_skipped() {
        // Chain: victim(0) <- transit(1) <- stubs(2, 3). Opt the transit
        // domain out: the victim's escalation target must jump to the
        // stubs, two levels away.
        let spec = ScenarioSpec {
            policy_overrides: vec![(1, DefensePolicy::NonParticipating)],
            ..multi_spec()
        };
        let s = Scenario::build(spec).unwrap();
        let plan = s.pushback.as_ref().unwrap();
        assert!(plan.domains[1].atrs.is_empty(), "no filters deployed");
        assert!(plan.domains[1].pre_meters.is_empty());
        assert!(plan.domains[1].post_meters.is_empty());
        assert_eq!(plan.domains[1].policy, DefensePolicy::NonParticipating);
        // The victim skips over the transit domain to both stubs.
        let up = &plan.domains[0].upstream;
        let mut targets: Vec<usize> = up.iter().map(|u| u.domain).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![2, 3]);
        for u in up {
            assert_eq!(u.level_cost, 2, "stubs sit two levels up");
            // Injection still happens at the victim's own border router.
            assert!(s.domain.routers().contains(&u.border));
        }
        // Participating neighbors keep cost 1.
        let baseline = Scenario::build(multi_spec()).unwrap();
        let plan = baseline.pushback.as_ref().unwrap();
        assert!(plan.domains[0]
            .upstream
            .iter()
            .all(|u| u.domain == 1 && u.level_cost == 1));
    }

    #[test]
    fn fully_non_participating_upstream_leaves_no_targets() {
        let spec = ScenarioSpec {
            participation_fraction: 0.0,
            ..multi_spec()
        };
        let s = Scenario::build(spec).unwrap();
        let plan = s.pushback.as_ref().unwrap();
        assert!(
            plan.domains[0].upstream.is_empty(),
            "nobody to escalate to at fraction 0"
        );
        for d in &plan.domains[1..] {
            assert!(d.atrs.is_empty());
        }
    }

    #[test]
    fn cross_traffic_provisions_one_flow_per_transit_domain() {
        let spec = ScenarioSpec {
            cross_traffic_bps: 50_000.0,
            ..multi_spec()
        };
        let s = Scenario::build(spec).unwrap();
        let net = s.internet.as_ref().unwrap();
        // One transit level in multi_spec() → one cross flow.
        assert_eq!(s.cross_traffic.len(), 1);
        let key = s.cross_traffic[0];
        // Sender and sink both live in the transit tier; the victim is
        // never the destination.
        assert_ne!(key.dst, s.domain.victim_addr);
        let transit = &net.domains[1].domain;
        assert!(transit.hosts.iter().any(|h| h.addr == key.src));
        assert!(transit.hosts.iter().any(|h| h.addr == key.dst));
        // Without the knob, transit hosts stay idle and single-homed.
        let off = Scenario::build(multi_spec()).unwrap();
        assert!(off.cross_traffic.is_empty());
        assert_eq!(
            off.internet.as_ref().unwrap().domains[1].domain.hosts.len(),
            1
        );
    }

    #[test]
    fn multi_domain_build_is_deterministic() {
        let a = Scenario::build(multi_spec()).unwrap();
        let b = Scenario::build(multi_spec()).unwrap();
        let keys_a: Vec<_> = a.flows.iter().map(|f| f.key).collect();
        let keys_b: Vec<_> = b.flows.iter().map(|f| f.key).collect();
        assert_eq!(keys_a, keys_b);
        assert_eq!(a.sim.node_count(), b.sim.node_count());
        assert_eq!(a.sim.link_count(), b.sim.link_count());
    }
}
