//! Fig. 4 bench: traffic-reduction measurement (panel a) and the
//! bandwidth time-series extraction (panel b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mafic_bench::{bench_spec, bench_spec_with_vt};
use mafic_workload::{run_spec, ScenarioSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_cutting");
    group.sample_size(10);
    for pd in [0.7, 0.8, 0.9] {
        group.bench_with_input(BenchmarkId::new("panel_a_pd", pd), &pd, |b, &pd| {
            b.iter(|| {
                let outcome = run_spec(ScenarioSpec {
                    drop_probability: pd,
                    ..bench_spec()
                })
                .expect("run");
                assert!(outcome.report.traffic_reduction_pct > 30.0);
            });
        });
    }
    for vt in [10usize, 20, 30] {
        group.bench_with_input(BenchmarkId::new("panel_b_vt", vt), &vt, |b, &vt| {
            b.iter(|| {
                let outcome = run_spec(bench_spec_with_vt(vt)).expect("run");
                assert!(!outcome.series.is_empty());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
