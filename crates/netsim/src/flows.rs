//! Flow interning: dense [`FlowId`] handles for packet 4-tuples.
//!
//! The per-packet hot path used to hash the full [`FlowKey`] once per
//! table (SFT, NFT, PDT, arrival tracker, stats — five-plus hashes per
//! packet). The interner hashes the key exactly once, at node arrival,
//! and hands out a dense `u32` handle; every downstream structure is then
//! a plain array index away ([`FlowSlab`]).
//!
//! Contracts:
//!
//! * **Minting** — only the [`crate::Simulator`] (and test harnesses)
//!   intern keys; filters and agents receive already-minted ids through
//!   [`crate::PacketEnv`] / [`crate::AgentCtx`].
//! * **Stability** — an id is valid for the lifetime of the interner (one
//!   simulation run). Table flushes (e.g. MAFIC's `PushbackStop`) drop
//!   per-flow *state*, never the id ↔ key binding, so a flow keeps its id
//!   across defense activations.
//! * **Determinism** — ids are minted in first-arrival order, which is
//!   itself deterministic, so id-ordered iteration over a [`FlowSlab`]
//!   replays identically for a given seed.

use crate::packet::FlowKey;
use std::fmt;

/// Dense handle for one interned flow 4-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u32);

impl FlowId {
    /// Raw dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a raw index (test harnesses only; an id not
    /// minted by an interner panics at resolve time).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        FlowId(u32::try_from(index).expect("flow index fits u32"))
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// SplitMix64 finalizer — the interner's probe hash.
///
/// Duplicated from `mafic-loglog` deliberately: the simulator substrate
/// must not depend on the sketch crate.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn key_hash(key: FlowKey) -> u64 {
    let (a, b) = key.as_words();
    mix64(a ^ mix64(b))
}

/// Mints dense [`FlowId`]s for flow 4-tuples.
///
/// Internally an open-addressing (linear probing) index over a slab of
/// keys: one well-mixed hash and a short probe run per lookup, no
/// per-entry heap allocation, and deterministic behaviour independent of
/// any ambient hasher state.
///
/// # Example
///
/// ```
/// use mafic_netsim::{Addr, FlowInterner, FlowKey};
///
/// let mut interner = FlowInterner::new();
/// let key = FlowKey::new(Addr::new(1), Addr::new(2), 3, 4);
/// let id = interner.intern(key);
/// assert_eq!(interner.intern(key), id, "stable per key");
/// assert_eq!(interner.resolve(id), key, "round-trips");
/// ```
#[derive(Debug, Clone)]
pub struct FlowInterner {
    /// id → key (the slab).
    keys: Vec<FlowKey>,
    /// Open-addressing index: `0` = empty, otherwise `id + 1`.
    index: Vec<u32>,
    /// `index.len() - 1`; `index.len()` is a power of two.
    mask: usize,
}

impl Default for FlowInterner {
    fn default() -> Self {
        FlowInterner::new()
    }
}

impl FlowInterner {
    const MIN_SLOTS: usize = 64;

    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        FlowInterner {
            keys: Vec::new(),
            index: vec![0; Self::MIN_SLOTS],
            mask: Self::MIN_SLOTS - 1,
        }
    }

    /// Number of distinct flows interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no flow has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The id for `key`, minting a fresh one on first sight.
    pub fn intern(&mut self, key: FlowKey) -> FlowId {
        let mut slot = key_hash(key) as usize & self.mask;
        loop {
            match self.index[slot] {
                0 => break,
                stored => {
                    let id = (stored - 1) as usize;
                    if self.keys[id] == key {
                        return FlowId(stored - 1);
                    }
                    slot = (slot + 1) & self.mask;
                }
            }
        }
        let id = u32::try_from(self.keys.len()).expect("flow count fits u32");
        self.keys.push(key);
        self.index[slot] = id + 1;
        // Grow at 3/4 load to keep probe runs short.
        if self.keys.len() * 4 >= self.index.len() * 3 {
            self.grow();
        }
        FlowId(id)
    }

    /// The id for `key`, if it has been interned.
    #[must_use]
    pub fn lookup(&self, key: FlowKey) -> Option<FlowId> {
        let mut slot = key_hash(key) as usize & self.mask;
        loop {
            match self.index[slot] {
                0 => return None,
                stored => {
                    if self.keys[(stored - 1) as usize] == key {
                        return Some(FlowId(stored - 1));
                    }
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }

    /// The 4-tuple an id was minted for.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not minted by this interner.
    #[must_use]
    pub fn resolve(&self, id: FlowId) -> FlowKey {
        self.keys[id.index()]
    }

    /// Iterates `(id, key)` pairs in minting order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, FlowKey)> + '_ {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (FlowId(i as u32), k))
    }

    /// Serializes the interner for a checkpoint: the key slab in minting
    /// order. The probe index is derived state and is rebuilt on restore
    /// by re-interning, which reproduces the identical table (interning
    /// is a pure function of the key sequence).
    pub(crate) fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        w.write_usize(self.keys.len());
        for &key in &self.keys {
            crate::packet::snap_flow_key(&key, w);
        }
    }

    /// Overlays checkpointed interner state.
    pub(crate) fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        let n = r.read_usize()?;
        *self = FlowInterner::new();
        for _ in 0..n {
            let key = crate::packet::read_flow_key(r)?;
            let _ = self.intern(key);
        }
        Ok(())
    }

    fn grow(&mut self) {
        let new_slots = self.index.len() * 2;
        self.index.clear();
        self.index.resize(new_slots, 0);
        self.mask = new_slots - 1;
        for (i, &key) in self.keys.iter().enumerate() {
            let mut slot = key_hash(key) as usize & self.mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & self.mask;
            }
            self.index[slot] = i as u32 + 1;
        }
    }
}

/// Dense per-flow storage indexed by [`FlowId`].
///
/// A growable `Vec<Option<T>>`: O(1) access with no hashing, iteration in
/// id order (deterministic), and cheap clearing. This is the backing
/// store for every per-flow table on the packet hot path.
#[derive(Debug, Clone)]
pub struct FlowSlab<T> {
    slots: Vec<Option<T>>,
    occupied: usize,
}

impl<T> Default for FlowSlab<T> {
    fn default() -> Self {
        FlowSlab::new()
    }
}

impl<T> FlowSlab<T> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        FlowSlab {
            slots: Vec::new(),
            occupied: 0,
        }
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True if no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The value for `id`, if present.
    #[must_use]
    pub fn get(&self, id: FlowId) -> Option<&T> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the value for `id`, if present.
    pub fn get_mut(&mut self, id: FlowId) -> Option<&mut T> {
        self.slots.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// True if `id` has a value.
    #[must_use]
    pub fn contains(&self, id: FlowId) -> bool {
        self.get(id).is_some()
    }

    /// Stores `value` for `id`, returning the previous value if any.
    pub fn insert(&mut self, id: FlowId, value: T) -> Option<T> {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.occupied += 1;
        }
        old
    }

    /// Removes and returns the value for `id`.
    pub fn remove(&mut self, id: FlowId) -> Option<T> {
        let old = self.slots.get_mut(id.index()).and_then(Option::take);
        if old.is_some() {
            self.occupied -= 1;
        }
        old
    }

    /// Drops all values, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.occupied = 0;
    }

    /// Iterates occupied `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (FlowId(i as u32), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;

    fn key(n: u32) -> FlowKey {
        FlowKey::new(Addr::new(n), Addr::new(n ^ 0xFFFF), (n % 60_000) as u16, 80)
    }

    #[test]
    fn interning_is_dense_and_stable() {
        let mut interner = FlowInterner::new();
        let a = interner.intern(key(1));
        let b = interner.intern(key(2));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(interner.intern(key(1)), a);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_round_trips_through_growth() {
        let mut interner = FlowInterner::new();
        let ids: Vec<FlowId> = (0..10_000).map(|n| interner.intern(key(n))).collect();
        for (n, &id) in ids.iter().enumerate() {
            assert_eq!(interner.resolve(id), key(n as u32));
            assert_eq!(interner.lookup(key(n as u32)), Some(id));
        }
        assert_eq!(interner.len(), 10_000);
    }

    #[test]
    fn lookup_misses_are_none() {
        let mut interner = FlowInterner::new();
        interner.intern(key(1));
        assert_eq!(interner.lookup(key(2)), None);
    }

    #[test]
    fn iteration_is_in_minting_order() {
        let mut interner = FlowInterner::new();
        for n in [5u32, 3, 9] {
            interner.intern(key(n));
        }
        let keys: Vec<FlowKey> = interner.iter().map(|(_, k)| k).collect();
        assert_eq!(keys, vec![key(5), key(3), key(9)]);
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = FlowSlab::new();
        let id = FlowId::from_index(7);
        assert!(slab.get(id).is_none());
        assert_eq!(slab.insert(id, "a"), None);
        assert_eq!(slab.insert(id, "b"), Some("a"));
        assert_eq!(slab.len(), 1);
        *slab.get_mut(id).unwrap() = "c";
        assert_eq!(slab.remove(id), Some("c"));
        assert!(slab.is_empty());
        assert_eq!(slab.remove(id), None);
    }

    #[test]
    fn slab_iterates_in_id_order() {
        let mut slab = FlowSlab::new();
        slab.insert(FlowId::from_index(4), 40);
        slab.insert(FlowId::from_index(1), 10);
        slab.insert(FlowId::from_index(2), 20);
        let got: Vec<(usize, i32)> = slab.iter().map(|(id, &v)| (id.index(), v)).collect();
        assert_eq!(got, vec![(1, 10), (2, 20), (4, 40)]);
    }

    #[test]
    fn slab_clear_keeps_capacity_drops_values() {
        let mut slab = FlowSlab::new();
        for i in 0..16 {
            slab.insert(FlowId::from_index(i), i);
        }
        slab.clear();
        assert!(slab.is_empty());
        assert!(slab.get(FlowId::from_index(3)).is_none());
    }

    #[test]
    fn flow_id_display() {
        assert_eq!(FlowId::from_index(3).to_string(), "f3");
    }
}
