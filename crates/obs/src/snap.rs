//! Checkpoint snapshot container: a deterministic, versioned binary
//! format for mid-run simulator state.
//!
//! A snapshot is a sequence of **labeled sections** (one per ledger
//! component, e.g. `netsim/scheduler`, `dom2/coord`) under a header
//! mirroring [`crate::LedgerHeader`]: format version, crate version,
//! seed, spec fingerprint, plus the capture instant (sim nanos and
//! monitor-interval index). Integrity is layered:
//!
//! 1. every section carries an FNV-1a checksum of its payload, so a
//!    corrupted byte is attributed to a *named* section at decode time;
//! 2. the header and component-hash table carry their own checksum;
//! 3. the embedded component-hash table holds each component's
//!    [`crate::StateHash`] digest at capture time — after overlaying
//!    the payloads onto a rebuilt scenario, the restorer recomputes
//!    every digest and rejects on the first mismatch, again with a
//!    named component.
//!
//! All multi-byte values are little-endian; strings are length-prefixed
//! UTF-8. The format has no alignment, no padding, and no map ordering
//! to get wrong: encode is a pure function of the section list, so two
//! captures of identical state are byte-identical.

use crate::fnv::fnv64;
use std::fmt;

/// Snapshot wire-format version; bump on any incompatible change.
pub const SNAP_VERSION: u32 = 1;

/// The 8-byte magic that opens every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"MAFICSNP";

/// Why a snapshot failed to decode or restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before a complete value.
    Truncated,
    /// The file does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The format version is not [`SNAP_VERSION`].
    Version {
        /// The version found in the file.
        found: u32,
    },
    /// A header field does not match what the restoring context
    /// requires (seed, spec fingerprint, crate version).
    HeaderMismatch {
        /// The offending header field.
        field: &'static str,
        /// The value the restorer expected.
        expected: String,
        /// The value embedded in the snapshot.
        found: String,
    },
    /// A section's payload checksum does not match its bytes.
    Corrupt {
        /// The named section (or `header`).
        section: String,
    },
    /// A section the restorer needs is absent.
    MissingSection {
        /// The missing section's label.
        section: String,
    },
    /// After overlaying state, a component's recomputed state hash does
    /// not match the digest embedded at capture time.
    StateMismatch {
        /// The named component.
        component: String,
        /// Digest embedded in the snapshot.
        expected: u64,
        /// Digest recomputed after restore.
        found: u64,
    },
    /// The payload decoded but its contents are structurally invalid
    /// (bad enum tag, non-UTF-8 string, impossible length).
    Malformed(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a MAFIC snapshot (bad magic)"),
            SnapError::Version { found } => write!(
                f,
                "unsupported snapshot format version {found} (supported: {SNAP_VERSION})"
            ),
            SnapError::HeaderMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "snapshot header mismatch: {field} is {found}, restore context requires {expected}"
            ),
            SnapError::Corrupt { section } => {
                write!(
                    f,
                    "snapshot section {section:?} is corrupt (checksum mismatch)"
                )
            }
            SnapError::MissingSection { section } => {
                write!(f, "snapshot is missing section {section:?}")
            }
            SnapError::StateMismatch {
                component,
                expected,
                found,
            } => write!(
                f,
                "restored state hash mismatch in component {component:?}: \
                 snapshot recorded {expected:016x}, restore produced {found:016x}"
            ),
            SnapError::Malformed(why) => write!(f, "malformed snapshot payload: {why}"),
        }
    }
}

/// Little-endian byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// The bytes written so far, consuming the writer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to 64 bits.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Appends an `f64` via its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian cursor over a snapshot payload.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf` starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — restorers should check
    /// this so trailing garbage is rejected, not silently ignored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` (little-endian).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn read_u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` (little-endian).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn read_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (little-endian).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn read_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        Ok(u64::from_le_bytes(le))
    }

    /// Reads a `u128` (little-endian).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn read_u128(&mut self) -> Result<u128, SnapError> {
        let b = self.take(16)?;
        let mut le = [0u8; 16];
        le.copy_from_slice(b);
        Ok(u128::from_le_bytes(le))
    }

    /// Reads a `usize` (stored as 64 bits).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input, or
    /// [`SnapError::Malformed`] if the value exceeds this platform's
    /// `usize`.
    pub fn read_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Malformed(format!("usize out of range: {v}")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn read_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a bool; any byte other than 0 or 1 is malformed.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input, or
    /// [`SnapError::Malformed`] on a non-boolean byte.
    pub fn read_bool(&mut self) -> Result<bool, SnapError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Malformed(format!("bad bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input, or
    /// [`SnapError::Malformed`] on invalid UTF-8.
    pub fn read_str(&mut self) -> Result<String, SnapError> {
        let n = self.read_usize()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Malformed("non-UTF-8 string".to_string()))
    }

    /// Reads a length-prefixed byte slice.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.read_usize()?;
        self.take(n)
    }
}

/// Anything that can serialize its mutable run state into a snapshot
/// section and later overlay it back onto a freshly rebuilt instance.
///
/// The contract mirrors [`crate::StateHash`]: implementations must
/// visit fields in a fixed, documented order, must exclude pure caches
/// (which are invalidated on restore instead), and — unlike `StateHash`
/// — **must include RNG internals**, because a restored run continues
/// the stream mid-way rather than replaying it from the seed.
pub trait SnapshotState {
    /// Serializes this component's mutable state.
    fn snap_save(&self, w: &mut SnapWriter);

    /// Overlays previously saved state onto `self`, which the caller
    /// has rebuilt to the same structural shape (same spec, same
    /// build-time provisioning).
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] if the payload is truncated or malformed.
    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// A snapshot's header: the ledger header's identity fields plus the
/// capture instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Wire-format version ([`SNAP_VERSION`] when written by this build).
    pub snap_version: u32,
    /// Workspace crate version that captured the snapshot.
    pub crate_version: String,
    /// The run's root seed.
    pub seed: u64,
    /// FNV-1a of the spec's debug rendering (same derivation as the
    /// run ledger's).
    pub spec_fingerprint: u64,
    /// Simulation clock at capture, in nanoseconds.
    pub at_nanos: u64,
    /// Zero-based monitor-interval index at capture.
    pub interval_index: u64,
}

/// A decoded (or under-construction) snapshot: header, the
/// component-hash table, and the labeled sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Identity and capture-instant metadata.
    pub header: SnapshotHeader,
    /// Each component's [`crate::StateHash`] digest at capture time, in
    /// recording order.
    pub component_hashes: Vec<(String, u64)>,
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot under `header`.
    #[must_use]
    pub fn new(header: SnapshotHeader) -> Self {
        Snapshot {
            header,
            component_hashes: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Appends a labeled section.
    ///
    /// # Panics
    ///
    /// Panics if a section with the same label already exists — every
    /// component serializes exactly once.
    pub fn add_section(&mut self, label: &str, payload: Vec<u8>) {
        assert!(
            !self.sections.iter().any(|(l, _)| l == label),
            "duplicate snapshot section {label:?}"
        );
        self.sections.push((label.to_string(), payload));
    }

    /// Looks up a section's payload by label.
    #[must_use]
    pub fn section(&self, label: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, p)| p.as_slice())
    }

    /// Section labels in file order.
    #[must_use]
    pub fn section_labels(&self) -> Vec<&str> {
        self.sections.iter().map(|(l, _)| l.as_str()).collect()
    }

    /// Serializes the snapshot to its binary form. Encoding is a pure
    /// function of the contents: identical state produces identical
    /// bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut head = SnapWriter::new();
        head.write_str(&self.header.crate_version);
        head.write_u64(self.header.seed);
        head.write_u64(self.header.spec_fingerprint);
        head.write_u64(self.header.at_nanos);
        head.write_u64(self.header.interval_index);
        head.write_u64(self.component_hashes.len() as u64);
        for (label, hash) in &self.component_hashes {
            head.write_str(label);
            head.write_u64(*hash);
        }
        let head = head.into_bytes();

        let mut out = SnapWriter::new();
        out.write_raw(&SNAP_MAGIC);
        out.write_u32(SNAP_VERSION);
        out.write_raw(&head);
        out.write_u64(fnv64(&head));
        out.write_u64(self.sections.len() as u64);
        for (label, payload) in &self.sections {
            out.write_str(label);
            out.write_u64(fnv64(payload));
            out.write_bytes(payload);
        }
        out.into_bytes()
    }

    /// Decodes and integrity-checks a snapshot: magic, format version,
    /// the header/table checksum, and every section's payload checksum.
    /// Header *mismatch* checks (seed, fingerprint) are the restorer's
    /// job — decode only guarantees the bytes are self-consistent.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadMagic`], [`SnapError::Version`],
    /// [`SnapError::Truncated`], [`SnapError::Malformed`], or
    /// [`SnapError::Corrupt`] naming the damaged section (`header` for
    /// the header/table region).
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        if r.take(SNAP_MAGIC.len())? != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let snap_version = r.read_u32()?;
        if snap_version != SNAP_VERSION {
            return Err(SnapError::Version {
                found: snap_version,
            });
        }
        let head_start = r.pos;
        let crate_version = r.read_str()?;
        let seed = r.read_u64()?;
        let spec_fingerprint = r.read_u64()?;
        let at_nanos = r.read_u64()?;
        let interval_index = r.read_u64()?;
        let n_hashes = r.read_usize()?;
        let mut component_hashes = Vec::with_capacity(n_hashes.min(1024));
        for _ in 0..n_hashes {
            let label = r.read_str()?;
            let hash = r.read_u64()?;
            component_hashes.push((label, hash));
        }
        let head_bytes = &bytes[head_start..r.pos];
        let head_checksum = r.read_u64()?;
        if fnv64(head_bytes) != head_checksum {
            return Err(SnapError::Corrupt {
                section: "header".to_string(),
            });
        }
        let n_sections = r.read_usize()?;
        let mut sections = Vec::with_capacity(n_sections.min(1024));
        for _ in 0..n_sections {
            let label = r.read_str()?;
            let checksum = r.read_u64()?;
            let payload = r.read_bytes()?;
            if fnv64(payload) != checksum {
                return Err(SnapError::Corrupt { section: label });
            }
            sections.push((label, payload.to_vec()));
        }
        if !r.is_empty() {
            return Err(SnapError::Malformed(format!(
                "{} trailing bytes after the last section",
                r.remaining()
            )));
        }
        Ok(Snapshot {
            header: SnapshotHeader {
                snap_version,
                crate_version,
                seed,
                spec_fingerprint,
                at_nanos,
                interval_index,
            },
            component_hashes,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(SnapshotHeader {
            snap_version: SNAP_VERSION,
            crate_version: "0.1.0".to_string(),
            seed: 42,
            spec_fingerprint: 0xfeed_beef,
            at_nanos: 1_500_000_000,
            interval_index: 15,
        });
        s.component_hashes.push(("netsim/core".to_string(), 0x1111));
        s.component_hashes.push(("dom0/coord".to_string(), 0x2222));
        let mut w = SnapWriter::new();
        w.write_u64(7);
        w.write_str("payload");
        s.add_section("netsim/core", w.into_bytes());
        s.add_section("dom0/coord", vec![1, 2, 3]);
        s
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = sample();
        let bytes = s.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // Re-encoding the decoded snapshot reproduces the exact bytes.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().encode();
        for cut in [0, 4, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapError::Truncated | SnapError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert_eq!(Snapshot::decode(&bytes).unwrap_err(), SnapError::BadMagic);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().encode();
        bytes[8] = 99; // version field follows the 8-byte magic
        assert_eq!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapError::Version { found: 99 }
        );
    }

    #[test]
    fn flipped_payload_byte_names_the_section() {
        let s = sample();
        let bytes = s.encode();
        // Locate the second section's payload (bytes [1,2,3]) and flip
        // one of them.
        let idx = bytes
            .windows(3)
            .rposition(|w| w == [1, 2, 3])
            .expect("payload present");
        let mut bad = bytes.clone();
        bad[idx + 1] ^= 0x40;
        match Snapshot::decode(&bad).unwrap_err() {
            SnapError::Corrupt { section } => assert_eq!(section, "dom0/coord"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn flipped_header_byte_is_detected() {
        let bytes = sample().encode();
        // Flip a byte inside the seed field (starts after magic,
        // version, and the length-prefixed crate version).
        let seed_off = 8 + 4 + 8 + "0.1.0".len();
        let mut bad = bytes.clone();
        bad[seed_off] ^= 0x01;
        match Snapshot::decode(&bad).unwrap_err() {
            SnapError::Corrupt { section } => assert_eq!(section, "header"),
            other => panic!("expected header corruption, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapError::Malformed(_)
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn duplicate_sections_are_rejected() {
        let mut s = sample();
        s.add_section("netsim/core", Vec::new());
    }

    #[test]
    fn reader_primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.write_u8(7);
        w.write_u16(0xBEEF);
        w.write_u32(0xDEAD_BEEF);
        w.write_u64(u64::MAX);
        w.write_u128(u128::MAX - 1);
        w.write_usize(12345);
        w.write_f64(-0.0);
        w.write_bool(true);
        w.write_bool(false);
        w.write_str("héllo");
        w.write_bytes(&[9, 8, 7]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX);
        assert_eq!(r.read_u128().unwrap(), u128::MAX - 1);
        assert_eq!(r.read_usize().unwrap(), 12345);
        assert_eq!(r.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.read_bool().unwrap());
        assert!(!r.read_bool().unwrap());
        assert_eq!(r.read_str().unwrap(), "héllo");
        assert_eq!(r.read_bytes().unwrap(), &[9, 8, 7]);
        assert!(r.is_empty());
        assert_eq!(r.read_u8().unwrap_err(), SnapError::Truncated);
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_malformed() {
        let mut r = SnapReader::new(&[2]);
        assert!(matches!(
            r.read_bool().unwrap_err(),
            SnapError::Malformed(_)
        ));
        let mut w = SnapWriter::new();
        w.write_u64(2);
        w.write_raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.read_str().unwrap_err(), SnapError::Malformed(_)));
    }

    #[test]
    fn errors_render_named_coordinates() {
        let e = SnapError::StateMismatch {
            component: "dom2/coord".to_string(),
            expected: 0xAB,
            found: 0xCD,
        };
        let text = e.to_string();
        assert!(text.contains("dom2/coord"), "{text}");
        assert!(text.contains("00000000000000ab"), "{text}");
        let e = SnapError::HeaderMismatch {
            field: "seed",
            expected: "1".to_string(),
            found: "2".to_string(),
        };
        assert!(e.to_string().contains("seed"), "{e}");
    }
}
