//! Victim detection and Attack Transit Router (ATR) identification.
//!
//! The pushback pipeline watches the estimated per-router egress
//! cardinalities `|D_j|`. When a router's egress count exceeds an absolute
//! floor *and* a multiple of its trailing baseline, the router is flagged
//! as a DDoS victim. The ingress routers whose estimated contribution
//! `a_ij` toward the victim exceeds a configurable share are reported as
//! ATRs — the routers where MAFIC dropping is then activated.

use crate::matrix::{RouterSketchId, TrafficMatrix};
use std::fmt;

/// Tunables for [`VictimDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Absolute egress-cardinality floor below which no alarm is raised;
    /// suppresses alarms on quiet domains where sketch noise dominates.
    pub min_cardinality: f64,
    /// Alarm when `|D_j|` exceeds `baseline × surge_factor`.
    pub surge_factor: f64,
    /// Exponential smoothing weight for the per-router baseline
    /// (`baseline ← (1−w)·baseline + w·observation`).
    pub baseline_weight: f64,
    /// Minimum share of the victim's `|D_j|` an ingress must contribute to
    /// be named an ATR.
    pub atr_share: f64,
    /// Observation rounds that only train the baseline and never alarm.
    /// Covers the initial ramp (e.g. TCP slow start filling the domain),
    /// which would otherwise look like a surge against an empty baseline.
    pub warmup_rounds: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_cardinality: 500.0,
            surge_factor: 2.5,
            baseline_weight: 0.3,
            atr_share: 0.02,
            warmup_rounds: 5,
        }
    }
}

impl DetectorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field when a
    /// value is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_cardinality.is_nan() || self.min_cardinality < 0.0 {
            return Err(format!(
                "min_cardinality must be >= 0, got {}",
                self.min_cardinality
            ));
        }
        if self.surge_factor.is_nan() || self.surge_factor <= 1.0 {
            return Err(format!(
                "surge_factor must be > 1, got {}",
                self.surge_factor
            ));
        }
        if !(0.0 < self.baseline_weight && self.baseline_weight <= 1.0) {
            return Err(format!(
                "baseline_weight must be in (0, 1], got {}",
                self.baseline_weight
            ));
        }
        if !(0.0 < self.atr_share && self.atr_share < 1.0) {
            return Err(format!(
                "atr_share must be in (0, 1), got {}",
                self.atr_share
            ));
        }
        Ok(())
    }
}

/// Verdict produced by one observation round.
#[derive(Debug, Clone, PartialEq)]
pub enum VictimVerdict {
    /// No router is under attack this round.
    Normal,
    /// A victim was identified together with its attack-transit ingresses.
    UnderAttack(AtrReport),
}

/// The pushback report: who is under attack and which ingresses carry it.
#[derive(Debug, Clone, PartialEq)]
pub struct AtrReport {
    /// The router whose egress traffic surged.
    pub victim: RouterSketchId,
    /// Estimated `|D_victim|` this round.
    pub egress_cardinality: f64,
    /// Ingress routers (and their estimated contributions `a_ij`) whose
    /// share exceeded [`DetectorConfig::atr_share`], descending by volume.
    pub attack_transit_routers: Vec<(RouterSketchId, f64)>,
}

impl fmt::Display for AtrReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "victim {} (|D|≈{:.0}) via {} ATRs",
            self.victim,
            self.egress_cardinality,
            self.attack_transit_routers.len()
        )
    }
}

/// Stateful victim detector fed with periodic [`TrafficMatrix`] snapshots.
///
/// # Example
///
/// ```
/// use mafic_loglog::{DetectorConfig, VictimDetector, VictimVerdict};
/// use mafic_loglog::{RouterSketch, TrafficMatrix, Precision};
///
/// let mut det = VictimDetector::new(DetectorConfig::default()).unwrap();
/// // Quiet round: builds the baseline.
/// let quiet = TrafficMatrix::estimate(&[RouterSketch::new(Precision::P10)]).unwrap();
/// assert_eq!(det.observe(&quiet), VictimVerdict::Normal);
/// ```
#[derive(Debug, Clone)]
pub struct VictimDetector {
    config: DetectorConfig,
    /// Per-router smoothed baseline of `|D_j|`; grown on demand.
    baselines: Vec<f64>,
    rounds: u64,
}

impl VictimDetector {
    /// Creates a detector.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `config` is out of range.
    pub fn new(config: DetectorConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(VictimDetector {
            config,
            baselines: Vec::new(),
            rounds: 0,
        })
    }

    /// Number of observation rounds consumed.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The per-router smoothed baselines accumulated so far.
    #[must_use]
    pub fn baselines(&self) -> &[f64] {
        &self.baselines
    }

    /// Replaces the learned baselines and round counter with checkpointed
    /// values (the write half of [`VictimDetector::baselines`] /
    /// [`VictimDetector::rounds`]). The config is construction-time and
    /// is not part of the restorable state.
    pub fn restore_parts(&mut self, baselines: Vec<f64>, rounds: u64) {
        self.baselines = baselines;
        self.rounds = rounds;
    }

    /// Feeds one traffic-matrix snapshot; returns the verdict for it.
    ///
    /// Baselines update only from non-alarming observations so a sustained
    /// attack cannot launder itself into the baseline.
    pub fn observe(&mut self, matrix: &TrafficMatrix) -> VictimVerdict {
        self.rounds += 1;
        if self.baselines.len() < matrix.len() {
            self.baselines.resize(matrix.len(), 0.0);
        }
        let mut verdict = VictimVerdict::Normal;
        for j in 0..matrix.len() {
            let id = RouterSketchId(j);
            let observed = matrix.destination_cardinality(id);
            let baseline = self.baselines[j];
            let alarming = observed >= self.config.min_cardinality
                && (baseline == 0.0 || observed > baseline * self.config.surge_factor);
            if alarming && self.rounds > self.config.warmup_rounds {
                // Warm-up rounds only train the baseline.
                let report = self.build_report(matrix, id, observed);
                // Report the worst victim only (the paper defends a single
                // last-hop victim at a time).
                let better = match &verdict {
                    VictimVerdict::Normal => true,
                    VictimVerdict::UnderAttack(prev) => observed > prev.egress_cardinality,
                };
                if better && !report.attack_transit_routers.is_empty() {
                    verdict = VictimVerdict::UnderAttack(report);
                }
            } else {
                let w = self.config.baseline_weight;
                self.baselines[j] = (1.0 - w) * baseline + w * observed;
            }
        }
        verdict
    }

    fn build_report(
        &self,
        matrix: &TrafficMatrix,
        victim: RouterSketchId,
        egress_cardinality: f64,
    ) -> AtrReport {
        let mut atrs: Vec<(RouterSketchId, f64)> = matrix
            .contributions_to(victim)
            .into_iter()
            .filter(|&(i, a)| i != victim && a >= self.config.atr_share * egress_cardinality)
            .collect();
        atrs.sort_by(|a, b| b.1.total_cmp(&a.1));
        AtrReport {
            victim,
            egress_cardinality,
            attack_transit_routers: atrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loglog::Precision;
    use crate::setunion::RouterSketch;

    /// Domain with 2 ingresses and 1 egress; `volume` packets per ingress.
    fn snapshot(v0: u64, v1: u64) -> TrafficMatrix {
        let mut r0 = RouterSketch::new(Precision::P12);
        let mut r1 = RouterSketch::new(Precision::P12);
        let mut r2 = RouterSketch::new(Precision::P12);
        let mut id = 0u64;
        for _ in 0..v0 {
            r0.record_source(id);
            r2.record_destination(id);
            id += 1;
        }
        for _ in 0..v1 {
            r1.record_source(id);
            r2.record_destination(id);
            id += 1;
        }
        TrafficMatrix::estimate(&[r0, r1, r2]).unwrap()
    }

    #[test]
    fn quiet_rounds_stay_normal() {
        let mut det = VictimDetector::new(DetectorConfig::default()).unwrap();
        for _ in 0..5 {
            assert_eq!(det.observe(&snapshot(100, 100)), VictimVerdict::Normal);
        }
    }

    #[test]
    fn surge_triggers_alarm_with_atrs() {
        let mut det = VictimDetector::new(DetectorConfig::default()).unwrap();
        for _ in 0..6 {
            det.observe(&snapshot(200, 200));
        }
        match det.observe(&snapshot(20_000, 20_000)) {
            VictimVerdict::UnderAttack(report) => {
                assert_eq!(report.victim, RouterSketchId(2));
                assert_eq!(report.attack_transit_routers.len(), 2);
            }
            VictimVerdict::Normal => panic!("surge not detected"),
        }
    }

    #[test]
    fn warmup_rounds_never_alarm() {
        let mut det = VictimDetector::new(DetectorConfig::default()).unwrap();
        for _ in 0..5 {
            assert_eq!(
                det.observe(&snapshot(50_000, 50_000)),
                VictimVerdict::Normal
            );
        }
    }

    #[test]
    fn small_contributors_are_not_atrs() {
        let mut det = VictimDetector::new(DetectorConfig {
            atr_share: 0.2,
            ..DetectorConfig::default()
        })
        .unwrap();
        for _ in 0..6 {
            det.observe(&snapshot(100, 100));
        }
        match det.observe(&snapshot(30_000, 1_000)) {
            VictimVerdict::UnderAttack(report) => {
                assert_eq!(report.attack_transit_routers.len(), 1);
                assert_eq!(report.attack_transit_routers[0].0, RouterSketchId(0));
            }
            VictimVerdict::Normal => panic!("surge not detected"),
        }
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(DetectorConfig {
            surge_factor: 0.5,
            ..DetectorConfig::default()
        }
        .validate()
        .is_err());
        assert!(DetectorConfig {
            baseline_weight: 0.0,
            ..DetectorConfig::default()
        }
        .validate()
        .is_err());
        assert!(DetectorConfig {
            atr_share: 1.5,
            ..DetectorConfig::default()
        }
        .validate()
        .is_err());
        assert!(DetectorConfig {
            min_cardinality: -1.0,
            ..DetectorConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn baseline_does_not_learn_from_alarms() {
        let mut det = VictimDetector::new(DetectorConfig::default()).unwrap();
        for _ in 0..6 {
            det.observe(&snapshot(200, 200));
        }
        // Sustained attack keeps alarming round after round.
        for _ in 0..4 {
            match det.observe(&snapshot(20_000, 20_000)) {
                VictimVerdict::UnderAttack(_) => {}
                VictimVerdict::Normal => panic!("attack absorbed into baseline"),
            }
        }
    }

    #[test]
    fn report_display_is_informative() {
        let report = AtrReport {
            victim: RouterSketchId(2),
            egress_cardinality: 1234.0,
            attack_transit_routers: vec![(RouterSketchId(0), 1000.0)],
        };
        let text = report.to_string();
        assert!(text.contains("router#2"));
        assert!(text.contains("1 ATRs"));
    }
}
