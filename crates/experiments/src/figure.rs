//! Figure data containers and plain-text rendering.
//!
//! Every experiment produces a [`FigureData`]: named series of `(x, y)`
//! points matching one panel of the paper. The text renderer prints an
//! aligned table with one row per x value and one column per series —
//! the same rows a gnuplot script would consume.

use std::fmt;

/// One plotted series (one legend entry of a paper figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `Pd=90%`).
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

/// One figure panel: axes plus its series.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Identifier matching the paper (e.g. `Fig. 3(a)`).
    pub id: String,
    /// Panel title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Appends a series.
    pub fn push_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// All distinct x values across series, ascending.
    #[must_use]
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        xs
    }

    /// The y value of `series` at `x`, if present.
    #[must_use]
    pub fn y_at(&self, series: usize, x: f64) -> Option<f64> {
        self.series
            .get(series)?
            .points
            .iter()
            .find_map(|&(px, py)| {
                if (px - x).abs() < 1e-12 {
                    Some(py)
                } else {
                    None
                }
            })
    }
}

impl FigureData {
    /// Renders the figure as a gnuplot-consumable data block: a comment
    /// header, then one row per x value with one column per series
    /// (missing points rendered as `nan`).
    #[must_use]
    pub fn to_gnuplot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        out.push_str(&format!("# x: {}  y: {}\n", self.x_label, self.y_label));
        out.push_str("# x");
        for s in &self.series {
            out.push_str(&format!(" \"{}\"", s.label));
        }
        out.push('\n');
        for x in self.x_values() {
            out.push_str(&format!("{x}"));
            for i in 0..self.series.len() {
                match self.y_at(i, x) {
                    Some(y) => out.push_str(&format!(" {y}")),
                    None => out.push_str(" nan"),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigureData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        writeln!(f, "y: {}", self.y_label)?;
        // Header.
        write!(f, "{:>16}", self.x_label)?;
        for s in &self.series {
            write!(f, " {:>14}", s.label)?;
        }
        writeln!(f)?;
        // Rows.
        for x in self.x_values() {
            write!(f, "{x:>16.3}")?;
            for i in 0..self.series.len() {
                match self.y_at(i, x) {
                    Some(y) => write!(f, " {y:>14.4}")?,
                    None => write!(f, " {:>14}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> FigureData {
        let mut fig = FigureData::new("Fig. T", "test", "x", "y");
        fig.push_series("a", vec![(1.0, 10.0), (2.0, 20.0)]);
        fig.push_series("b", vec![(1.0, 11.0), (3.0, 31.0)]);
        fig
    }

    #[test]
    fn x_values_merge_and_sort() {
        assert_eq!(figure().x_values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn y_lookup() {
        let fig = figure();
        assert_eq!(fig.y_at(0, 2.0), Some(20.0));
        assert_eq!(fig.y_at(1, 2.0), None);
        assert_eq!(fig.y_at(9, 1.0), None);
    }

    #[test]
    fn gnuplot_export_has_header_and_rows() {
        let text = figure().to_gnuplot();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("# Fig. T"));
        assert!(lines[2].contains("\"a\"") && lines[2].contains("\"b\""));
        assert!(text.contains("1 10 11"));
        assert!(text.contains("2 20 nan"));
        assert!(text.contains("3 nan 31"));
    }

    #[test]
    fn render_contains_all_labels_and_rows() {
        let text = figure().to_string();
        assert!(text.contains("Fig. T"));
        assert!(text.contains('a') && text.contains('b'));
        assert!(text.contains("10.0000"));
        assert!(text.contains("31.0000"));
        assert!(text.contains('-'), "missing points render as dashes");
    }
}
