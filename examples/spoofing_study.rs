//! Source-address spoofing study.
//!
//! The paper's design rationale addresses the spectrum between two
//! spoofing extremes: all-illegal sources (caught instantly by the PDT
//! check) and all-"legitimate" spoofed sources (caught only by the
//! probing, because the probed host never responds for a flow it is not
//! sending). This example sweeps the spoofing mix and shows how each
//! path of the MAFIC control flow handles it.
//!
//! ```text
//! cargo run --release --example spoofing_study
//! ```

use mafic_suite::workload::{run_spec, ScenarioSpec};

struct Mix {
    name: &'static str,
    illegal: f64,
    legal: f64,
}

fn main() -> Result<(), mafic_suite::workload::WorkloadError> {
    let mixes = [
        Mix {
            name: "all illegal sources",
            illegal: 1.0,
            legal: 0.0,
        },
        Mix {
            name: "all legally-spoofed",
            illegal: 0.0,
            legal: 1.0,
        },
        Mix {
            name: "all own addresses",
            illegal: 0.0,
            legal: 0.0,
        },
        Mix {
            name: "paper-style mix",
            illegal: 0.25,
            legal: 0.25,
        },
    ];
    println!(
        "{:>22} {:>10} {:>10} {:>10} {:>12}",
        "spoofing mix", "alpha %", "theta_n %", "Lr %", "trigger (s)"
    );
    for mix in mixes {
        let spec = ScenarioSpec {
            tcp_share: 0.8, // 10 zombies out of 50 to make the mix visible
            spoof_illegal: mix.illegal,
            spoof_legal: mix.legal,
            seed: 5,
            ..ScenarioSpec::default()
        };
        let outcome = run_spec(spec)?;
        let r = outcome.report;
        println!(
            "{:>22} {:>10.3} {:>10.3} {:>10.3} {:>12}",
            mix.name,
            r.accuracy_pct,
            r.false_negative_pct,
            r.legit_drop_pct,
            outcome
                .triggered_at
                .map_or("never".to_string(), |t| format!("{:.3}", t.as_secs_f64()))
        );
    }
    println!();
    println!("Illegal sources die on first sight (PDT), so their accuracy is");
    println!("highest; legally-spoofed zombies must fail a probe round first,");
    println!("leaking a little more before the cut (higher theta_n).");
    Ok(())
}
