//! 64-bit FNV-1a, the ledger's only hash function.
//!
//! Chosen over anything fancier because it is trivially portable,
//! dependency-free, and byte-order explicit: every multi-byte write
//! goes through little-endian encoding, so a ledger hashed on any
//! platform is comparable with one hashed on any other.

/// Incremental FNV-1a hasher over 64 bits.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Folds a `u16` (little-endian).
    pub fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to 64 bits so 32- and 64-bit builds hash
    /// identically.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` via its IEEE-754 bit pattern (total, not
    /// value-class, identity: `-0.0` and `0.0` hash differently, every
    /// NaN payload hashes as itself).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Folds a string as length-prefixed UTF-8 bytes (the prefix keeps
    /// `("ab","c")` distinct from `("a","bc")` across adjacent writes).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot convenience: hash a byte slice.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn typed_writes_are_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Fnv64::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn str_writes_are_length_prefixed() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_hashes_bits_not_values() {
        let mut pos = Fnv64::new();
        pos.write_f64(0.0);
        let mut neg = Fnv64::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }
}
