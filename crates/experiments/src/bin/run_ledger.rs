//! Emits run ledgers for a fixed spec grid as JSONL on stdout.
//!
//! The CI determinism gate runs this twice — `MAFIC_JOBS=1` and
//! `MAFIC_JOBS=4` — and requires byte-identical output: every run is
//! single-threaded internally and outcomes return in spec order, so the
//! worker count must never leak into a ledger. Ledgers for the grid's
//! specs are concatenated in order, separated by a `# run <n>` comment
//! line (ignored by [`mafic_obs::RunLedger::from_jsonl`]).
//!
//! Usage: `run_ledger [--seed N] [--only I]` — `--seed` perturbs the
//! whole grid (the seeded-divergence CI smoke uses it to prove the
//! differ actually fails the gate on real divergence); `--only` emits a
//! single grid entry so `mafic_trace diff` gets a one-ledger file.

use mafic_experiments::{run_specs, EngineConfig};
use mafic_netsim::SimTime;
use mafic_topology::TransitTopology;
use mafic_workload::ScenarioSpec;

fn grid(seed: u64) -> Vec<ScenarioSpec> {
    let single = ScenarioSpec {
        total_flows: 12,
        n_routers: 6,
        end: SimTime::from_secs_f64(2.5),
        ledger: true,
        trace_capacity: 64,
        seed,
        ..ScenarioSpec::default()
    };
    let multi = ScenarioSpec {
        domains: 3,
        transit_topology: TransitTopology::Chain { depth: 1 },
        pushback_depth: 2,
        end: SimTime::from_secs_f64(3.0),
        seed: seed ^ 0x5eed,
        ..single.clone()
    };
    vec![single, multi]
}

fn main() {
    let mut seed = 1u64;
    let mut only: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |name: &str| -> u64 {
            let value = args.next().and_then(|v| v.parse().ok());
            let Some(value) = value else {
                eprintln!("{name} needs a non-negative integer");
                std::process::exit(2);
            };
            value
        };
        match arg.as_str() {
            "--seed" => seed = numeric("--seed"),
            "--only" => only = Some(numeric("--only") as usize),
            other => {
                eprintln!("unknown argument {other:?}; usage: run_ledger [--seed N] [--only I]");
                std::process::exit(2);
            }
        }
    }
    let mut specs = grid(seed);
    if let Some(i) = only {
        if i >= specs.len() {
            eprintln!("--only {i} out of range (grid has {} specs)", specs.len());
            std::process::exit(2);
        }
        specs = vec![specs.swap_remove(i)];
    }
    let cfg = EngineConfig::from_env_or_exit();
    match run_specs(specs, cfg.jobs) {
        Ok(outcomes) => {
            for (i, outcome) in outcomes.iter().enumerate() {
                let ledger = outcome
                    .ledger
                    .as_ref()
                    .expect("grid specs all set `ledger: true`");
                println!("# run {}", only.unwrap_or(i));
                print!("{}", ledger.to_jsonl());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
