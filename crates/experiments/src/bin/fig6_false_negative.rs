//! Regenerates Fig. 6(a)–(c): false negative rates.

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    for result in [
        figures::fig6a(&cfg),
        figures::fig6b(&cfg),
        figures::fig6c(&cfg),
    ] {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
