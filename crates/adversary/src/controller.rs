//! The [`AdversaryController`] — the per-run closed-loop brain wiring
//! per-source feedback into an [`AttackStrategy`](crate::AttackStrategy).

use mafic_obs::{Fnv64, SnapError, SnapReader, SnapWriter};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::spec::AdversarySpec;
use crate::strategies::{apply_lease_gate, build_strategy, AttackStrategy, StrategyCtx};

/// One retargeting command for a single attack source, identified by
/// its stable index in the botnet's source order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryDirective {
    /// Pause (`active = false`) or resume a source's transmissions.
    SetActive {
        /// Index of the source in the controller's stable order.
        source: usize,
        /// Whether the source should transmit.
        active: bool,
    },
    /// Scale a source's nominal rate, in thousandths (1000 = nominal).
    SetRateScale {
        /// Index of the source in the controller's stable order.
        source: usize,
        /// New rate scale in thousandths of the configured rate.
        scale_milli: u32,
    },
}

/// Cumulative per-source counters sampled at the attacker's own node:
/// packets handed to the wire and acknowledgements seen back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceFeedback {
    /// Cumulative packets sent by this source.
    pub sent: u64,
    /// Cumulative packets confirmed delivered to the victim.
    pub delivered: u64,
}

/// Per-interval observation derived from two successive
/// [`SourceFeedback`] samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceObs {
    /// Packets sent during the interval just ended.
    pub sent_delta: u64,
    /// Packets delivered during the interval just ended.
    pub delivered_delta: u64,
    /// Stub domain hosting the source (attacker-known topology).
    pub stub_index: u32,
}

/// Closed-loop controller for one run's attack sources.
///
/// Call [`take_feedback_buf`](Self::take_feedback_buf) each monitor
/// interval, fill it with cumulative per-source counters in stable
/// source order, and hand it back to
/// [`observe_interval`](Self::observe_interval); the returned directive
/// slice retargets the sources for the next interval. The buffer
/// round-trip keeps the per-interval path allocation-free after the
/// first interval.
#[derive(Debug)]
pub struct AdversaryController {
    spec: AdversarySpec,
    rng: SmallRng,
    /// Monitor intervals observed so far.
    interval: u64,
    /// Previous cumulative (sent, delivered) per source.
    prev: Vec<(u64, u64)>,
    /// Scratch observations rebuilt each interval.
    obs: Vec<SourceObs>,
    /// Per-source stub indices, fixed at construction.
    stubs: Vec<u32>,
    /// Loaned-out feedback buffer (empty while on loan).
    feedback: Vec<SourceFeedback>,
    directives: Vec<AdversaryDirective>,
    strategy: Box<dyn AttackStrategy>,
}

impl AdversaryController {
    /// Builds a controller for a botnet of `stubs.len()` sources whose
    /// per-source stub indices are `stubs`, seeded by `seed`.
    #[must_use]
    pub fn new(spec: AdversarySpec, stubs: Vec<u32>, seed: u64) -> Self {
        let mut strategy = build_strategy(&spec, &stubs);
        apply_lease_gate(&mut strategy, &spec);
        let n = stubs.len();
        AdversaryController {
            spec,
            rng: SmallRng::seed_from_u64(seed),
            interval: 0,
            prev: vec![(0, 0); n],
            obs: vec![SourceObs::default(); n],
            stubs,
            feedback: vec![SourceFeedback::default(); n],
            directives: Vec::new(),
            strategy,
        }
    }

    /// Number of sources under control.
    #[must_use]
    pub fn sources(&self) -> usize {
        self.stubs.len()
    }

    /// Stable label of the active strategy.
    #[must_use]
    pub fn strategy_label(&self) -> &'static str {
        self.strategy.label()
    }

    /// The specification the controller was built from.
    #[must_use]
    pub fn spec(&self) -> &AdversarySpec {
        &self.spec
    }

    /// Borrows the pre-sized feedback buffer for the caller to fill.
    ///
    /// The buffer comes back cleared and resized to
    /// [`sources`](Self::sources); return it via
    /// [`observe_interval`](Self::observe_interval).
    #[must_use]
    pub fn take_feedback_buf(&mut self) -> Vec<SourceFeedback> {
        let mut buf = std::mem::take(&mut self.feedback);
        buf.clear();
        buf.resize(self.stubs.len(), SourceFeedback::default());
        buf
    }

    /// Digests one monitor interval of cumulative per-source feedback
    /// and returns the strategy's retargeting directives.
    ///
    /// `feedback` must be the buffer from
    /// [`take_feedback_buf`](Self::take_feedback_buf), filled in stable
    /// source order with cumulative counters.
    pub fn observe_interval(&mut self, feedback: Vec<SourceFeedback>) -> &[AdversaryDirective] {
        debug_assert_eq!(feedback.len(), self.stubs.len());
        let mut sent_total = 0u64;
        let mut delivered_total = 0u64;
        for (i, fb) in feedback.iter().enumerate() {
            let (prev_sent, prev_delivered) = self.prev[i];
            let sent_delta = fb.sent.saturating_sub(prev_sent);
            let delivered_delta = fb.delivered.saturating_sub(prev_delivered);
            self.obs[i] = SourceObs {
                sent_delta,
                delivered_delta,
                stub_index: self.stubs[i],
            };
            sent_total += sent_delta;
            delivered_total += delivered_delta;
            self.prev[i] = (fb.sent, fb.delivered);
        }
        let loss_rate = if sent_total == 0 {
            0.0
        } else {
            1.0 - (delivered_total as f64) / (sent_total as f64)
        };
        self.directives.clear();
        let mut ctx = StrategyCtx {
            interval: self.interval,
            sources: &self.obs,
            loss_rate,
            rng: &mut self.rng,
            spec: &self.spec,
        };
        self.strategy.on_interval(&mut ctx, &mut self.directives);
        self.interval += 1;
        self.feedback = feedback;
        &self.directives
    }

    /// Folds the controller's decision state into a ledger hash.
    ///
    /// The RNG internals are deliberately excluded: the hash captures
    /// decision-relevant state, and the RNG is restored bit-exactly by
    /// the snapshot path instead.
    pub fn hash_state(&self, h: &mut Fnv64) {
        h.write_str(self.strategy.label());
        h.write_u64(self.interval);
        h.write_usize(self.prev.len());
        for &(sent, delivered) in &self.prev {
            h.write_u64(sent);
            h.write_u64(delivered);
        }
        self.strategy.hash_state(h);
    }

    /// Serializes the controller into `w` (MAFICSNP section payload).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        for word in self.rng.state() {
            w.write_u64(word);
        }
        w.write_u64(self.interval);
        w.write_u8(self.spec.strategy.tag());
        w.write_usize(self.prev.len());
        for &(sent, delivered) in &self.prev {
            w.write_u64(sent);
            w.write_u64(delivered);
        }
        self.strategy.snap_save(w);
    }

    /// Restores the controller from `r`.
    ///
    /// The controller must have been built from the same spec and
    /// source set it was captured with; the strategy tag and source
    /// count are validated.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncated payloads or a
    /// strategy/source-count mismatch.
    pub fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.read_u64()?;
        }
        self.rng = SmallRng::from_state(state);
        self.interval = r.read_u64()?;
        let tag = r.read_u8()?;
        if tag != self.spec.strategy.tag() {
            return Err(SnapError::Malformed(format!(
                "adversary strategy tag mismatch: snapshot {tag}, spec {}",
                self.spec.strategy.tag()
            )));
        }
        let n = r.read_usize()?;
        if n != self.prev.len() {
            return Err(SnapError::Malformed(format!(
                "adversary source count mismatch: snapshot {n}, controller {}",
                self.prev.len()
            )));
        }
        for slot in &mut self.prev {
            let sent = r.read_u64()?;
            let delivered = r.read_u64()?;
            *slot = (sent, delivered);
        }
        self.strategy.snap_restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StrategyKind;

    fn rotation_spec() -> AdversarySpec {
        AdversarySpec::with_strategy(StrategyKind::SourceRotation {
            period_intervals: 2,
            active_fraction: 0.5,
        })
    }

    fn feed(ctl: &mut AdversaryController, sent: u64, delivered: u64) -> Vec<AdversaryDirective> {
        let mut buf = ctl.take_feedback_buf();
        let n = buf.len() as u64;
        for (i, fb) in buf.iter_mut().enumerate() {
            // Spread cumulative counters so deltas are per-source even.
            fb.sent = sent * (i as u64 + 1) / n.max(1);
            fb.delivered = delivered * (i as u64 + 1) / n.max(1);
        }
        ctl.observe_interval(buf).to_vec()
    }

    #[test]
    fn loss_rate_gates_engagement() {
        let mut ctl = AdversaryController::new(rotation_spec(), vec![0, 0, 1, 1], 11);
        // Low loss: quiescent.
        assert!(feed(&mut ctl, 1000, 900).is_empty());
        // High loss: engages and retargets.
        assert!(!feed(&mut ctl, 2000, 1000).is_empty());
    }

    #[test]
    fn zero_sent_interval_reads_as_zero_loss() {
        let mut ctl = AdversaryController::new(rotation_spec(), vec![0, 1], 11);
        assert!(feed(&mut ctl, 0, 0).is_empty());
        assert_eq!(ctl.interval, 1);
    }

    #[test]
    fn feedback_buffer_round_trips_without_growth() {
        let mut ctl = AdversaryController::new(rotation_spec(), vec![0, 0, 1, 1], 11);
        let buf = ctl.take_feedback_buf();
        assert_eq!(buf.len(), 4);
        let cap = buf.capacity();
        let _ = ctl.observe_interval(buf);
        let again = ctl.take_feedback_buf();
        assert_eq!(again.capacity(), cap, "buffer must be recycled");
        let _ = ctl.observe_interval(again);
    }

    #[test]
    fn snapshot_round_trips_mid_engagement() {
        let mut a = AdversaryController::new(rotation_spec(), vec![0, 0, 1, 1], 11);
        let _ = feed(&mut a, 1000, 100);
        let _ = feed(&mut a, 3000, 400);
        let _ = feed(&mut a, 6000, 900);
        let mut w = SnapWriter::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut b = AdversaryController::new(rotation_spec(), vec![0, 0, 1, 1], 99);
        let mut r = SnapReader::new(&bytes);
        b.snap_restore(&mut r).expect("restore");
        assert!(r.is_empty());

        let mut ha = Fnv64::new();
        let mut hb = Fnv64::new();
        a.hash_state(&mut ha);
        b.hash_state(&mut hb);
        assert_eq!(ha.finish(), hb.finish());

        // Both copies must keep deciding identically.
        let da = feed(&mut a, 9000, 1500);
        let db = feed(&mut b, 9000, 1500);
        assert_eq!(da, db);
    }

    #[test]
    fn snapshot_rejects_strategy_mismatch() {
        let mut a = AdversaryController::new(rotation_spec(), vec![0, 1], 11);
        let mut w = SnapWriter::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();

        let pulse = AdversarySpec::with_strategy(StrategyKind::PulseTuning { boost_milli: 0 });
        let mut b = AdversaryController::new(pulse, vec![0, 1], 11);
        let mut r = SnapReader::new(&bytes);
        assert!(b.snap_restore(&mut r).is_err());
        let _ = feed(&mut a, 100, 50);
    }

    #[test]
    fn snapshot_rejects_source_count_mismatch() {
        let a = AdversaryController::new(rotation_spec(), vec![0, 1], 11);
        let mut w = SnapWriter::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut b = AdversaryController::new(rotation_spec(), vec![0, 1, 2], 11);
        let mut r = SnapReader::new(&bytes);
        assert!(b.snap_restore(&mut r).is_err());
    }
}
