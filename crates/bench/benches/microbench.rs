//! Microbenchmarks of the per-packet hot paths: the MAFIC filter
//! decision, LogLog insertion, and flow-label hashing.

use criterion::{criterion_group, criterion_main, Criterion};
use mafic::{AddressValidator, FlowLabel, LabelMode, MaficConfig, MaficFilter};
use mafic_loglog::{LogLog, Precision};
use mafic_netsim::testkit::FilterHarness;
use mafic_netsim::{Addr, FlowKey, Packet, PacketKind, Provenance, SimTime};

fn packet(port: u16) -> Packet {
    Packet {
        id: u64::from(port),
        key: FlowKey::new(
            Addr::from_octets(10, 1, 0, 1),
            Addr::from_octets(10, 200, 0, 1),
            port,
            80,
        ),
        kind: PacketKind::Udp,
        size_bytes: 500,
        created_at: SimTime::ZERO,
        provenance: Provenance::infrastructure(),
        hops: 0,
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("mafic_filter_decision", |b| {
        let mut filter = MaficFilter::new(MaficConfig::default(), AddressValidator::AllowAll);
        filter.activate(Addr::from_octets(10, 200, 0, 1));
        let mut h = FilterHarness::new();
        let mut port = 0u16;
        b.iter(|| {
            port = port.wrapping_add(1);
            h.offer_transit(&mut filter, &packet(port))
        });
    });

    c.bench_function("loglog_insert", |b| {
        let mut sketch = LogLog::new(Precision::P10);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            sketch.insert_u64(i);
        });
    });

    c.bench_function("flow_label_hash", |b| {
        let key = packet(1).key;
        b.iter(|| FlowLabel::from_key(key, LabelMode::Hashed).token());
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
