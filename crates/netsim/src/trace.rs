//! A bounded event trace for debugging and observability.
//!
//! When enabled, the simulator records one [`TraceEvent`] per significant
//! action (drop, delivery, control message) into a ring buffer. Traces
//! are for humans and tests; the metrics pipeline uses the
//! [`crate::StatsCollector`] counters instead.

use crate::ids::NodeId;
use crate::packet::{DropReason, FlowKey};
use crate::time::SimTime;
use mafic_obs::{SnapError, SnapReader, SnapWriter, SnapshotState};
use std::collections::VecDeque;
use std::fmt;

/// One recorded simulator action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was dropped.
    Drop {
        /// When.
        at: SimTime,
        /// The flow it belonged to.
        flow: FlowKey,
        /// Why.
        reason: DropReason,
    },
    /// A packet was delivered to an agent.
    Deliver {
        /// When.
        at: SimTime,
        /// The flow.
        flow: FlowKey,
        /// The receiving node.
        node: NodeId,
    },
    /// A control message was delivered to a node.
    Control {
        /// When.
        at: SimTime,
        /// The receiving node.
        node: NodeId,
        /// Rendered message.
        summary: String,
    },
}

impl TraceEvent {
    /// The timestamp of the event.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Drop { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::Control { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Drop { at, flow, reason } => {
                write!(f, "{at} DROP {flow} ({reason})")
            }
            TraceEvent::Deliver { at, flow, node } => {
                write!(f, "{at} DELIVER {flow} at {node}")
            }
            TraceEvent::Control { at, node, summary } => {
                write!(f, "{at} CONTROL {node}: {summary}")
            }
        }
    }
}

/// A bounded ring buffer of trace events.
#[derive(Debug)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    recorded_total: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events (oldest
    /// evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            recorded_total: 0,
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.recorded_total += 1;
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    #[must_use]
    pub fn recorded_total(&self) -> u64 {
        self.recorded_total
    }

    /// Drops all retained events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl SnapshotState for TraceBuffer {
    /// Saves the retained events and the lifetime total; the capacity is
    /// build-time configuration and is not saved.
    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_u64(self.recorded_total);
        w.write_usize(self.events.len());
        for event in &self.events {
            match event {
                TraceEvent::Drop { at, flow, reason } => {
                    w.write_u8(0);
                    w.write_u64(at.as_nanos());
                    crate::packet::snap_flow_key(flow, w);
                    crate::packet::snap_drop_reason(*reason, w);
                }
                TraceEvent::Deliver { at, flow, node } => {
                    w.write_u8(1);
                    w.write_u64(at.as_nanos());
                    crate::packet::snap_flow_key(flow, w);
                    w.write_u32(node.0);
                }
                TraceEvent::Control { at, node, summary } => {
                    w.write_u8(2);
                    w.write_u64(at.as_nanos());
                    w.write_u32(node.0);
                    w.write_str(summary);
                }
            }
        }
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.recorded_total = r.read_u64()?;
        let n = r.read_usize()?;
        self.events.clear();
        for _ in 0..n {
            let event = match r.read_u8()? {
                0 => TraceEvent::Drop {
                    at: SimTime::from_nanos(r.read_u64()?),
                    flow: crate::packet::read_flow_key(r)?,
                    reason: crate::packet::read_drop_reason(r)?,
                },
                1 => TraceEvent::Deliver {
                    at: SimTime::from_nanos(r.read_u64()?),
                    flow: crate::packet::read_flow_key(r)?,
                    node: NodeId(r.read_u32()?),
                },
                2 => TraceEvent::Control {
                    at: SimTime::from_nanos(r.read_u64()?),
                    node: NodeId(r.read_u32()?),
                    summary: r.read_str()?,
                },
                tag => {
                    return Err(SnapError::Malformed(format!("trace-event tag {tag}")));
                }
            };
            self.events.push_back(event);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;

    fn drop_event(ms: u64) -> TraceEvent {
        TraceEvent::Drop {
            at: SimTime::from_nanos(ms * 1_000_000),
            flow: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            reason: DropReason::FilterProbing,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = TraceBuffer::new(3);
        for ms in 0..5 {
            t.record(drop_event(ms));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded_total(), 5);
        let first = t.iter().next().unwrap();
        assert_eq!(first.at(), SimTime::from_nanos(2_000_000));
    }

    #[test]
    fn display_formats_each_kind() {
        let d = drop_event(1).to_string();
        assert!(d.contains("DROP") && d.contains("filter-probing"));
        let deliver = TraceEvent::Deliver {
            at: SimTime::ZERO,
            flow: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            node: NodeId::from_index(3),
        };
        assert!(deliver.to_string().contains("DELIVER"));
        let control = TraceEvent::Control {
            at: SimTime::ZERO,
            node: NodeId::from_index(1),
            summary: "pushback-start".into(),
        };
        assert!(control.to_string().contains("CONTROL"));
    }

    #[test]
    fn clear_empties_but_keeps_total() {
        let mut t = TraceBuffer::new(4);
        t.record(drop_event(1));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.recorded_total(), 1);
    }

    #[test]
    fn snapshot_round_trips_events_and_total() {
        let mut t = TraceBuffer::new(3);
        for ms in 0..5 {
            t.record(drop_event(ms));
        }
        t.record(TraceEvent::Control {
            at: SimTime::from_nanos(7),
            node: NodeId::from_index(1),
            summary: "pushback-start".into(),
        });
        let mut w = SnapWriter::new();
        t.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = TraceBuffer::new(3);
        let mut r = SnapReader::new(&bytes);
        restored.snap_restore(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.recorded_total(), 6);
        let a: Vec<_> = t.iter().collect();
        let b: Vec<_> = restored.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }
}
