//! The control-plane transport abstraction.
//!
//! A [`crate::DomainCoordinator`] decides *what* to say; a
//! [`ControlPlane`] decides *how it travels*. The workload runner's
//! implementation injects every envelope as a routed
//! `PacketKind::Pushback` packet over the simulated inter-domain links
//! (the deterministic in-band channel — see ARCHITECTURE.md); the
//! [`BufferedPlane`] here just records envelopes, which is all the unit
//! tests (and any out-of-simulator host) need.

use mafic_netsim::{ControlMsg, RequesterId};

/// Where a coordinator's outbound envelopes go.
///
/// Two directions, mirroring the pushback topology: `send_upstream`
/// fans an envelope out to every upstream escalation target (toward the
/// traffic sources); `send_downstream` answers one specific requester
/// (toward the victim — the only downstream party a coordinator ever
/// addresses is someone who just asked it for something).
pub trait ControlPlane {
    /// Sends `msg` to every upstream escalation target of this domain.
    fn send_upstream(&mut self, msg: ControlMsg);

    /// Sends `msg` back downstream to the requester it answers.
    fn send_downstream(&mut self, to: RequesterId, msg: ControlMsg);

    /// How many distinct upstream targets `send_upstream` fans out to.
    ///
    /// A coordinator only abandons escalation once *every* target has
    /// denied it; planes with one anonymous target keep the default.
    fn upstream_count(&self) -> usize {
        1
    }

    /// Sends `msg` upstream, skipping the targets in `except` (parents
    /// that already denied this victim). The default ignores the skip
    /// list: a single-target plane that reaches this path has an empty
    /// list, because one denial already ends escalation.
    fn send_upstream_except(&mut self, msg: ControlMsg, _except: &[RequesterId]) {
        self.send_upstream(msg);
    }
}

/// A [`ControlPlane`] that buffers envelopes in memory.
///
/// The reference non-packet implementation: unit tests assert on the
/// buffers, and a host embedding the coordinator outside the simulator
/// can drain them into whatever transport it owns.
#[derive(Debug, Default)]
pub struct BufferedPlane {
    /// Envelopes sent upstream, in send order.
    pub upstream: Vec<ControlMsg>,
    /// Envelopes sent downstream, with their addressee, in send order.
    pub downstream: Vec<(RequesterId, ControlMsg)>,
    /// Named upstream targets. Empty means one anonymous target (the
    /// default single-parent chain); naming them makes
    /// [`ControlPlane::upstream_count`] and the per-send skip lists
    /// observable in tests.
    pub upstream_targets: Vec<RequesterId>,
    /// Skip list attached to each `upstream` send, index-aligned with
    /// [`BufferedPlane::upstream`] (empty for unfiltered sends).
    pub upstream_skips: Vec<Vec<RequesterId>>,
}

impl BufferedPlane {
    /// Creates an empty plane with one anonymous upstream target.
    #[must_use]
    pub fn new() -> Self {
        BufferedPlane::default()
    }

    /// Creates an empty plane with the given named upstream targets.
    #[must_use]
    pub fn with_targets(targets: Vec<RequesterId>) -> Self {
        BufferedPlane {
            upstream_targets: targets,
            ..BufferedPlane::default()
        }
    }

    /// Drops everything buffered so far (targets are kept).
    pub fn clear(&mut self) {
        self.upstream.clear();
        self.downstream.clear();
        self.upstream_skips.clear();
    }
}

impl ControlPlane for BufferedPlane {
    fn send_upstream(&mut self, msg: ControlMsg) {
        self.upstream.push(msg);
        self.upstream_skips.push(Vec::new());
    }

    fn send_downstream(&mut self, to: RequesterId, msg: ControlMsg) {
        self.downstream.push((to, msg));
    }

    fn upstream_count(&self) -> usize {
        self.upstream_targets.len().max(1)
    }

    fn send_upstream_except(&mut self, msg: ControlMsg, except: &[RequesterId]) {
        self.upstream.push(msg);
        self.upstream_skips.push(except.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::{Addr, ControlVerb};

    #[test]
    fn buffered_plane_records_both_directions() {
        let me = RequesterId::new(Addr::new(1));
        let peer = RequesterId::new(Addr::new(2));
        let msg = ControlMsg::new(
            me,
            1,
            ControlVerb::Withdraw {
                victim: Addr::new(9),
            },
        );
        let mut plane = BufferedPlane::new();
        plane.send_upstream(msg);
        plane.send_downstream(peer, msg);
        assert_eq!(plane.upstream, vec![msg]);
        assert_eq!(plane.downstream, vec![(peer, msg)]);
        plane.clear();
        assert!(plane.upstream.is_empty() && plane.downstream.is_empty());
    }
}
