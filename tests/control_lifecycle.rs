//! End-to-end lifecycle of the trust-aware control plane: a
//! multi-domain flood triggers the cascade, the flood stops mid-run,
//! the chain tops report subsidence downstream, the victim issues
//! `Stop`, and every coordinator in the chain returns to idle with zero
//! live leases and flushed filters — the full
//! idle → defending → escalated → standing-down → idle loop, exercised
//! through routed packets in a real run rather than unit-level ticks.

use mafic_suite::core::MaficFilter;
use mafic_suite::netsim::SimTime;
use mafic_suite::pushback::LifecycleState;
use mafic_suite::topology::TransitTopology;
use mafic_suite::workload::{run_scenario, Scenario, ScenarioSpec};

/// A flood that ends at t = 2.5 s in a 6 s run, over one transit level.
/// Three zombies (one per stub) at a doubled load factor keep the
/// report-reconstructed flood scale well clear of the healthy ceiling
/// while the attack rages: a single zombie would be clipped by its
/// 10 Mb/s access uplink to about the victim link capacity, which is
/// rate-indistinguishable from aggressive legitimate load.
fn lifecycle_spec() -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 12,
        tcp_share: 0.75,
        n_routers: 6,
        domains: 3,
        transit_topology: TransitTopology::Chain { depth: 1 },
        pushback_depth: 2,
        attack_load_factor: 2.0,
        attack_start: SimTime::from_secs_f64(0.8),
        attack_end: Some(SimTime::from_secs_f64(2.5)),
        end: SimTime::from_secs_f64(6.0),
        ..ScenarioSpec::default()
    }
}

#[test]
fn stop_cascade_returns_the_whole_chain_to_idle() {
    let mut scenario = Scenario::build(lifecycle_spec()).expect("buildable");
    let outcome = run_scenario(&mut scenario).expect("runs");

    // The flood was real: the defense triggered and escalated upstream.
    assert!(outcome.defense_engaged(), "detector must fire");
    assert!(
        outcome.max_pushback_depth >= 1,
        "the flood must drive the cascade upstream: {:?}",
        outcome.escalations
    );

    // The victim observed the subsidence and stood the defense down
    // after the flood stopped — never before.
    let stood_down = outcome
        .stood_down_at
        .expect("victim must stand down after the flood subsides");
    let attack_end = lifecycle_spec().attack_end.unwrap();
    assert!(
        stood_down > attack_end,
        "stand-down at {stood_down} must follow the flood end at {attack_end}"
    );
    assert!(outcome.control.stops_sent >= 1, "{}", outcome.control);
    assert!(outcome.control.withdraws_sent >= 1, "{}", outcome.control);

    // The teardown swept the chain quickly and completely.
    let latency = outcome
        .control
        .stand_down_latency_s
        .expect("teardown must complete within the run");
    assert!(
        latency < 2.0,
        "teardown took {latency:.3} s — leases must not linger"
    );

    // Post-run: every coordinator idle, zero live leases anywhere.
    let plan = scenario.pushback.as_ref().expect("multi-domain plan");
    for (d, dom) in plan.domains.iter().enumerate() {
        assert_eq!(
            dom.coordinator.state(),
            LifecycleState::Idle,
            "domain {d} must end idle"
        );
        assert!(
            dom.coordinator.victim().is_none(),
            "domain {d} holds a lease"
        );
    }
    // And every MAFIC filter in the chain is deactivated (tables
    // flushed by the PushbackStop control message).
    for (d, dom) in plan.domains.iter().enumerate() {
        for &(node, idx) in &dom.atrs {
            if let Some(f) = scenario.sim.filter::<MaficFilter>(node, idx) {
                assert!(!f.is_active(), "filter at domain {d} {node:?} still active");
            }
        }
    }
}

#[test]
fn without_subsidence_detection_the_defense_never_stands_down() {
    let spec = ScenarioSpec {
        subsidence_intervals: 0,
        ..lifecycle_spec()
    };
    let mut scenario = Scenario::build(spec).expect("buildable");
    let outcome = run_scenario(&mut scenario).expect("runs");
    assert!(outcome.defense_engaged());
    assert!(outcome.stood_down_at.is_none());
    assert_eq!(outcome.control.stops_sent, 0);
    assert!(outcome.control.stand_down_latency_s.is_none());
    // The victim is still defending at the end of the run.
    let plan = scenario.pushback.as_ref().unwrap();
    assert!(plan.domains[0].coordinator.is_defending());
}

#[test]
fn defense_does_not_stand_down_while_the_flood_rages() {
    // Same scenario but the flood runs to the very end: upstream
    // reports keep carrying the raw flood scale, so the victim must
    // hold the defense up even though its own boundary went quiet once
    // the cascade started cutting upstream.
    let spec = ScenarioSpec {
        attack_end: None,
        ..lifecycle_spec()
    };
    let outcome = mafic_suite::workload::run_spec(spec).expect("runs");
    assert!(outcome.defense_engaged());
    assert!(
        outcome.stood_down_at.is_none(),
        "stand-down at {:?} during a live flood",
        outcome.stood_down_at
    );
    assert_eq!(outcome.control.stops_sent, 0);
}

#[test]
fn second_flood_wave_retriggers_after_stand_down() {
    // Wave 1 ends at 2.5 s; the zombies resume at 5.0 s and flood until
    // 6.5 s. The runner must re-arm detection once the wave-1 teardown
    // returns the victim's coordinator to idle, and the second wave
    // must re-engage the defense — the regression this pins is the old
    // permanently-latched `stood_down` flag, under which a second wave
    // sailed through undefended.
    let resume = SimTime::from_secs_f64(5.0);
    let spec = ScenarioSpec {
        second_wave: Some((resume, SimTime::from_secs_f64(6.5))),
        end: SimTime::from_secs_f64(8.0),
        ..lifecycle_spec()
    };
    let mut scenario = Scenario::build(spec).expect("buildable");
    let outcome = run_scenario(&mut scenario).expect("runs");

    // Wave 1 ran its full lifecycle: trigger, then stand-down after the
    // flood subsided and before the second wave arrived.
    let first_trigger = outcome.triggered_at.expect("wave 1 must trigger");
    assert!(
        first_trigger < lifecycle_spec().attack_end.unwrap(),
        "reported trigger {first_trigger} must be wave 1's"
    );
    let stood_down = outcome
        .stood_down_at
        .expect("wave 1 must stand the defense down");
    assert!(stood_down > lifecycle_spec().attack_end.unwrap());
    assert!(
        stood_down < resume,
        "stand-down at {stood_down} must precede the second wave at {resume}"
    );

    // Wave 2 re-engaged: the victim domain activated its defense again
    // after the resume instant. (Every local activation logs an
    // escalation entry, so a fresh post-resume entry is exactly the
    // re-engagement signal.)
    assert!(
        outcome.escalations.iter().any(|&(at, _)| at > resume),
        "second wave must re-engage the defense: {:?}",
        outcome.escalations
    );

    // Reporting still pins wave 1: the first trigger anchors the β
    // windows and `stood_down_at` keeps the first stand-down instant.
    assert!(outcome.triggered_at.unwrap() < resume);
    assert!(outcome.stood_down_at.unwrap() < resume);
}

#[test]
fn single_wave_lifecycle_unchanged_by_the_rearm_path() {
    // Without a second wave the re-arm must be invisible: detection
    // re-arms after the teardown, observes only healthy traffic, and
    // never fires again.
    let outcome = mafic_suite::workload::run_spec(lifecycle_spec()).expect("runs");
    assert!(outcome.defense_engaged());
    let stood_down = outcome.stood_down_at.expect("stands down");
    assert!(
        outcome.escalations.iter().all(|&(at, _)| at < stood_down),
        "no re-activation after the stand-down: {:?}",
        outcome.escalations
    );
}

#[test]
fn lifecycle_runs_are_deterministic() {
    let a = mafic_suite::workload::run_spec(lifecycle_spec()).unwrap();
    let b = mafic_suite::workload::run_spec(lifecycle_spec()).unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.stood_down_at, b.stood_down_at);
    assert_eq!(a.control, b.control);
    assert_eq!(a.packets_sent, b.packets_sent);
}
