//! # mafic-topology
//!
//! Builders for the protected domain of the MAFIC paper (its Figure 1):
//! a victim host behind a *last-hop router*, a fast core, and a ring of
//! *ingress routers* with source hosts behind them — the routers that
//! become Attack Transit Routers when zombies flood through them.
//!
//! The crate also owns the [`AddressSpace`] plan that gives MAFIC's
//! "illegal / unreachable source address" check its meaning: a /16 per
//! ingress network plus a victim /16; anything outside is illegal.
//!
//! # Example
//!
//! ```
//! use mafic_netsim::Simulator;
//! use mafic_topology::{Domain, DomainConfig};
//!
//! let mut sim = Simulator::new(1);
//! let domain = Domain::build(&mut sim, &DomainConfig {
//!     n_routers: 10,
//!     n_hosts: 8,
//!     ..DomainConfig::default()
//! }).unwrap();
//! assert_eq!(domain.hosts.len(), 8);
//! assert!(domain.address_space.is_legal(domain.hosts[0].addr));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod address;
pub mod domain;
pub mod internet;

pub use address::{AddressSpace, PREFIX_LEN};
pub use domain::{install_host_routes, Domain, DomainConfig, HostInfo};
pub use internet::{
    DomainRole, Internet, InternetConfig, InternetDomain, TransitTopology, UpstreamEdge,
};
