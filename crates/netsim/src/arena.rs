//! In-flight packet arena: dense slab storage for every packet the
//! simulator currently owns.
//!
//! The pre-arena data path moved ~88-byte [`Packet`] values through the
//! event heap and the link queues by value — every heap sift and every
//! queue rotation memcpy'd whole packets. The arena extends the PR 1
//! `FlowId` interning idea to packets-in-flight: a packet is allocated
//! one slot when it enters the simulator (injection, agent send, filter
//! probe emission) and is referred to everywhere else — event heap, link
//! transmit queues, per-link delivery FIFOs — by a 4-byte [`PacketRef`].
//! The slot is freed exactly once, when the packet leaves the data path
//! (delivered to an agent by value, or dropped).
//!
//! Freed slots are recycled LIFO, so steady-state traffic churns a small
//! hot set of slots (cache-friendly) and the arena's high-water mark
//! tracks the true peak of packets simultaneously in flight — exported
//! as `peak_arena_packets` in the bench records.
//!
//! Determinism: slot indices are handed out in a fixed order that
//! depends only on the allocation/free sequence, which is itself fully
//! determined by the event order. Slot numbers never influence
//! simulation behavior — they are addresses, not identities (packet
//! identity stays [`Packet::id`]).

use crate::flows::FlowId;
use crate::packet::Packet;
use mafic_obs::{SnapError, SnapReader, SnapWriter};

/// Dense handle to a packet resident in the simulator's packet arena.
///
/// Valid from allocation until the packet is taken out; the simulator
/// guarantees single ownership (a ref lives in exactly one place: one
/// scheduled event, one link queue slot, or one delivery FIFO entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef(pub(crate) u32);

impl PacketRef {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Slab of in-flight packets with LIFO slot recycling.
///
/// Besides the packet itself, each slot carries two cached interner ids
/// so the hot path hashes a flow key at most once per table per packet
/// lifetime instead of once per hop:
///
/// * the stats-collector id (`stats_ids`), known at allocation for agent
///   sends and injections (the `on_sent` accounting interns it at the
///   same instant anyway) and resolved lazily for filter-emitted probes,
/// * the simulator flow id (`flow_ids`), interned at the packet's first
///   node arrival — exactly where the pre-arena path minted it — and
///   reused at every later hop.
#[derive(Debug, Default)]
pub(crate) struct PacketArena {
    slots: Vec<Option<Packet>>,
    stats_ids: Vec<Option<FlowId>>,
    flow_ids: Vec<Option<FlowId>>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
}

impl PacketArena {
    pub(crate) fn new() -> Self {
        PacketArena::default()
    }

    /// Stores `packet`, returning its slot handle. `stats_id` is the
    /// stats-collector flow id when the caller has already interned it
    /// (`None` defers to the first accounting touch).
    pub(crate) fn alloc(&mut self, packet: Packet, stats_id: Option<FlowId>) -> PacketRef {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(slot) = self.free.pop() {
            let idx = slot as usize;
            debug_assert!(self.slots[idx].is_none(), "free slot occupied");
            self.slots[idx] = Some(packet);
            self.stats_ids[idx] = stats_id;
            self.flow_ids[idx] = None;
            PacketRef(slot)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("arena slot fits u32");
            self.slots.push(Some(packet));
            self.stats_ids.push(stats_id);
            self.flow_ids.push(None);
            PacketRef(slot)
        }
    }

    /// Cached stats-collector id for the packet in `slot`.
    #[inline]
    pub(crate) fn stats_id(&self, slot: PacketRef) -> Option<FlowId> {
        self.stats_ids[slot.index()]
    }

    /// Caches the stats-collector id for the packet in `slot`.
    #[inline]
    pub(crate) fn set_stats_id(&mut self, slot: PacketRef, id: FlowId) {
        self.stats_ids[slot.index()] = Some(id);
    }

    /// Cached simulator flow id for the packet in `slot`.
    #[inline]
    pub(crate) fn flow_id(&self, slot: PacketRef) -> Option<FlowId> {
        self.flow_ids[slot.index()]
    }

    /// Caches the simulator flow id for the packet in `slot`.
    #[inline]
    pub(crate) fn set_flow_id(&mut self, slot: PacketRef, id: FlowId) {
        self.flow_ids[slot.index()] = Some(id);
    }

    /// Reads the packet in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant — that is a use-after-free in the
    /// simulator's ownership discipline, never a recoverable state.
    #[inline]
    pub(crate) fn get(&self, slot: PacketRef) -> &Packet {
        self.slots[slot.index()]
            .as_ref()
            .expect("packet ref used after free")
    }

    /// Mutable access to the packet in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    #[inline]
    pub(crate) fn get_mut(&mut self, slot: PacketRef) -> &mut Packet {
        self.slots[slot.index()]
            .as_mut()
            .expect("packet ref used after free")
    }

    /// Moves the packet out and frees the slot for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (double free).
    pub(crate) fn take(&mut self, slot: PacketRef) -> Packet {
        let packet = self.slots[slot.index()]
            .take()
            .expect("packet ref taken twice");
        self.live -= 1;
        self.free.push(slot.0);
        packet
    }

    /// Packets currently resident.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously resident packets.
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }

    /// Folds the arena occupancy into `h` for the run ledger: counters,
    /// the free-list depth, and every occupied slot in index order
    /// (slot indices are deterministic addresses, so index order is
    /// replay-stable).
    pub(crate) fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_usize(self.live);
        h.write_usize(self.peak);
        h.write_usize(self.free.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(packet) = slot else { continue };
            h.write_usize(idx);
            crate::packet::hash_packet(packet, h);
            match self.stats_ids[idx] {
                Some(id) => {
                    h.write_u8(1);
                    h.write_usize(id.index());
                }
                None => h.write_u8(0),
            }
            match self.flow_ids[idx] {
                Some(id) => {
                    h.write_u8(1);
                    h.write_usize(id.index());
                }
                None => h.write_u8(0),
            }
        }
    }

    /// Serializes the full slab — occupancy, cached ids, free list,
    /// counters — so slot addresses survive a restore (events and link
    /// queues refer to packets by slot index).
    pub(crate) fn snap_save(&self, w: &mut SnapWriter) {
        w.write_usize(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            match slot {
                Some(packet) => {
                    w.write_bool(true);
                    crate::packet::snap_packet(packet, w);
                    snap_opt_flow_id(self.stats_ids[idx], w);
                    snap_opt_flow_id(self.flow_ids[idx], w);
                }
                None => w.write_bool(false),
            }
        }
        w.write_usize(self.free.len());
        for &slot in &self.free {
            w.write_u32(slot);
        }
        w.write_usize(self.live);
        w.write_usize(self.peak);
    }

    /// Overlays checkpointed slab state.
    pub(crate) fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.read_usize()?;
        let mut slots = Vec::with_capacity(n.min(1 << 20));
        let mut stats_ids = Vec::with_capacity(n.min(1 << 20));
        let mut flow_ids = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            if r.read_bool()? {
                slots.push(Some(crate::packet::read_packet(r)?));
                stats_ids.push(read_opt_flow_id(r)?);
                flow_ids.push(read_opt_flow_id(r)?);
            } else {
                slots.push(None);
                stats_ids.push(None);
                flow_ids.push(None);
            }
        }
        let n_free = r.read_usize()?;
        let mut free = Vec::with_capacity(n_free.min(1 << 20));
        for _ in 0..n_free {
            free.push(r.read_u32()?);
        }
        self.slots = slots;
        self.stats_ids = stats_ids;
        self.flow_ids = flow_ids;
        self.free = free;
        self.live = r.read_usize()?;
        self.peak = r.read_usize()?;
        Ok(())
    }
}

fn snap_opt_flow_id(id: Option<FlowId>, w: &mut SnapWriter) {
    match id {
        Some(id) => {
            w.write_bool(true);
            w.write_usize(id.index());
        }
        None => w.write_bool(false),
    }
}

fn read_opt_flow_id(r: &mut SnapReader<'_>) -> Result<Option<FlowId>, SnapError> {
    Ok(if r.read_bool()? {
        Some(FlowId::from_index(r.read_usize()?))
    } else {
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, AgentId};
    use crate::packet::{FlowKey, PacketKind, Provenance};
    use crate::time::SimTime;

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            kind: PacketKind::Udp,
            size_bytes: 100,
            created_at: SimTime::ZERO,
            provenance: Provenance {
                origin: AgentId(0),
                is_attack: false,
            },
            hops: 0,
        }
    }

    #[test]
    fn alloc_take_roundtrip() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1), None);
        let r2 = a.alloc(pkt(2), None);
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(r1).id, 1);
        assert_eq!(a.get(r2).id, 2);
        assert_eq!(a.take(r1).id, 1);
        assert_eq!(a.live(), 1);
        assert_eq!(a.peak(), 2);
    }

    #[test]
    fn slots_recycle_lifo() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1), None);
        let _r2 = a.alloc(pkt(2), None);
        let _ = a.take(r1);
        let r3 = a.alloc(pkt(3), None);
        assert_eq!(r3, r1, "freed slot is reused before the slab grows");
        assert_eq!(a.get(r3).id, 3);
        assert_eq!(a.peak(), 2, "recycling does not inflate the peak");
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(7), None);
        a.get_mut(r).hops = 5;
        assert_eq!(a.take(r).hops, 5);
    }

    #[test]
    fn snapshot_round_trips_slots_and_free_list() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1), Some(FlowId::from_index(4)));
        let r2 = a.alloc(pkt(2), None);
        a.set_flow_id(r2, FlowId::from_index(9));
        let _ = a.take(r1);
        let mut w = SnapWriter::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = PacketArena::new();
        let mut r = SnapReader::new(&bytes);
        restored.snap_restore(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.live(), 1);
        assert_eq!(restored.peak(), 2);
        assert_eq!(restored.get(r2).id, 2);
        assert_eq!(restored.flow_id(r2), Some(FlowId::from_index(9)));
        // The freed slot is recycled in the same LIFO order.
        let r3 = restored.alloc(pkt(3), None);
        assert_eq!(r3, r1);
        let mut ha = mafic_obs::Fnv64::new();
        let mut hb = mafic_obs::Fnv64::new();
        a.alloc(pkt(3), None);
        a.hash_state(&mut ha);
        restored.hash_state(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_is_a_bug() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(1), None);
        let _ = a.take(r);
        let _ = a.take(r);
    }
}
