//! Scenario specification — the experiment parameter surface.
//!
//! One [`ScenarioSpec`] captures everything the paper's evaluation
//! sweeps: traffic volume `Vt`, TCP share `Γ`, flow rate `R`, drop
//! probability `Pd`, domain size `N`, plus the spoofing mix, the drop
//! policy under test, and all timing anchors. Defaults follow Table II.

use mafic::{DefensePolicy, DropPolicy, LabelMode};
use mafic_adversary::AdversarySpec;
use mafic_loglog::hash::{mix2, mix64};
use mafic_loglog::Precision;
use mafic_netsim::{SimDuration, SimTime};
use mafic_pushback::{PushbackConfig, TrustConfig};
use mafic_topology::{DomainConfig, TransitTopology};

/// How the pushback trigger is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// The LogLog set-union monitor detects the surge and identifies the
    /// ATRs (the full pipeline of the paper).
    Auto,
    /// Activate the defense at a fixed time on every ingress router
    /// (isolates MAFIC behaviour from detector behaviour).
    AtTime(SimTime),
    /// Never activate (undefended baseline runs).
    Off,
}

/// The paper's nominal per-source sending rates (Fig. 3b series).
///
/// `R` is given in the paper both as packets/s and as a bit rate; with
/// the 500-byte segments used throughout, the three series map to the
/// packet rates below (see DESIGN.md §4 for the substitution note).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NominalRate {
    /// "100 kbps" — 25 packets/s at 500-byte packets.
    R100k,
    /// "500 kbps" — 125 packets/s.
    R500k,
    /// "1 Mbps" — 250 packets/s (Table II default).
    R1M,
}

impl NominalRate {
    /// Packets per second for this nominal rate.
    #[must_use]
    pub fn pps(self) -> f64 {
        match self {
            NominalRate::R100k => 25.0,
            NominalRate::R500k => 125.0,
            NominalRate::R1M => 250.0,
        }
    }

    /// Display label matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NominalRate::R100k => "R=100k",
            NominalRate::R500k => "R=500k",
            NominalRate::R1M => "R=1M",
        }
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// `Vt` — total number of flows (Table II: 50).
    pub total_flows: usize,
    /// `Γ` — fraction of flows that are legitimate TCP (Table II: 0.95);
    /// the remainder are unresponsive attack flows.
    pub tcp_share: f64,
    /// `R` — nominal per-source rate in packets/s (Table II: "1M").
    pub flow_rate_pps: f64,
    /// Aggregate attack volume as a multiple of `R × Vt`, split evenly
    /// across the zombies. 1.0 roughly doubles the offered load.
    pub attack_load_factor: f64,
    /// Fraction of attack flows emitting TCP-looking segments (the rest
    /// send UDP).
    pub attack_tcp_like: f64,
    /// Fraction of attack flows spoofing an *illegal* source address.
    pub spoof_illegal: f64,
    /// Fraction of attack flows spoofing a *legal* address from another
    /// subnet (the rest use their own address).
    pub spoof_legal: f64,
    /// `N` — number of routers in the domain (Table II: 40).
    pub n_routers: usize,
    /// Number of stub domains, the victim's included. `1` is the
    /// paper's single-domain scenario; `>= 2` builds a multi-domain
    /// internet where flows split round-robin over the stubs and
    /// remote traffic crosses a transit tier to reach the victim.
    pub domains: usize,
    /// Shape of the transit (provider) tier between the source stubs
    /// and the victim domain. Ignored when `domains == 1`.
    pub transit_topology: TransitTopology,
    /// Escalation budget of the cascaded pushback: how many hops
    /// upstream of the victim domain the defense may travel (`0` =
    /// victim-domain-only, today's single-domain behaviour; each
    /// transit level costs one hop, the source stubs one more).
    pub pushback_depth: u32,
    /// Escalation threshold as a fraction of the victim link capacity:
    /// a defending domain escalates upstream while the victim-bound
    /// aggregate entering its ATRs stays above this for the trigger
    /// window. Ignored when `domains == 1`.
    pub escalation_threshold: f64,
    /// Per-requester install budget of every upstream trust ledger:
    /// how many fresh filter installs one downstream requester may
    /// cause at a given domain over the run. `0` refuses every
    /// escalation (upstream domains never defend on request). Ignored
    /// when `domains == 1`.
    pub trust_budget: u32,
    /// Attestation strictness of the trust ledgers: the fraction of a
    /// claimed victim-bound aggregate an upstream's own boundary meter
    /// must corroborate before it installs filters. `0` disables
    /// attestation (the unguarded legacy behaviour — any authorized
    /// requester is believed). Ignored when `domains == 1`.
    pub attestation_fraction: f64,
    /// Consecutive healthy monitor intervals (victim-bound boundary
    /// inflow at or below 1.5× the victim link) after which the victim
    /// domain stands the whole defense down: local deactivation, `Stop`
    /// upstream, `Withdraw` cascading through the chain. `0` disables
    /// subsidence detection. Ignored when `domains == 1`.
    pub subsidence_intervals: u32,
    /// Secondary subsidence evidence: when positive, a victim-side
    /// interval whose distinct source-address cardinality (from the
    /// LogLog taps) sits at or below this floor counts as healthy even
    /// above the 1.5× bandwidth ceiling — a few senders saturating the
    /// link is aggressive-but-legit load, not a flood. `0` (the
    /// default) disables the guard.
    pub subsidence_source_floor: f64,
    /// Optional closed-loop adaptive adversary driving the attack
    /// sources: each monitor interval an
    /// [`mafic_adversary::AdversaryController`] digests per-source
    /// delivered-vs-sent feedback and retargets the zombies through the
    /// configured [`mafic_adversary::AttackStrategy`]. `None` (the
    /// default) keeps the open-loop senders untouched — and the run
    /// byte-identical to pre-adversary builds.
    pub adversary: Option<AdversarySpec>,
    /// When the attack traffic stops (`None` = zombies send until
    /// [`end`](ScenarioSpec::end)). Setting this mid-run is how the
    /// flood-subsidence lifecycle is exercised end to end.
    pub attack_end: Option<SimTime>,
    /// A second flood wave `(resume, stop)`: the zombies go quiet at
    /// [`attack_end`](ScenarioSpec::attack_end) (required), then resume
    /// at `resume` and transmit until `stop`. This is the two-wave
    /// lifecycle scenario — the defense must stand down after the first
    /// wave subsides and *re-engage* when the second wave arrives.
    pub second_wave: Option<(SimTime, SimTime)>,
    /// Approximate per-flow rate (bytes/s) of the background cross
    /// traffic through the transit tier: each transit domain hosts one
    /// long-lived TCP flow to a neighboring transit domain, **not**
    /// aimed at the victim, so transit congestion and collateral
    /// numbers reflect innocent-bystander traffic too. `0` (the
    /// default) disables cross traffic. Requires a transit tier.
    pub cross_traffic_bps: f64,
    /// Index (in [`mafic_topology::Internet::domains`] order) of a
    /// compromised domain mounting **malicious pushback**: every
    /// monitor interval from [`attack_start`](ScenarioSpec::attack_start)
    /// it sends forged `Request` envelopes upstream, claiming a flood
    /// toward the victim that does not exist, trying to get the
    /// victim's legitimate traffic dropped. Its own honest coordinator
    /// is disabled. `None` (the default) models no such attacker; the
    /// attacker must be a *transit* domain — the victim (index 0)
    /// defends itself, and source stubs have no upstream to forge
    /// requests to.
    pub malicious_pushback: Option<usize>,
    /// `Pd` — the probing drop probability (Table II: 0.9).
    pub drop_probability: f64,
    /// Which drop policy runs at the ATRs.
    pub policy: DropPolicy,
    /// Default [`DefensePolicy`] of the *transit* (provider) domains in
    /// a multi-domain scenario. `None` inherits the spec's [`policy`]
    /// (the homogeneous deployment of the paper); `Some` lets transit
    /// ASes run a cheaper policy than the stubs — the heterogeneous
    /// frontier. Ignored when `domains == 1`.
    ///
    /// [`policy`]: ScenarioSpec::policy
    pub transit_policy: Option<DefensePolicy>,
    /// Explicit per-domain policy overrides, as `(domain index, policy)`
    /// pairs in [`mafic_topology::Internet::domains`] order (0 = victim
    /// domain, then transit domains in level order, then source stubs).
    /// Overrides win over both [`transit_policy`] and the participation
    /// draw. The victim domain (index 0) must stay participating.
    ///
    /// [`transit_policy`]: ScenarioSpec::transit_policy
    pub policy_overrides: Vec<(usize, DefensePolicy)>,
    /// Fraction of the non-victim domains that participate in the
    /// pushback federation (the partial-deployment axis of El Defrawy
    /// et al.). Placement is deterministic and *nested*: domains are
    /// ranked by a seed-derived hash, and the top
    /// `round(fraction × count)` participate — so growing the fraction
    /// only ever adds defending domains. Non-participating domains
    /// install nothing; escalation requests route *through* them to the
    /// nearest participating domain upstream. `1.0` (the default)
    /// reproduces the full-deployment behaviour exactly.
    pub participation_fraction: f64,
    /// Flow-label storage model for table-memory accounting; drop
    /// behaviour is label-collision-free in every mode since tables are
    /// keyed by exact interned flow ids.
    pub label_mode: LabelMode,
    /// Probation timer as a multiple of the flow RTT (paper: 2).
    pub timer_rtt_multiplier: f64,
    /// Responsiveness threshold for the probe decision.
    pub decrease_threshold: f64,
    /// Optional NFT re-validation period (anti-pulsing extension; the
    /// paper's algorithm never re-probes).
    pub nft_revalidate_after: Option<SimDuration>,
    /// LogLog sketch precision for the pushback taps.
    pub loglog_precision: Precision,
    /// How the pushback trigger is decided.
    pub detection: DetectionMode,
    /// In [`DetectionMode::Auto`], if the sketch monitor has not raised
    /// the alarm this long after the attack begins, the victim escalates
    /// and pushback is forced at every ingress (a victim experiencing
    /// collapse notifies its upstreams even without the counting
    /// pipeline). `None` disables the fallback.
    pub detection_fallback: Option<SimDuration>,
    /// Monitor sampling interval (traffic-matrix epochs).
    pub monitor_interval: SimDuration,
    /// When legitimate flows start (staggered up to `legit_start_spread`).
    pub legit_start_spread: SimDuration,
    /// When the attack begins.
    pub attack_start: SimTime,
    /// End of the simulated run.
    pub end: SimTime,
    /// Victim time-series bin width.
    pub victim_bin: SimDuration,
    /// Ring capacity of the simulator's [`mafic_netsim::TraceBuffer`].
    /// `0` (the default) leaves tracing off; when positive, the runner
    /// surfaces the last events in [`crate::RunOutcome::trace_tail`]
    /// and embeds them in the run ledger.
    pub trace_capacity: usize,
    /// Record a per-interval [`mafic_obs::RunLedger`] of chained
    /// component state hashes. Off by default: the hot path pays
    /// nothing when disabled (one branch per monitor interval).
    pub ledger: bool,
    /// Capture a verified state snapshot at the first monitor interval
    /// boundary at or after this instant. The runner surfaces the
    /// encoded bytes in [`crate::RunOutcome::checkpoint`]; restoring
    /// them (see [`crate::restore_run`]) resumes the run mid-flight,
    /// byte-identically. `None` (the default) skips capture entirely.
    pub checkpoint_at: Option<SimTime>,
    /// Master seed; all component seeds derive from it.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            total_flows: 50,
            tcp_share: 0.95,
            flow_rate_pps: NominalRate::R1M.pps(),
            attack_load_factor: 1.0,
            attack_tcp_like: 0.5,
            spoof_illegal: 0.25,
            spoof_legal: 0.25,
            n_routers: 40,
            domains: 1,
            transit_topology: TransitTopology::Chain { depth: 2 },
            pushback_depth: 0,
            escalation_threshold: 0.25,
            trust_budget: 8,
            attestation_fraction: 0.25,
            subsidence_intervals: 8,
            subsidence_source_floor: 0.0,
            adversary: None,
            attack_end: None,
            second_wave: None,
            cross_traffic_bps: 0.0,
            malicious_pushback: None,
            drop_probability: 0.9,
            policy: DropPolicy::Mafic,
            transit_policy: None,
            policy_overrides: Vec::new(),
            participation_fraction: 1.0,
            label_mode: LabelMode::Hashed,
            timer_rtt_multiplier: 2.0,
            decrease_threshold: 0.7,
            nft_revalidate_after: None,
            loglog_precision: Precision::P10,
            detection: DetectionMode::Auto,
            detection_fallback: Some(SimDuration::from_millis(500)),
            monitor_interval: SimDuration::from_millis(100),
            legit_start_spread: SimDuration::from_millis(500),
            attack_start: SimTime::from_secs_f64(1.0),
            end: SimTime::from_secs_f64(8.0),
            victim_bin: SimDuration::from_millis(50),
            trace_capacity: 0,
            ledger: false,
            checkpoint_at: None,
            seed: 1,
        }
    }
}

impl ScenarioSpec {
    /// Number of legitimate TCP flows.
    #[must_use]
    pub fn legit_flow_count(&self) -> usize {
        self.total_flows - self.attack_flow_count()
    }

    /// Number of attack flows — at least one whenever flows exist, so the
    /// "under attack" scenarios stay meaningful across the `Γ` sweep.
    #[must_use]
    pub fn attack_flow_count(&self) -> usize {
        if self.total_flows == 0 {
            return 0;
        }
        let raw = ((1.0 - self.tcp_share) * self.total_flows as f64).round() as usize;
        raw.clamp(1, self.total_flows)
    }

    /// Per-zombie sending rate in packets/s.
    #[must_use]
    pub fn attack_rate_pps(&self) -> f64 {
        let attackers = self.attack_flow_count();
        if attackers == 0 {
            return 0.0;
        }
        self.attack_load_factor * self.flow_rate_pps * self.total_flows as f64 / attackers as f64
    }

    /// Total number of domains the built scenario will contain: the
    /// stub domains plus the transit tier (1 for a single-domain
    /// scenario). Indices follow [`mafic_topology::Internet::domains`]
    /// order: victim stub, transit domains in level order, source stubs.
    #[must_use]
    pub fn total_domain_count(&self) -> usize {
        if self.domains <= 1 {
            1
        } else {
            self.domains + self.transit_topology.domain_count()
        }
    }

    /// The [`DefensePolicy`] a domain falls back to when nothing more
    /// specific applies — the spec's single-domain drop policy.
    #[must_use]
    pub fn base_policy(&self) -> DefensePolicy {
        DefensePolicy::from(self.policy)
    }

    /// The [`PushbackConfig`] every domain coordinator of a
    /// multi-domain scenario runs with: the escalation threshold and
    /// the healthy (subsidence) ceiling are both derived from the
    /// victim link capacity; trust knobs come straight from the spec.
    #[must_use]
    pub fn pushback_config(&self) -> PushbackConfig {
        let link_bytes_per_sec = DomainConfig::default().victim_bandwidth_bps / 8.0;
        PushbackConfig {
            threshold_bps: self.escalation_threshold * link_bytes_per_sec,
            // "Healthy" means not overloaded: normal legitimate load
            // fills the victim link, so the stand-down ceiling sits
            // above capacity, not below the escalation threshold.
            healthy_bps: 1.5 * link_bytes_per_sec,
            subsidence_intervals: self.subsidence_intervals,
            subsidence_source_floor: self.subsidence_source_floor,
            trust: TrustConfig {
                request_budget: self.trust_budget,
                attestation_fraction: self.attestation_fraction,
            },
            ..PushbackConfig::default()
        }
    }

    /// Resolves one [`DefensePolicy`] per domain, in
    /// [`mafic_topology::Internet::domains`] order.
    ///
    /// Resolution order per domain: explicit [`policy_overrides`] entry;
    /// else the nested [`participation_fraction`] draw may mark a
    /// non-victim domain [`DefensePolicy::NonParticipating`]; else
    /// [`transit_policy`] for transit-tier domains; else
    /// [`base_policy`](ScenarioSpec::base_policy). The victim domain
    /// (index 0) never enters the participation draw.
    ///
    /// [`policy_overrides`]: ScenarioSpec::policy_overrides
    /// [`participation_fraction`]: ScenarioSpec::participation_fraction
    /// [`transit_policy`]: ScenarioSpec::transit_policy
    ///
    /// # Examples
    ///
    /// A minimal heterogeneous multi-domain scenario — three stubs over
    /// one transit domain, the transit AS on a cheap aggregate rate
    /// limit, one source stub explicitly opted out — validated and
    /// resolved:
    ///
    /// ```
    /// use mafic::DefensePolicy;
    /// use mafic_workload::{ScenarioSpec, Scenario};
    /// use mafic_topology::TransitTopology;
    ///
    /// let spec = ScenarioSpec {
    ///     total_flows: 12,
    ///     n_routers: 6,
    ///     domains: 3,
    ///     transit_topology: TransitTopology::Chain { depth: 1 },
    ///     pushback_depth: 2,
    ///     transit_policy: Some(DefensePolicy::AggregateRateLimit {
    ///         limit_bytes_per_sec: 250_000.0,
    ///     }),
    ///     policy_overrides: vec![(3, DefensePolicy::NonParticipating)],
    ///     ..ScenarioSpec::default()
    /// };
    /// spec.validate().expect("heterogeneous spec is valid");
    ///
    /// // Domains: 0 = victim stub, 1 = transit, 2..=3 = source stubs.
    /// let policies = spec.resolved_policies();
    /// assert_eq!(policies.len(), 4);
    /// assert_eq!(policies[0], DefensePolicy::FullMafic);
    /// assert_eq!(policies[1].label(), "rate-limit");
    /// assert_eq!(policies[3], DefensePolicy::NonParticipating);
    ///
    /// // The spec builds into a fully wired scenario.
    /// let scenario = Scenario::build(spec).expect("buildable");
    /// assert_eq!(scenario.internet.as_ref().unwrap().domains.len(), 4);
    /// ```
    #[must_use]
    pub fn resolved_policies(&self) -> Vec<DefensePolicy> {
        let total = self.total_domain_count();
        if total == 1 {
            return vec![self.base_policy()];
        }
        let n_transit = self.transit_topology.domain_count();
        let participating = self.participation_set(total);
        (0..total)
            .map(|d| {
                if let Some(&(_, p)) = self.policy_overrides.iter().find(|&&(i, _)| i == d) {
                    return p;
                }
                if d == 0 {
                    return self.base_policy();
                }
                if !participating[d] {
                    return DefensePolicy::NonParticipating;
                }
                if d <= n_transit {
                    self.transit_policy.unwrap_or_else(|| self.base_policy())
                } else {
                    self.base_policy()
                }
            })
            .collect()
    }

    /// The nested participation draw: ranks the non-victim domains by a
    /// seed-derived hash and admits the top `round(fraction × count)`.
    /// Returns one flag per domain (index 0 always true).
    fn participation_set(&self, total: usize) -> Vec<bool> {
        let mut flags = vec![true; total];
        if self.participation_fraction >= 1.0 || total <= 1 {
            return flags;
        }
        let candidates = total - 1;
        let admitted = (self.participation_fraction * candidates as f64).round() as usize;
        // Rank by hash; ties (impossible with a bijective mixer, but
        // harmless) break by index.
        let mut ranked: Vec<(u64, usize)> = (1..total)
            .map(|d| (mix64(mix2(self.seed, d as u64) ^ 0x9A57_1C1A), d))
            .collect();
        ranked.sort_unstable();
        for &(_, d) in ranked.iter().skip(admitted) {
            flags[d] = false;
        }
        flags
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_flows == 0 {
            return Err("total_flows must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.tcp_share) {
            return Err(format!(
                "tcp_share must be in [0, 1], got {}",
                self.tcp_share
            ));
        }
        if self.flow_rate_pps.is_nan() || self.flow_rate_pps <= 0.0 {
            return Err("flow_rate_pps must be positive".into());
        }
        if self.attack_load_factor.is_nan() || self.attack_load_factor < 0.0 {
            return Err("attack_load_factor must be >= 0".into());
        }
        for (name, v) in [
            ("attack_tcp_like", self.attack_tcp_like),
            ("spoof_illegal", self.spoof_illegal),
            ("spoof_legal", self.spoof_legal),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if self.spoof_illegal + self.spoof_legal > 1.0 + 1e-9 {
            return Err("spoof_illegal + spoof_legal must not exceed 1".into());
        }
        if self.n_routers < 3 {
            return Err(format!("n_routers must be >= 3, got {}", self.n_routers));
        }
        if self.domains == 0 {
            return Err("domains must be >= 1".into());
        }
        if self.domains > 64 {
            return Err(format!("domains must be <= 64, got {}", self.domains));
        }
        self.transit_topology.validate()?;
        if self.domains == 1 && self.pushback_depth > 0 {
            return Err("pushback_depth > 0 requires domains >= 2".into());
        }
        if !self.escalation_threshold.is_finite() || self.escalation_threshold <= 0.0 {
            return Err(format!(
                "escalation_threshold must be finite and > 0, got {}",
                self.escalation_threshold
            ));
        }
        // The derived coordinator config re-checks the threshold and
        // vets the trust knobs with the typed PushbackConfigError.
        self.pushback_config()
            .validate()
            .map_err(|e| format!("pushback config: {e}"))?;
        if let Some(adversary) = &self.adversary {
            adversary
                .validate()
                .map_err(|e| format!("adversary: {e}"))?;
        }
        if let Some(attack_end) = self.attack_end {
            if attack_end <= self.attack_start {
                return Err("attack_end must come after attack_start".into());
            }
            if attack_end > self.end {
                return Err("attack_end must not exceed end".into());
            }
        }
        if let Some((resume, stop)) = self.second_wave {
            let Some(attack_end) = self.attack_end else {
                return Err("second_wave requires attack_end (the first wave must stop)".into());
            };
            if resume < attack_end {
                return Err("second_wave resume must not precede attack_end".into());
            }
            if stop <= resume {
                return Err("second_wave stop must come after its resume".into());
            }
            if stop > self.end {
                return Err("second_wave stop must not exceed end".into());
            }
        }
        if !self.cross_traffic_bps.is_finite() || self.cross_traffic_bps < 0.0 {
            return Err(format!(
                "cross_traffic_bps must be finite and >= 0, got {}",
                self.cross_traffic_bps
            ));
        }
        if self.cross_traffic_bps > 0.0
            && (self.domains < 2 || self.transit_topology.domain_count() == 0)
        {
            return Err("cross_traffic_bps > 0 requires a transit tier (domains >= 2 and a non-empty transit topology)".into());
        }
        if let Some(d) = self.malicious_pushback {
            if self.domains < 2 {
                return Err("malicious_pushback requires domains >= 2".into());
            }
            if d == 0 {
                return Err("the victim domain (index 0) cannot mount malicious pushback".into());
            }
            // Source stubs sit at the top of the pushback path: they
            // have no upstream to forge requests to, so naming one
            // would silently run an attack-free "attack" scenario.
            let n_transit = self.transit_topology.domain_count();
            if d > n_transit {
                return Err(format!(
                    "malicious_pushback must name a transit domain (1..={n_transit}); \
                     domain {d} is a source stub with no upstream to forge requests to"
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.participation_fraction) {
            return Err(format!(
                "participation_fraction must be in [0, 1], got {}",
                self.participation_fraction
            ));
        }
        if self.domains == 1 {
            if self.transit_policy.is_some() {
                return Err("transit_policy requires domains >= 2".into());
            }
            if !self.policy_overrides.is_empty() {
                return Err("policy_overrides require domains >= 2".into());
            }
            if self.participation_fraction < 1.0 {
                return Err("participation_fraction < 1 requires domains >= 2".into());
            }
        }
        if let Some(p) = self.transit_policy {
            p.validate().map_err(|e| format!("transit_policy: {e}"))?;
        }
        let total = self.total_domain_count();
        for (i, &(d, p)) in self.policy_overrides.iter().enumerate() {
            if d >= total {
                return Err(format!(
                    "policy_overrides[{i}] names domain {d}, but the scenario has {total} domains"
                ));
            }
            if self.policy_overrides[..i]
                .iter()
                .any(|&(prev, _)| prev == d)
            {
                return Err(format!("policy_overrides name domain {d} more than once"));
            }
            p.validate()
                .map_err(|e| format!("policy_overrides[{i}]: {e}"))?;
            if d == 0 && !p.participating() {
                return Err("the victim domain (index 0) must stay participating".into());
            }
        }
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err("drop_probability must be in [0, 1]".into());
        }
        if !self.timer_rtt_multiplier.is_finite() || self.timer_rtt_multiplier <= 0.0 {
            return Err(format!(
                "timer_rtt_multiplier must be finite and > 0, got {}",
                self.timer_rtt_multiplier
            ));
        }
        if !(0.0..=1.0).contains(&self.decrease_threshold) {
            return Err(format!(
                "decrease_threshold must be in [0, 1], got {}",
                self.decrease_threshold
            ));
        }
        if self.attack_start >= self.end {
            return Err("attack_start must precede end".into());
        }
        if self.monitor_interval.is_zero() {
            return Err("monitor_interval must be positive".into());
        }
        if self.victim_bin.is_zero() {
            return Err("victim_bin must be positive (it bins the victim series)".into());
        }
        if let Some(at) = self.checkpoint_at {
            if at >= self.end {
                return Err("checkpoint_at must precede end".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let s = ScenarioSpec::default();
        assert_eq!(s.total_flows, 50);
        assert!((s.tcp_share - 0.95).abs() < 1e-9);
        assert_eq!(s.n_routers, 40);
        assert!((s.drop_probability - 0.9).abs() < 1e-9);
        assert_eq!(s.flow_rate_pps, 250.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn flow_split_respects_gamma() {
        let s = ScenarioSpec {
            total_flows: 100,
            tcp_share: 0.8,
            ..ScenarioSpec::default()
        };
        assert_eq!(s.attack_flow_count(), 20);
        assert_eq!(s.legit_flow_count(), 80);
    }

    #[test]
    fn at_least_one_attacker() {
        let s = ScenarioSpec {
            total_flows: 10,
            tcp_share: 1.0,
            ..ScenarioSpec::default()
        };
        assert_eq!(s.attack_flow_count(), 1);
        assert_eq!(s.legit_flow_count(), 9);
    }

    #[test]
    fn attack_rate_splits_total_volume() {
        let s = ScenarioSpec {
            total_flows: 50,
            tcp_share: 0.9, // 5 attackers
            flow_rate_pps: 100.0,
            attack_load_factor: 1.0,
            ..ScenarioSpec::default()
        };
        // Total attack = 1.0 × 100 × 50 = 5000 pps over 5 zombies.
        assert!((s.attack_rate_pps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn nominal_rates_map_to_pps() {
        assert_eq!(NominalRate::R100k.pps(), 25.0);
        assert_eq!(NominalRate::R500k.pps(), 125.0);
        assert_eq!(NominalRate::R1M.pps(), 250.0);
        assert_eq!(NominalRate::R1M.label(), "R=1M");
    }

    #[test]
    fn validation_catches_bad_specs() {
        let base = ScenarioSpec::default();
        assert!(ScenarioSpec {
            total_flows: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ScenarioSpec {
            tcp_share: 1.5,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ScenarioSpec {
            n_routers: 2,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ScenarioSpec {
            spoof_illegal: 0.7,
            spoof_legal: 0.7,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ScenarioSpec {
            attack_start: SimTime::from_secs_f64(9.0),
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validation_catches_bad_timer_multiplier() {
        let base = ScenarioSpec::default();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ScenarioSpec {
                timer_rtt_multiplier: bad,
                ..base.clone()
            }
            .validate()
            .expect_err(&format!("timer_rtt_multiplier {bad} must be rejected"));
            assert!(err.contains("timer_rtt_multiplier"), "{err}");
        }
    }

    #[test]
    fn validation_catches_bad_decrease_threshold() {
        let base = ScenarioSpec::default();
        for bad in [-0.1, 1.1, f64::NAN] {
            let err = ScenarioSpec {
                decrease_threshold: bad,
                ..base.clone()
            }
            .validate()
            .expect_err(&format!("decrease_threshold {bad} must be rejected"));
            assert!(err.contains("decrease_threshold"), "{err}");
        }
    }

    #[test]
    fn validation_catches_bad_multi_domain_fields() {
        let base = ScenarioSpec::default();
        for (label, bad) in [
            (
                "zero domains",
                ScenarioSpec {
                    domains: 0,
                    ..base.clone()
                },
            ),
            (
                "too many domains",
                ScenarioSpec {
                    domains: 65,
                    ..base.clone()
                },
            ),
            (
                "depth without domains",
                ScenarioSpec {
                    pushback_depth: 1,
                    ..base.clone()
                },
            ),
            (
                "zero threshold",
                ScenarioSpec {
                    domains: 2,
                    escalation_threshold: 0.0,
                    ..base.clone()
                },
            ),
            (
                "zero tree fanout",
                ScenarioSpec {
                    domains: 2,
                    transit_topology: TransitTopology::Tree {
                        depth: 1,
                        fanout: 0,
                    },
                    ..base.clone()
                },
            ),
        ] {
            assert!(bad.validate().is_err(), "{label} must be rejected");
        }
        let multi = ScenarioSpec {
            domains: 3,
            pushback_depth: 3,
            ..base
        };
        assert!(multi.validate().is_ok());
    }

    #[test]
    fn resolved_policies_default_to_the_homogeneous_deployment() {
        let spec = ScenarioSpec {
            domains: 3,
            transit_topology: TransitTopology::Chain { depth: 2 },
            ..ScenarioSpec::default()
        };
        // victim + 2 transit + 2 remote stubs.
        assert_eq!(spec.total_domain_count(), 5);
        let policies = spec.resolved_policies();
        assert_eq!(policies.len(), 5);
        assert!(policies.iter().all(|&p| p == DefensePolicy::FullMafic));
    }

    #[test]
    fn transit_policy_applies_to_the_transit_tier_only() {
        let spec = ScenarioSpec {
            domains: 3,
            transit_topology: TransitTopology::Chain { depth: 2 },
            transit_policy: Some(DefensePolicy::ProportionalDrop),
            ..ScenarioSpec::default()
        };
        let policies = spec.resolved_policies();
        assert_eq!(policies[0], DefensePolicy::FullMafic, "victim stub");
        assert_eq!(policies[1], DefensePolicy::ProportionalDrop);
        assert_eq!(policies[2], DefensePolicy::ProportionalDrop);
        assert_eq!(policies[3], DefensePolicy::FullMafic, "source stub");
        assert_eq!(policies[4], DefensePolicy::FullMafic, "source stub");
    }

    #[test]
    fn overrides_win_over_everything() {
        let spec = ScenarioSpec {
            domains: 2,
            transit_topology: TransitTopology::Chain { depth: 1 },
            transit_policy: Some(DefensePolicy::ProportionalDrop),
            policy_overrides: vec![
                (
                    1,
                    DefensePolicy::AggregateRateLimit {
                        limit_bytes_per_sec: 1e5,
                    },
                ),
                (2, DefensePolicy::NonParticipating),
            ],
            participation_fraction: 1.0,
            ..ScenarioSpec::default()
        };
        assert!(spec.validate().is_ok());
        let policies = spec.resolved_policies();
        assert_eq!(policies[1].label(), "rate-limit");
        assert_eq!(policies[2], DefensePolicy::NonParticipating);
    }

    #[test]
    fn participation_draw_is_nested_and_never_touches_the_victim() {
        let spec = |f: f64| ScenarioSpec {
            domains: 4,
            transit_topology: TransitTopology::Chain { depth: 2 },
            participation_fraction: f,
            ..ScenarioSpec::default()
        };
        let fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
        let mut last: Vec<usize> = Vec::new();
        for f in fractions {
            let participating: Vec<usize> = spec(f)
                .resolved_policies()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.participating())
                .map(|(d, _)| d)
                .collect();
            assert!(participating.contains(&0), "victim always participates");
            assert!(
                last.iter().all(|d| participating.contains(d)),
                "fraction {f}: participation must grow nested, {last:?} -> {participating:?}"
            );
            last = participating;
        }
        assert_eq!(last.len(), spec(1.0).total_domain_count());
        // Fraction 0: only the victim domain defends.
        assert_eq!(
            spec(0.0)
                .resolved_policies()
                .iter()
                .filter(|p| p.participating())
                .count(),
            1
        );
    }

    #[test]
    fn validation_catches_bad_policy_fields() {
        let base = ScenarioSpec {
            domains: 2,
            transit_topology: TransitTopology::Chain { depth: 1 },
            ..ScenarioSpec::default()
        };
        for (label, bad) in [
            (
                "fraction above 1",
                ScenarioSpec {
                    participation_fraction: 1.5,
                    ..base.clone()
                },
            ),
            (
                "nan fraction",
                ScenarioSpec {
                    participation_fraction: f64::NAN,
                    ..base.clone()
                },
            ),
            (
                "single-domain transit policy",
                ScenarioSpec {
                    domains: 1,
                    transit_policy: Some(DefensePolicy::FullMafic),
                    ..ScenarioSpec::default()
                },
            ),
            (
                "single-domain overrides",
                ScenarioSpec {
                    domains: 1,
                    policy_overrides: vec![(0, DefensePolicy::FullMafic)],
                    ..ScenarioSpec::default()
                },
            ),
            (
                "single-domain partial participation",
                ScenarioSpec {
                    domains: 1,
                    participation_fraction: 0.5,
                    ..ScenarioSpec::default()
                },
            ),
            (
                "out-of-range override index",
                ScenarioSpec {
                    policy_overrides: vec![(9, DefensePolicy::FullMafic)],
                    ..base.clone()
                },
            ),
            (
                "duplicate override",
                ScenarioSpec {
                    policy_overrides: vec![
                        (1, DefensePolicy::FullMafic),
                        (1, DefensePolicy::ProportionalDrop),
                    ],
                    ..base.clone()
                },
            ),
            (
                "non-participating victim",
                ScenarioSpec {
                    policy_overrides: vec![(0, DefensePolicy::NonParticipating)],
                    ..base.clone()
                },
            ),
            (
                "invalid rate limit",
                ScenarioSpec {
                    transit_policy: Some(DefensePolicy::AggregateRateLimit {
                        limit_bytes_per_sec: 0.0,
                    }),
                    ..base.clone()
                },
            ),
        ] {
            assert!(bad.validate().is_err(), "{label} must be rejected");
        }
        assert!(base.validate().is_ok());
    }

    #[test]
    fn pushback_config_derives_from_the_spec() {
        let spec = ScenarioSpec {
            escalation_threshold: 0.5,
            trust_budget: 3,
            attestation_fraction: 0.1,
            subsidence_intervals: 4,
            ..ScenarioSpec::default()
        };
        let cfg = spec.pushback_config();
        assert!(cfg.validate().is_ok());
        assert!((cfg.threshold_bps - 625_000.0).abs() < 1e-6);
        assert!(cfg.healthy_bps > cfg.threshold_bps, "healthy above trigger");
        assert_eq!(cfg.trust.request_budget, 3);
        assert!((cfg.trust.attestation_fraction - 0.1).abs() < 1e-12);
        assert_eq!(cfg.subsidence_intervals, 4);
    }

    #[test]
    fn validation_catches_bad_trust_and_lifecycle_fields() {
        let multi = ScenarioSpec {
            domains: 3,
            transit_topology: TransitTopology::Chain { depth: 1 },
            ..ScenarioSpec::default()
        };
        for (label, bad) in [
            (
                "attestation fraction above 1",
                ScenarioSpec {
                    attestation_fraction: 1.5,
                    ..multi.clone()
                },
            ),
            (
                "nan attestation fraction",
                ScenarioSpec {
                    attestation_fraction: f64::NAN,
                    ..multi.clone()
                },
            ),
            (
                "attack_end before attack_start",
                ScenarioSpec {
                    attack_end: Some(SimTime::from_secs_f64(0.5)),
                    ..multi.clone()
                },
            ),
            (
                "attack_end past end",
                ScenarioSpec {
                    attack_end: Some(SimTime::from_secs_f64(99.0)),
                    ..multi.clone()
                },
            ),
            (
                "second_wave without attack_end",
                ScenarioSpec {
                    second_wave: Some((SimTime::from_secs_f64(5.0), SimTime::from_secs_f64(6.0))),
                    ..multi.clone()
                },
            ),
            (
                "second_wave resume before attack_end",
                ScenarioSpec {
                    attack_end: Some(SimTime::from_secs_f64(4.0)),
                    second_wave: Some((SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(6.0))),
                    ..multi.clone()
                },
            ),
            (
                "second_wave stop not after resume",
                ScenarioSpec {
                    attack_end: Some(SimTime::from_secs_f64(4.0)),
                    second_wave: Some((SimTime::from_secs_f64(5.0), SimTime::from_secs_f64(5.0))),
                    ..multi.clone()
                },
            ),
            (
                "second_wave past end",
                ScenarioSpec {
                    attack_end: Some(SimTime::from_secs_f64(4.0)),
                    second_wave: Some((SimTime::from_secs_f64(5.0), SimTime::from_secs_f64(99.0))),
                    ..multi.clone()
                },
            ),
            (
                "negative cross traffic",
                ScenarioSpec {
                    cross_traffic_bps: -1.0,
                    ..multi.clone()
                },
            ),
            (
                "cross traffic without a transit tier",
                ScenarioSpec {
                    cross_traffic_bps: 10_000.0,
                    transit_topology: TransitTopology::Chain { depth: 0 },
                    ..multi.clone()
                },
            ),
            (
                "single-domain cross traffic",
                ScenarioSpec {
                    cross_traffic_bps: 10_000.0,
                    ..ScenarioSpec::default()
                },
            ),
            (
                "single-domain malicious pushback",
                ScenarioSpec {
                    malicious_pushback: Some(1),
                    ..ScenarioSpec::default()
                },
            ),
            (
                "victim as the malicious requester",
                ScenarioSpec {
                    malicious_pushback: Some(0),
                    ..multi.clone()
                },
            ),
            (
                "out-of-range malicious domain",
                ScenarioSpec {
                    malicious_pushback: Some(40),
                    ..multi.clone()
                },
            ),
        ] {
            assert!(bad.validate().is_err(), "{label} must be rejected");
        }
        let good = ScenarioSpec {
            trust_budget: 0,
            attestation_fraction: 0.0,
            subsidence_intervals: 0,
            attack_end: Some(SimTime::from_secs_f64(4.0)),
            cross_traffic_bps: 50_000.0,
            malicious_pushback: Some(1),
            ..multi
        };
        assert!(good.validate().is_ok(), "{:?}", good.validate());
    }

    #[test]
    fn validation_catches_zero_victim_bin() {
        let err = ScenarioSpec {
            victim_bin: SimDuration::ZERO,
            ..ScenarioSpec::default()
        }
        .validate()
        .expect_err("zero victim_bin must be rejected");
        assert!(err.contains("victim_bin"), "{err}");
    }
}
