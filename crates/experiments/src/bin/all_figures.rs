//! Regenerates every table and figure of the paper in one run, reusing
//! shared sweeps where panels overlap.

use mafic_experiments::sweep::figure_from_sweep;
use mafic_experiments::{figures, tables, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    if let Err(e) = run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(cfg: &EngineConfig) -> Result<(), String> {
    print!("{}", tables::table_i());
    println!();
    print!("{}", tables::table_ii());
    println!();
    print!("{}", tables::default_run_summary(cfg)?);
    println!();

    // Shared (Pd x Vt) sweep feeds Figs. 3a, 4a, 5a, 6a and 7.
    let pd_vt = figures::sweep_pd_vt(cfg)?;
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 3(a)",
            "Attack packet dropping accuracy vs traffic volume",
            "Vt (flows)",
            "accuracy alpha (%)",
            &pd_vt,
            |r| r.accuracy_pct,
        )
    );
    println!("{}", figures::fig3b(cfg)?);
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 4(a)",
            "Traffic reduction rate vs traffic volume",
            "Vt (flows)",
            "traffic reduction beta (%)",
            &pd_vt,
            |r| r.traffic_reduction_pct,
        )
    );
    println!("{}", figures::fig4b(cfg)?);
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 5(a)",
            "False positive rate vs traffic volume",
            "Vt (flows)",
            "false positive rate (%)",
            &pd_vt,
            |r| r.false_positive_pct,
        )
    );
    // Shared (Vt x Gamma) sweep feeds Figs. 5b and 6b.
    let vt_gamma = figures::sweep_vt_gamma(cfg)?;
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 5(b)",
            "False positive rate vs percentage of TCP traffic",
            "TCP share (%)",
            "false positive rate (%)",
            &vt_gamma,
            |r| r.false_positive_pct,
        )
    );
    // Shared (Gamma x N) sweep feeds Figs. 5c and 6c.
    let gamma_n = figures::sweep_gamma_domain(cfg)?;
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 5(c)",
            "False positive rate vs domain size",
            "N (routers)",
            "false positive rate (%)",
            &gamma_n,
            |r| r.false_positive_pct,
        )
    );
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 6(a)",
            "False negative rate vs traffic volume",
            "Vt (flows)",
            "false negative rate (%)",
            &pd_vt,
            |r| r.false_negative_pct,
        )
    );
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 6(b)",
            "False negative rate vs percentage of TCP traffic",
            "TCP share (%)",
            "false negative rate (%)",
            &vt_gamma,
            |r| r.false_negative_pct,
        )
    );
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 6(c)",
            "False negative rate vs domain size",
            "N (routers)",
            "false negative rate (%)",
            &gamma_n,
            |r| r.false_negative_pct,
        )
    );
    println!(
        "{}",
        figure_from_sweep(
            "Fig. 7",
            "Legitimate packet dropping rate vs traffic volume",
            "Vt (flows)",
            "legit packet dropping rate Lr (%)",
            &pd_vt,
            |r| r.legit_drop_pct,
        )
    );
    // One pushback-depth sweep feeds both Fig. 8 panels.
    let depth = figures::sweep_pushback_depth(cfg)?;
    println!("{}", figures::fig8a_from_sweep(&depth));
    println!("{}", figures::fig8b_from_sweep(&depth));
    // One partial-deployment sweep feeds both Fig. 9 panels.
    let partial = figures::sweep_partial_deployment(cfg)?;
    println!("{}", figures::fig9a_from_sweep(&partial));
    println!("{}", figures::fig9b_from_sweep(&partial));
    print!("{}", figures::fig9_cost_summary(cfg)?);
    println!();
    // One honesty x trust-budget grid feeds both Fig. 10 panels and
    // the control-plane denial tables.
    let trust = figures::run_malicious_pushback_grid(cfg)?;
    println!("{}", figures::fig10a_from_grid(&trust));
    println!("{}", figures::fig10b_from_grid(&trust));
    print!("{}", figures::fig10_denial_summary(&trust));
    println!();
    // One strategy x trust-budget grid feeds both Fig. 11 panels, the
    // best-response summary, and the collateral cost tables.
    let adaptive = figures::run_adaptive_adversary_grid(cfg)?;
    println!("{}", figures::fig11a_from_grid(&adaptive));
    println!("{}", figures::fig11b_from_grid(&adaptive));
    println!("{}", figures::fig11_best_response_summary(&adaptive));
    print!("{}", figures::fig11_cost_summary(&adaptive));
    Ok(())
}
