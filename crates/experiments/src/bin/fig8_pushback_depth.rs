//! Regenerates Fig. 8: inter-domain pushback depth vs residual attack
//! rate at the victim and collateral damage. One depth sweep feeds both
//! panels.

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    match figures::sweep_pushback_depth(&cfg) {
        Ok(sweeps) => {
            println!("{}", figures::fig8a_from_sweep(&sweeps));
            println!("{}", figures::fig8b_from_sweep(&sweeps));
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
