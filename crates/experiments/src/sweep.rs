//! Parameter sweeps with trial averaging.

use mafic_metrics::MetricsReport;
use mafic_workload::{run_spec, ScenarioSpec};

/// How many seeds each sweep point averages over. Override with the
/// `MAFIC_TRIALS` environment variable; defaults to 3.
#[must_use]
pub fn trial_count() -> u64 {
    std::env::var("MAFIC_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Averages the rate fields of several reports (counts are summed).
///
/// # Panics
///
/// Panics if `reports` is empty.
#[must_use]
pub fn average_reports(reports: &[MetricsReport]) -> MetricsReport {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let n = reports.len() as f64;
    let mut out = MetricsReport::default();
    for r in reports {
        out.accuracy_pct += r.accuracy_pct;
        out.false_negative_pct += r.false_negative_pct;
        out.false_positive_pct += r.false_positive_pct;
        out.legit_drop_pct += r.legit_drop_pct;
        out.traffic_reduction_pct += r.traffic_reduction_pct;
        out.victim_rate_before += r.victim_rate_before;
        out.victim_rate_after += r.victim_rate_after;
        out.attack_seen += r.attack_seen;
        out.attack_dropped += r.attack_dropped;
        out.legit_seen += r.legit_seen;
        out.legit_dropped += r.legit_dropped;
        out.legit_dropped_as_malicious += r.legit_dropped_as_malicious;
        out.flows.legit_flows += r.flows.legit_flows;
        out.flows.attack_flows += r.flows.attack_flows;
        out.flows.legit_condemned += r.flows.legit_condemned;
        out.flows.attack_condemned += r.flows.attack_condemned;
        out.flows.legit_cleared += r.flows.legit_cleared;
        out.flows.attack_cleared += r.flows.attack_cleared;
    }
    out.accuracy_pct /= n;
    out.false_negative_pct /= n;
    out.false_positive_pct /= n;
    out.legit_drop_pct /= n;
    out.traffic_reduction_pct /= n;
    out.victim_rate_before /= n;
    out.victim_rate_after /= n;
    out
}

/// Runs `spec` once per seed and averages the reports.
///
/// # Errors
///
/// Propagates the first build/run error.
pub fn run_averaged(base: &ScenarioSpec, trials: u64) -> Result<MetricsReport, String> {
    let mut reports = Vec::with_capacity(trials as usize);
    for t in 0..trials {
        let spec = ScenarioSpec {
            seed: base
                .seed
                .wrapping_add(t.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..base.clone()
        };
        reports.push(run_spec(spec)?.report);
    }
    Ok(average_reports(&reports))
}

/// One point of a sweep: the x value and its averaged report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept x value.
    pub x: f64,
    /// The trial-averaged report at this point.
    pub report: MetricsReport,
}

/// One swept series: a legend label plus its points.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeries {
    /// Legend label.
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// Extracts `(x, metric)` pairs via an accessor.
    #[must_use]
    pub fn extract(&self, metric: fn(&MetricsReport) -> f64) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.x, metric(&p.report)))
            .collect()
    }
}

/// Runs a two-dimensional sweep: for each `(series value, x value)` pair
/// `make_spec` produces the scenario, which is run `trials` times.
///
/// # Errors
///
/// Propagates the first build/run error.
pub fn sweep<S: Clone + std::fmt::Debug>(
    series_values: &[(String, S)],
    x_values: &[f64],
    trials: u64,
    make_spec: impl Fn(&S, f64) -> ScenarioSpec,
) -> Result<Vec<SweepSeries>, String> {
    let mut out = Vec::with_capacity(series_values.len());
    for (label, sv) in series_values {
        let mut points = Vec::with_capacity(x_values.len());
        for &x in x_values {
            let spec = make_spec(sv, x);
            let report = run_averaged(&spec, trials)?;
            points.push(SweepPoint { x, report });
        }
        out.push(SweepSeries {
            label: label.clone(),
            points,
        });
    }
    Ok(out)
}

/// Builds a [`crate::FigureData`] from sweep output and a metric accessor.
#[must_use]
pub fn figure_from_sweep(
    id: &str,
    title: &str,
    x_label: &str,
    y_label: &str,
    sweeps: &[SweepSeries],
    metric: fn(&MetricsReport) -> f64,
) -> crate::FigureData {
    let mut fig = crate::FigureData::new(id, title, x_label, y_label);
    for s in sweeps {
        fig.push_series(s.label.clone(), s.extract(metric));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_divides_rates_and_sums_counts() {
        let a = MetricsReport {
            accuracy_pct: 90.0,
            attack_seen: 100,
            ..MetricsReport::default()
        };
        let b = MetricsReport {
            accuracy_pct: 100.0,
            attack_seen: 50,
            ..MetricsReport::default()
        };
        let avg = average_reports(&[a, b]);
        assert!((avg.accuracy_pct - 95.0).abs() < 1e-9);
        assert_eq!(avg.attack_seen, 150);
    }

    #[test]
    #[should_panic(expected = "cannot average zero reports")]
    fn empty_average_rejected() {
        let _ = average_reports(&[]);
    }

    #[test]
    fn trial_count_defaults_to_three() {
        // Only valid when the env var is unset in the test environment.
        if std::env::var("MAFIC_TRIALS").is_err() {
            assert_eq!(trial_count(), 3);
        }
    }

    #[test]
    fn sweep_runs_tiny_grid() {
        let series = vec![("Pd=90%".to_string(), 0.9f64)];
        let xs = vec![8.0];
        let sweeps = sweep(&series, &xs, 1, |&pd, x| ScenarioSpec {
            total_flows: x as usize,
            n_routers: 5,
            drop_probability: pd,
            end: mafic_netsim::SimTime::from_secs_f64(2.5),
            ..ScenarioSpec::default()
        })
        .unwrap();
        assert_eq!(sweeps.len(), 1);
        assert_eq!(sweeps[0].points.len(), 1);
        let fig = figure_from_sweep("T", "t", "x", "y", &sweeps, |r| r.accuracy_pct);
        assert_eq!(fig.series.len(), 1);
    }
}
