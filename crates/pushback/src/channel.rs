//! The control channel: where inter-domain pushback packets land.

use mafic_netsim::{Agent, AgentCtx, ControlMsg, Packet, PacketKind, SimTime};
use std::any::Any;

/// The agent bound to a domain's control address.
///
/// Pushback envelopes travel as [`PacketKind::Pushback`] packets over
/// the inter-domain links — they queue, serialize, and propagate like
/// any other traffic, so the control plane obeys the same total event
/// order as the data plane (ARCHITECTURE.md rule 2). The channel is
/// also the **authentication line** of the versioned protocol: an
/// envelope whose claimed [`mafic_netsim::RequesterId`] does not match
/// the carrying packet's source address is a forgery speaking for
/// somebody else's boundary — it is dropped (and counted) here, before
/// the coordinator or its trust ledger ever see it. The pushback
/// monitor drains the inbox once per interval and feeds the domain's
/// coordinator.
#[derive(Debug, Default)]
pub struct ControlChannel {
    inbox: Vec<(SimTime, ControlMsg)>,
    received_total: u64,
    forged_dropped: u64,
}

impl ControlChannel {
    /// Creates an empty channel.
    #[must_use]
    pub fn new() -> Self {
        ControlChannel::default()
    }

    /// Removes and returns the queued envelopes in arrival order.
    pub fn drain(&mut self) -> Vec<(SimTime, ControlMsg)> {
        std::mem::take(&mut self.inbox)
    }

    /// Moves the queued envelopes into `out` (clearing it first) — the
    /// allocation-free variant of [`drain`](ControlChannel::drain): the
    /// buffers swap, so a monitor draining once per interval recycles
    /// the same two allocations for the whole run.
    pub fn drain_into(&mut self, out: &mut Vec<(SimTime, ControlMsg)>) {
        out.clear();
        std::mem::swap(&mut self.inbox, out);
    }

    /// Envelopes accepted over the channel's lifetime.
    #[must_use]
    pub fn received_total(&self) -> u64 {
        self.received_total
    }

    /// Envelopes dropped because the claimed requester identity did not
    /// match the packet's source address.
    #[must_use]
    pub fn forged_dropped(&self) -> u64 {
        self.forged_dropped
    }
}

impl mafic_obs::StateHash for ControlChannel {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u64(self.received_total);
        h.write_u64(self.forged_dropped);
        h.write_usize(self.inbox.len());
        for (at, msg) in &self.inbox {
            h.write_u64(at.as_nanos());
            msg.hash_state(h);
        }
    }
}

impl Agent for ControlChannel {
    fn on_start(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        if let PacketKind::Pushback(msg) = packet.kind {
            if msg.requester.addr() != packet.key.src {
                self.forged_dropped += 1;
                return;
            }
            self.inbox.push((ctx.now(), msg));
            self.received_total += 1;
        }
    }

    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        w.write_usize(self.inbox.len());
        for (at, msg) in &self.inbox {
            w.write_u64(at.as_nanos());
            mafic_netsim::snap_control_msg(msg, w);
        }
        w.write_u64(self.received_total);
        w.write_u64(self.forged_dropped);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        let n = r.read_usize()?;
        self.inbox = Vec::with_capacity(n);
        for _ in 0..n {
            let at = SimTime::from_nanos(r.read_u64()?);
            let msg = mafic_netsim::read_control_msg(r)?;
            self.inbox.push((at, msg));
        }
        self.received_total = r.read_u64()?;
        self.forged_dropped = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::AgentHarness;
    use mafic_netsim::{Addr, ControlVerb, FlowKey, Provenance, RequesterId};

    const CTRL_SRC: Addr = Addr::new(0x0BFA_0001);

    fn envelope(nonce: u64, verb: ControlVerb) -> ControlMsg {
        ControlMsg::new(RequesterId::new(CTRL_SRC), nonce, verb)
    }

    fn push_pkt(src: Addr, msg: ControlMsg) -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(src, Addr::new(2), 9, 9),
            kind: PacketKind::Pushback(msg),
            size_bytes: 64,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn queues_pushback_envelopes_in_arrival_order() {
        let mut h = AgentHarness::new();
        let mut ch = ControlChannel::new();
        let victim = Addr::new(42);
        let _ = h.deliver(
            &mut ch,
            push_pkt(
                CTRL_SRC,
                envelope(
                    1,
                    ControlVerb::Request {
                        victim,
                        aggregate_bps: 1_000_000,
                        budget: 2,
                    },
                ),
            ),
        );
        let _ = h.deliver(
            &mut ch,
            push_pkt(
                CTRL_SRC,
                envelope(2, ControlVerb::Refresh { victim, budget: 1 }),
            ),
        );
        let msgs = ch.drain();
        assert_eq!(msgs.len(), 2);
        assert!(matches!(
            msgs[0].1.verb,
            ControlVerb::Request { budget: 2, .. }
        ));
        assert!(matches!(msgs[1].1.verb, ControlVerb::Refresh { .. }));
        assert!(ch.drain().is_empty(), "drain empties the inbox");
        assert_eq!(ch.received_total(), 2);
        assert_eq!(ch.forged_dropped(), 0);
    }

    #[test]
    fn drain_into_recycles_the_buffers() {
        let mut h = AgentHarness::new();
        let mut ch = ControlChannel::new();
        let victim = Addr::new(42);
        let _ = h.deliver(
            &mut ch,
            push_pkt(CTRL_SRC, envelope(1, ControlVerb::Withdraw { victim })),
        );
        let mut out = vec![(SimTime::ZERO, envelope(9, ControlVerb::Stop { victim }))];
        ch.drain_into(&mut out);
        assert_eq!(out.len(), 1, "stale contents cleared, envelope landed");
        assert!(matches!(out[0].1.verb, ControlVerb::Withdraw { .. }));
        // The inbox is empty again and keeps accepting.
        let _ = h.deliver(
            &mut ch,
            push_pkt(CTRL_SRC, envelope(2, ControlVerb::Stop { victim })),
        );
        ch.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1.verb, ControlVerb::Stop { .. }));
    }

    #[test]
    fn forged_requester_identities_are_dropped() {
        let mut h = AgentHarness::new();
        let mut ch = ControlChannel::new();
        // The envelope claims CTRL_SRC but arrives from another address.
        let forged = push_pkt(
            Addr::new(0x0CFA_0001),
            envelope(
                1,
                ControlVerb::Withdraw {
                    victim: Addr::new(42),
                },
            ),
        );
        let _ = h.deliver(&mut ch, forged);
        assert!(ch.drain().is_empty());
        assert_eq!(ch.received_total(), 0);
        assert_eq!(ch.forged_dropped(), 1);
    }

    #[test]
    fn non_pushback_packets_are_ignored() {
        let mut h = AgentHarness::new();
        let mut ch = ControlChannel::new();
        let mut p = push_pkt(
            CTRL_SRC,
            envelope(
                1,
                ControlVerb::Withdraw {
                    victim: Addr::new(1),
                },
            ),
        );
        p.kind = PacketKind::Udp;
        let _ = h.deliver(&mut ch, p);
        assert!(ch.drain().is_empty());
        assert_eq!(ch.received_total(), 0);
    }

    #[test]
    fn snapshot_round_trips_an_undrained_inbox() {
        use mafic_obs::StateHash;
        let mut h = AgentHarness::new();
        let mut ch = ControlChannel::new();
        let victim = Addr::new(42);
        let _ = h.deliver(
            &mut ch,
            push_pkt(
                CTRL_SRC,
                envelope(
                    1,
                    ControlVerb::Request {
                        victim,
                        aggregate_bps: 1_000_000,
                        budget: 2,
                    },
                ),
            ),
        );
        let _ = h.deliver(
            &mut ch,
            push_pkt(CTRL_SRC, envelope(2, ControlVerb::Stop { victim })),
        );
        let mut w = mafic_netsim::SnapWriter::new();
        ch.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = ControlChannel::new();
        let mut r = mafic_netsim::SnapReader::new(&bytes);
        restored.snap_restore(&mut r).expect("restore succeeds");
        assert!(r.is_empty());
        let digest = |c: &ControlChannel| {
            let mut h = mafic_obs::Fnv64::new();
            c.hash_state(&mut h);
            h.finish()
        };
        assert_eq!(digest(&ch), digest(&restored));
        let msgs = restored.drain();
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0].1.verb, ControlVerb::Request { .. }));
        assert!(matches!(msgs[1].1.verb, ControlVerb::Stop { .. }));
    }
}
