//! The per-run metrics report — the paper's α, β, θp, θn and Lr.
//!
//! All rates are computed from the [`StatsCollector`]'s ground-truth flow
//! records, with the "seen at ATR" counters as denominators (packets that
//! crossed the defense line while it was active):
//!
//! * **α** (attacking-packet dropping accuracy) — attack packets dropped
//!   by the defense ÷ attack packets that arrived at the ATRs.
//! * **θn** (false negative rate) — attack packets that crossed the
//!   defense line undropped ÷ attack packets that arrived at the ATRs.
//! * **θp** (false positive rate) — legitimate packets dropped *as
//!   malicious* (PDT / illegal-source verdicts) ÷ all packets that
//!   arrived at the ATRs.
//! * **Lr** (legitimate-packet dropping rate) — legitimate packets
//!   dropped by the defense for any reason, probing included, ÷
//!   legitimate packets that arrived at the ATRs.
//! * **β** (traffic reduction rate) — relative drop of the victim's
//!   arrival rate from just before the pushback trigger to just after.

use mafic_netsim::{SimDuration, SimTime, StatsCollector};
use std::fmt;

/// Measurement windows anchored at the pushback trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureWindows {
    /// When the defense was triggered.
    pub trigger_at: SimTime,
    /// Length of the pre-trigger window used for the "before" rate.
    pub before: SimDuration,
    /// Dead time right after the trigger that is excluded from the
    /// "after" rate (control propagation + probe round trips).
    pub settle: SimDuration,
    /// Length of the post-settle window used for the "after" rate.
    pub after: SimDuration,
    /// Length of the post-settle window used for the **residual attack
    /// rate** (the attack traffic still reaching the victim once the
    /// defense is up). Fixed-length on purpose: bins past the end of a
    /// run count as empty, so runs of slightly different activity never
    /// compare rates over different denominators.
    pub residual: SimDuration,
}

impl Default for MeasureWindows {
    fn default() -> Self {
        MeasureWindows {
            trigger_at: SimTime::ZERO,
            before: SimDuration::from_millis(500),
            settle: SimDuration::from_millis(100),
            after: SimDuration::from_millis(400),
            residual: SimDuration::from_secs(2),
        }
    }
}

/// Flow-level classification tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTally {
    /// Legitimate flows observed at the ATRs.
    pub legit_flows: u64,
    /// Attack flows observed at the ATRs.
    pub attack_flows: u64,
    /// Legitimate flows wrongly condemned (declared malicious).
    pub legit_condemned: u64,
    /// Attack flows correctly condemned.
    pub attack_condemned: u64,
    /// Legitimate flows declared nice.
    pub legit_cleared: u64,
    /// Attack flows wrongly declared nice.
    pub attack_cleared: u64,
}

/// The complete per-run report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsReport {
    /// α — attack-packet dropping accuracy, percent.
    pub accuracy_pct: f64,
    /// θn — false negative rate, percent.
    pub false_negative_pct: f64,
    /// θp — false positive rate, percent.
    pub false_positive_pct: f64,
    /// Lr — legitimate-packet dropping rate, percent.
    pub legit_drop_pct: f64,
    /// β — traffic reduction rate at the victim, percent.
    pub traffic_reduction_pct: f64,
    /// Attack packets that crossed the defense line while active.
    pub attack_seen: u64,
    /// Attack packets dropped by the defense.
    pub attack_dropped: u64,
    /// Legitimate packets that crossed the defense line while active.
    pub legit_seen: u64,
    /// Legitimate packets dropped by the defense (any reason).
    pub legit_dropped: u64,
    /// Legitimate packets dropped as malicious (PDT verdicts).
    pub legit_dropped_as_malicious: u64,
    /// Victim arrival rate before the trigger (bytes/s).
    pub victim_rate_before: f64,
    /// Victim arrival rate after the trigger (bytes/s).
    pub victim_rate_after: f64,
    /// Residual **attack** arrival rate at the victim over the
    /// post-trigger residual window (bytes/s) — what the whole defense
    /// line, however deep, failed to suppress. Ground truth read by the
    /// metrics layer only.
    pub residual_attack_bps: f64,
    /// Legitimate goodput **delivered** to the victim over the same
    /// residual window (bytes/s). The flip side of collateral damage:
    /// TCP sources on flood-congested paths back off rather than drop,
    /// so relieved congestion shows up here first.
    pub legit_goodput_bps: f64,
    /// Legitimate data packets sent by their origins (whole run).
    pub legit_data_sent: u64,
    /// Legitimate data packets lost anywhere for any reason — defense
    /// drops *and* queue losses on flood-congested links.
    pub legit_data_lost: u64,
    /// Collateral damage: `legit_data_lost / legit_data_sent`, percent.
    /// Unlike `Lr` (defense drops at the ATRs only) this includes the
    /// congestion losses the flood itself inflicts, so it captures what
    /// deeper pushback deployment relieves.
    pub collateral_pct: f64,
    /// Flow-level classification tallies.
    pub flows: FlowTally,
    /// Peak live packets in the simulator's arena over the run — the
    /// same number the bench harness and the run ledger report. Zero
    /// until the runner fills it in ([`MetricsReport::from_stats`] has
    /// no simulator handle).
    pub peak_arena_packets: u64,
    /// Control-channel inbox drains served by the runner's recycled
    /// scratch buffer (allocation-free steady state). Runner-filled.
    pub scratch_inbox_drains: u64,
    /// Sketch-epoch harvests that reused a previously allocated slot
    /// instead of allocating a fresh sketch. Runner-filled.
    pub scratch_sketch_recycles: u64,
    /// Mean per-interval distinct source-address cardinality observed
    /// at the victim domain's taps (LogLog estimate) — the subsidence
    /// guard's secondary evidence surfaced for figures. Runner-filled;
    /// zero until then.
    pub victim_source_cardinality: f64,
}

impl MetricsReport {
    /// Computes the report from a run's statistics.
    ///
    /// `windows` anchors the β measurement; pass the trigger time the
    /// harness observed. If the collector has no victim watch, β is 0.
    #[must_use]
    pub fn from_stats(stats: &StatsCollector, windows: &MeasureWindows) -> Self {
        let mut report = MetricsReport::default();
        for (_key, rec) in stats.flows() {
            // Collateral accounting covers every legitimate data flow,
            // whether or not a defense filter ever saw it: queue losses
            // on flood-congested links hit flows the ATRs never touch.
            if !rec.is_attack && rec.is_tcp && rec.sent > 0 {
                report.legit_data_sent += rec.sent;
                report.legit_data_lost += rec.dropped_total().min(rec.sent);
            }
            if rec.seen_at_atr == 0 {
                continue; // Never crossed the defense line (e.g. ACK path).
            }
            let filter_drops = rec.dropped_by_filter();
            // `seen_at_atr` counts arrivals while active; a flow's drops
            // cannot exceed its sightings.
            let filter_drops = filter_drops.min(rec.seen_at_atr);
            if rec.is_attack {
                report.attack_seen += rec.seen_at_atr;
                report.attack_dropped += filter_drops;
                if rec.declared_malicious > 0 {
                    report.flows.attack_condemned += 1;
                }
                if rec.declared_nice > 0 {
                    report.flows.attack_cleared += 1;
                }
                report.flows.attack_flows += 1;
            } else {
                report.legit_seen += rec.seen_at_atr;
                report.legit_dropped += filter_drops;
                report.legit_dropped_as_malicious +=
                    (rec.dropped_permanent + rec.dropped_illegal).min(rec.seen_at_atr);
                if rec.declared_malicious > 0 {
                    report.flows.legit_condemned += 1;
                }
                if rec.declared_nice > 0 {
                    report.flows.legit_cleared += 1;
                }
                report.flows.legit_flows += 1;
            }
        }
        let (before, after) = victim_rates(stats, windows);
        report.victim_rate_before = before;
        report.victim_rate_after = after;
        report.residual_attack_bps = residual_attack_rate(stats, windows);
        report.legit_goodput_bps = legit_goodput_rate(stats, windows);
        report.recompute_derived();
        report
    }

    /// Recomputes the derived metrics — α, θn, θp, Lr from the packet
    /// counts and β from the victim rates — in place. This is the single
    /// definition of the five formulas: [`MetricsReport::from_stats`]
    /// and trial aggregation (which sums counts across runs and must
    /// re-derive the percentages from the sums) both go through it.
    pub fn recompute_derived(&mut self) {
        let total_seen = self.attack_seen + self.legit_seen;
        self.accuracy_pct = percent(self.attack_dropped, self.attack_seen);
        self.false_negative_pct = percent(self.attack_seen - self.attack_dropped, self.attack_seen);
        self.false_positive_pct = percent(self.legit_dropped_as_malicious, total_seen);
        self.legit_drop_pct = percent(self.legit_dropped, self.legit_seen);
        self.collateral_pct = percent(self.legit_data_lost, self.legit_data_sent);
        self.traffic_reduction_pct = if self.victim_rate_before > 0.0 {
            ((self.victim_rate_before - self.victim_rate_after) / self.victim_rate_before * 100.0)
                .max(0.0)
        } else {
            0.0
        };
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MAFIC run metrics")?;
        writeln!(f, "  accuracy (alpha)        : {:7.3} %", self.accuracy_pct)?;
        writeln!(
            f,
            "  false negatives (th_n)  : {:7.3} %",
            self.false_negative_pct
        )?;
        writeln!(
            f,
            "  false positives (th_p)  : {:7.4} %",
            self.false_positive_pct
        )?;
        writeln!(
            f,
            "  legit drops (Lr)        : {:7.3} %",
            self.legit_drop_pct
        )?;
        writeln!(
            f,
            "  traffic reduction (beta): {:7.2} %  ({:.0} -> {:.0} B/s)",
            self.traffic_reduction_pct, self.victim_rate_before, self.victim_rate_after
        )?;
        writeln!(
            f,
            "  residual attack rate    : {:7.0} B/s",
            self.residual_attack_bps
        )?;
        writeln!(
            f,
            "  legit goodput (settled) : {:7.0} B/s",
            self.legit_goodput_bps
        )?;
        writeln!(
            f,
            "  collateral damage       : {:7.3} %  ({}/{} legit data packets lost)",
            self.collateral_pct, self.legit_data_lost, self.legit_data_sent
        )?;
        writeln!(
            f,
            "  packets: attack {}/{} dropped, legit {}/{} dropped",
            self.attack_dropped, self.attack_seen, self.legit_dropped, self.legit_seen
        )?;
        write!(
            f,
            "  flows: {} attack ({} condemned, {} cleared), {} legit ({} condemned)",
            self.flows.attack_flows,
            self.flows.attack_condemned,
            self.flows.attack_cleared,
            self.flows.legit_flows,
            self.flows.legit_condemned
        )
    }
}

fn percent(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64 * 100.0
    }
}

/// Mean victim arrival rates (bytes/s) in the before/after windows.
///
/// Prefers the *offered load* series (arrivals at the victim's last-hop
/// router, before the defense and the bottleneck act) when one was
/// recorded, matching where the paper measures its traffic-reduction
/// rate; otherwise falls back to the delivery series.
fn victim_rates(stats: &StatsCollector, windows: &MeasureWindows) -> (f64, f64) {
    let Some((bin_width, bins)) = victim_series(stats) else {
        return (0.0, 0.0);
    };
    let rate_in = |from: SimTime, to: SimTime| -> f64 {
        if to <= from {
            return 0.0;
        }
        let lo = (from.as_nanos() / bin_width.as_nanos()) as usize;
        let hi = ((to.as_nanos().saturating_sub(1)) / bin_width.as_nanos()) as usize;
        let mut bytes = 0u64;
        let mut count = 0u64;
        for idx in lo..=hi {
            if let Some(bin) = bins.get(idx) {
                bytes += bin.total_bytes();
            }
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            bytes as f64 / (count as f64 * bin_width.as_secs_f64())
        }
    };
    let trigger = windows.trigger_at;
    let since_zero = trigger.saturating_since(SimTime::ZERO);
    let before_start = SimTime::ZERO + (since_zero - since_zero.min(windows.before));
    let before = rate_in(before_start, trigger);
    let after_start = trigger + windows.settle;
    let after = rate_in(after_start, after_start + windows.after);
    (before, after)
}

/// The victim time series used for rate measurements: the offered-load
/// (arrival) series when one was recorded, else the delivery series.
fn victim_series(stats: &StatsCollector) -> Option<(SimDuration, &[mafic_netsim::VictimBin])> {
    if let Some(w) = stats.arrival_bin_width() {
        Some((w, stats.arrival_bins()))
    } else {
        stats.victim_bin_width().map(|w| (w, stats.victim_bins()))
    }
}

/// Mean byte rate of `extract`-selected traffic over the fixed-length
/// residual window behind the trigger. Bins past the recorded series
/// count as empty, keeping the denominator identical across runs.
fn residual_window_rate(
    bin_width: SimDuration,
    bins: &[mafic_netsim::VictimBin],
    windows: &MeasureWindows,
    extract: impl Fn(&mafic_netsim::VictimBin) -> u64,
) -> f64 {
    if windows.residual.is_zero() {
        return 0.0;
    }
    let from = windows.trigger_at + windows.settle;
    let Some(to) = from.checked_add(windows.residual) else {
        return 0.0;
    };
    let lo = (from.as_nanos() / bin_width.as_nanos()) as usize;
    let hi = ((to.as_nanos().saturating_sub(1)) / bin_width.as_nanos()) as usize;
    let mut bytes = 0u64;
    let mut count = 0u64;
    for idx in lo..=hi {
        if let Some(bin) = bins.get(idx) {
            bytes += extract(bin);
        }
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        bytes as f64 / (count as f64 * bin_width.as_secs_f64())
    }
}

/// Mean **attack** arrival rate (bytes/s) at the victim over the
/// residual window.
fn residual_attack_rate(stats: &StatsCollector, windows: &MeasureWindows) -> f64 {
    let Some((bin_width, bins)) = victim_series(stats) else {
        return 0.0;
    };
    residual_window_rate(bin_width, bins, windows, |b| b.attack_bytes)
}

/// Mean **legitimate delivered** rate (bytes/s) at the victim over the
/// residual window — always from the delivery series, never the
/// offered-load series.
fn legit_goodput_rate(stats: &StatsCollector, windows: &MeasureWindows) -> f64 {
    let Some(bin_width) = stats.victim_bin_width() else {
        return 0.0;
    };
    residual_window_rate(bin_width, stats.victim_bins(), windows, |b| b.legit_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::{
        Addr, AgentId, DropReason, FlowKey, NodeId, Packet, PacketKind, Provenance,
    };

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Addr::from_octets(10, 1, 0, 1),
            Addr::from_octets(10, 200, 0, 1),
            port,
            80,
        )
    }

    fn pkt(port: u16, attack: bool) -> Packet {
        Packet {
            id: u64::from(port),
            key: key(port),
            kind: PacketKind::Udp,
            size_bytes: 500,
            created_at: SimTime::ZERO,
            provenance: Provenance {
                origin: AgentId::from_index(0),
                is_attack: attack,
            },
            hops: 0,
        }
    }

    /// Collector with one attack flow (90/100 dropped) and one legit flow
    /// (10/100 dropped probing, 2 dropped permanent).
    fn collector() -> StatsCollector {
        let mut s = StatsCollector::new();
        let attack = pkt(1, true);
        let legit = pkt(2, false);
        s.declare_flow(attack.key, true, false);
        s.declare_flow(legit.key, false, true);
        for _ in 0..100 {
            s.on_atr_seen(attack.key);
            s.on_atr_seen(legit.key);
        }
        for _ in 0..90 {
            s.on_dropped(&attack, DropReason::FilterPermanent);
        }
        for _ in 0..10 {
            s.on_dropped(&legit, DropReason::FilterProbing);
        }
        for _ in 0..2 {
            s.on_dropped(&legit, DropReason::FilterPermanent);
        }
        s.on_flow_declared(attack.key, false);
        s.on_flow_declared(legit.key, true);
        s
    }

    #[test]
    fn packet_rates_match_definitions() {
        let r = MetricsReport::from_stats(&collector(), &MeasureWindows::default());
        assert!((r.accuracy_pct - 90.0).abs() < 1e-9);
        assert!((r.false_negative_pct - 10.0).abs() < 1e-9);
        // θp: 2 permanent legit drops over 200 total seen = 1%.
        assert!((r.false_positive_pct - 1.0).abs() < 1e-9);
        // Lr: 12 legit drops over 100 legit seen = 12%.
        assert!((r.legit_drop_pct - 12.0).abs() < 1e-9);
    }

    #[test]
    fn flow_tallies_track_verdicts() {
        let r = MetricsReport::from_stats(&collector(), &MeasureWindows::default());
        assert_eq!(r.flows.attack_flows, 1);
        assert_eq!(r.flows.attack_condemned, 1);
        assert_eq!(r.flows.legit_flows, 1);
        assert_eq!(r.flows.legit_cleared, 1);
        assert_eq!(r.flows.legit_condemned, 0);
    }

    #[test]
    fn flows_never_seen_at_atr_are_excluded() {
        let mut s = collector();
        let stray = pkt(9, false);
        s.on_sent(&stray); // sent but never crossed the defense line
        let r = MetricsReport::from_stats(&s, &MeasureWindows::default());
        assert_eq!(r.flows.legit_flows, 1);
    }

    #[test]
    fn traffic_reduction_from_victim_series() {
        let mut s = StatsCollector::new();
        let victim_node = NodeId::from_index(5);
        s.watch_victim(victim_node, SimDuration::from_millis(100));
        let p = pkt(1, true);
        // 10 deliveries per 100ms bin before t=1s, 1 per bin after t=1.1s.
        for ms in (0..1000).step_by(10) {
            s.on_delivered(
                &p,
                victim_node,
                SimTime::ZERO + SimDuration::from_millis(ms),
            );
        }
        for ms in (1100..1500).step_by(100) {
            s.on_delivered(
                &p,
                victim_node,
                SimTime::ZERO + SimDuration::from_millis(ms),
            );
        }
        let windows = MeasureWindows {
            trigger_at: SimTime::from_secs_f64(1.0),
            before: SimDuration::from_millis(500),
            settle: SimDuration::from_millis(100),
            after: SimDuration::from_millis(400),
            residual: SimDuration::from_millis(400),
        };
        let r = MetricsReport::from_stats(&s, &windows);
        // Before: 10 pkts × 500 B per 100 ms = 50 kB/s. After: 5 kB/s.
        assert!(
            (r.victim_rate_before - 50_000.0).abs() < 1.0,
            "{}",
            r.victim_rate_before
        );
        assert!(
            (r.victim_rate_after - 5_000.0).abs() < 1.0,
            "{}",
            r.victim_rate_after
        );
        assert!((r.traffic_reduction_pct - 90.0).abs() < 0.1);
        // The delivered flow is an attack flow: the residual window
        // (1.1 s – 1.5 s, 4 bins of 1 packet) sees 5 kB/s of it.
        assert!(
            (r.residual_attack_bps - 5_000.0).abs() < 1.0,
            "{}",
            r.residual_attack_bps
        );
    }

    #[test]
    fn residual_window_counts_missing_bins_as_empty() {
        let mut s = StatsCollector::new();
        let victim_node = NodeId::from_index(5);
        s.watch_victim(victim_node, SimDuration::from_millis(100));
        let p = pkt(1, true);
        // One attack packet right after the trigger, nothing else — the
        // series ends early, but the residual denominator stays fixed.
        s.on_delivered(&p, victim_node, SimTime::from_secs_f64(1.15));
        let windows = MeasureWindows {
            trigger_at: SimTime::from_secs_f64(1.0),
            settle: SimDuration::from_millis(100),
            residual: SimDuration::from_secs(1),
            ..MeasureWindows::default()
        };
        let r = MetricsReport::from_stats(&s, &windows);
        // 500 bytes over a fixed 1 s window.
        assert!((r.residual_attack_bps - 500.0).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn collateral_counts_all_legit_data_losses() {
        let mut s = StatsCollector::new();
        let legit = pkt(2, false);
        s.declare_flow(legit.key, false, true);
        for _ in 0..100 {
            s.on_sent(&legit);
        }
        // 10 defense drops + 5 congestion (queue) drops: collateral sees
        // both, even though the flow never crossed an active ATR.
        for _ in 0..10 {
            s.on_dropped(&legit, DropReason::FilterProbing);
        }
        for _ in 0..5 {
            s.on_dropped(&legit, DropReason::QueueFull);
        }
        // A UDP "legit" flow (ACK-path record) must not count as data.
        let ack_path = pkt(3, false);
        s.on_sent(&ack_path);
        let r = MetricsReport::from_stats(&s, &MeasureWindows::default());
        assert_eq!(r.legit_data_sent, 100);
        assert_eq!(r.legit_data_lost, 15);
        assert!((r.collateral_pct - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_collector_yields_zeroes() {
        let r = MetricsReport::from_stats(&StatsCollector::new(), &MeasureWindows::default());
        assert_eq!(r.accuracy_pct, 0.0);
        assert_eq!(r.traffic_reduction_pct, 0.0);
        assert_eq!(r.attack_seen, 0);
    }

    #[test]
    fn display_contains_all_metrics() {
        let r = MetricsReport::from_stats(&collector(), &MeasureWindows::default());
        let text = r.to_string();
        for needle in ["alpha", "th_n", "th_p", "Lr", "beta"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
