//! Acceptance tests for heterogeneous per-domain defenses under
//! partial deployment (the Fig. 9 scenario): the victim's residual
//! attack rate must be monotonically non-increasing as the
//! participation fraction grows (coverage can only help), the
//! full-participation all-MAFIC assignment must reproduce the
//! homogeneous path byte-for-byte, coverage gaps must be real (nobody
//! to escalate to at fraction zero), and the whole grid must be
//! deterministic at any engine worker count.

use mafic_suite::core::DefensePolicy;
use mafic_suite::experiments::engine::run_specs;
use mafic_suite::experiments::figures::{
    fig8_spec, fig9_spec, participation_axis, transit_policy_series, FIG9_RATE_LIMIT_BPS,
};
use mafic_suite::workload::{run_spec, RunOutcome, ScenarioSpec};

fn run_fraction(fraction: f64) -> RunOutcome {
    run_spec(fig9_spec(fraction, DefensePolicy::FullMafic)).expect("fig9 scenario runs")
}

#[test]
fn residual_attack_rate_is_monotone_non_increasing_in_participation() {
    let mut last = f64::INFINITY;
    for &fraction in &[0.0, 0.5, 1.0] {
        let outcome = run_fraction(fraction);
        let residual = outcome.report.residual_attack_bps;
        assert!(
            residual <= last + 1e-6,
            "residual rose from {last:.1} to {residual:.1} B/s at fraction {fraction}"
        );
        // Collateral stays reported at every coverage level.
        assert!(outcome.report.legit_data_sent > 0);
        assert!(outcome.report.collateral_pct.is_finite());
        last = residual;
    }
}

#[test]
fn full_participation_all_mafic_matches_the_homogeneous_path() {
    // The PR 3 homogeneous path: every domain implicitly runs the
    // spec's drop policy (full MAFIC), nothing overridden.
    let homogeneous = fig8_spec(2);
    // The same deployment, spelled out through the heterogeneous
    // surface: full participation, the transit default pinned to
    // FullMafic, and every domain explicitly assigned FullMafic.
    let total = homogeneous.total_domain_count();
    let explicit = ScenarioSpec {
        participation_fraction: 1.0,
        transit_policy: Some(DefensePolicy::FullMafic),
        policy_overrides: (0..total).map(|d| (d, DefensePolicy::FullMafic)).collect(),
        ..homogeneous.clone()
    };
    let a = run_spec(homogeneous).expect("homogeneous run");
    let b = run_spec(explicit).expect("explicit run");
    assert_eq!(a.report, b.report, "reports must be byte-identical");
    assert_eq!(a.triggered_at, b.triggered_at);
    assert_eq!(a.escalations, b.escalations);
    assert_eq!(a.max_pushback_depth, b.max_pushback_depth);
    assert_eq!(a.atr_nodes, b.atr_nodes);
    assert_eq!(a.policy_costs, b.policy_costs);
    assert_eq!(a.packets_sent, b.packets_sent);
    assert_eq!(a.packets_delivered, b.packets_delivered);
}

#[test]
fn zero_participation_is_a_real_coverage_gap() {
    let outcome = run_fraction(0.0);
    assert!(outcome.defense_engaged(), "victim still defends itself");
    assert_eq!(
        outcome.max_pushback_depth, 0,
        "no participating domain upstream: {:?}",
        outcome.escalations
    );
    assert!(outcome.escalations.iter().all(|&(_, d)| d == 0));
    // Only the victim domain's policy shows up in the cost report.
    assert_eq!(outcome.policy_costs.len(), 1);
    assert_eq!(outcome.policy_costs[0].policy, "mafic");
    assert_eq!(outcome.policy_costs[0].domains, 1);
}

#[test]
fn heterogeneous_transit_policies_engage_and_report_costs() {
    let outcome = run_spec(fig9_spec(
        1.0,
        DefensePolicy::AggregateRateLimit {
            limit_bytes_per_sec: FIG9_RATE_LIMIT_BPS,
        },
    ))
    .expect("rate-limit transit scenario runs");
    assert!(outcome.defense_engaged());
    let labels: Vec<&str> = outcome
        .policy_costs
        .iter()
        .map(|c| c.policy.as_str())
        .collect();
    assert_eq!(labels, vec!["mafic", "rate-limit"]);
    // The stateless bucket arms no timers and keeps O(1) state.
    let rl = &outcome.policy_costs[1];
    assert_eq!(rl.timer_events, 0);
    let per_bucket = mafic_suite::core::RateLimitFilter::new(1.0).approx_state_bytes() as u64;
    assert_eq!(rl.table_bytes, per_bucket * rl.filters as u64);
    // Full MAFIC pays for its tables and timers.
    let mafic = &outcome.policy_costs[0];
    assert!(mafic.table_bytes > 0);
    assert!(mafic.timer_events > 0);
}

#[test]
fn fig9_grid_is_identical_at_one_and_four_workers() {
    // A reduced grid (one policy per kind at the extreme fractions)
    // keeps the test affordable while still crossing the worker pool.
    let mut specs = Vec::new();
    for (_, transit) in transit_policy_series() {
        for &fraction in &[participation_axis()[0], participation_axis()[4]] {
            specs.push(fig9_spec(fraction, transit));
        }
    }
    let serial = run_specs(specs.clone(), 1).expect("serial grid");
    let parallel = run_specs(specs, 4).expect("parallel grid");
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.report, p.report);
        assert_eq!(s.triggered_at, p.triggered_at);
        assert_eq!(s.escalations, p.escalations);
        assert_eq!(s.max_pushback_depth, p.max_pushback_depth);
        assert_eq!(s.policy_costs, p.policy_costs);
        assert_eq!(s.packets_sent, p.packets_sent);
    }
}
