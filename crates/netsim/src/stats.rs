//! The global statistics collector.
//!
//! Records per-flow packet accounting (sent / delivered / dropped, broken
//! down by drop reason) plus optional binned time series of deliveries at
//! a watched node (the victim). The metrics crate turns these raw counts
//! into the paper's α, β, θp, θn and Lr.
//!
//! Ground-truth fields (`is_attack`) come from packet [`Provenance`] and
//! are written here and only here — the defense filters cannot see them.

use crate::flows::{FlowId, FlowInterner, FlowSlab};
use crate::ids::NodeId;
use crate::packet::{DropReason, FlowKey, Packet, Provenance};
use crate::time::{SimDuration, SimTime};
use mafic_obs::{SnapError, SnapReader, SnapWriter, SnapshotState};

/// Per-flow packet accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowRecord {
    /// Ground truth: does this flow belong to the attack?
    pub is_attack: bool,
    /// True if the flow's data packets are TCP segments.
    pub is_tcp: bool,
    /// Data packets injected by the origin agent.
    pub sent: u64,
    /// Data packets delivered to the destination agent.
    pub delivered: u64,
    /// Packets examined by an *active* defense filter (ATR arrivals).
    pub seen_at_atr: u64,
    /// Drops during the probing phase (flow in SFT).
    pub dropped_probing: u64,
    /// Drops because the flow was in the PDT.
    pub dropped_permanent: u64,
    /// Drops because the claimed source address was illegal.
    pub dropped_illegal: u64,
    /// Drops by the proportional baseline policy.
    pub dropped_proportional: u64,
    /// Drops by an aggregate rate-limit policy.
    pub dropped_rate_limited: u64,
    /// Drop-tail queue losses.
    pub dropped_queue: u64,
    /// Any other losses (no-route, hop limit, other filters).
    pub dropped_other: u64,
    /// Probe bursts sent toward this flow's claimed source.
    pub probes_sent: u64,
    /// 1 if the flow was declared nice (NFT), persisted for reporting.
    pub declared_nice: u64,
    /// 1 if the flow was declared malicious (PDT).
    pub declared_malicious: u64,
}

impl FlowRecord {
    /// Total packets dropped by defense filters (any policy).
    #[must_use]
    pub fn dropped_by_filter(&self) -> u64 {
        self.dropped_probing
            + self.dropped_permanent
            + self.dropped_illegal
            + self.dropped_proportional
            + self.dropped_rate_limited
    }

    /// Total packets lost for any reason.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped_by_filter() + self.dropped_queue + self.dropped_other
    }
}

/// One delivery time-series bin at the watched node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VictimBin {
    /// Bytes delivered by legitimate flows in this bin.
    pub legit_bytes: u64,
    /// Bytes delivered by attack flows in this bin.
    pub attack_bytes: u64,
    /// Packets delivered by legitimate flows.
    pub legit_packets: u64,
    /// Packets delivered by attack flows.
    pub attack_packets: u64,
}

impl VictimBin {
    /// Total bytes delivered in this bin.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.legit_bytes + self.attack_bytes
    }

    /// Total packets delivered in this bin.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.legit_packets + self.attack_packets
    }
}

/// Configuration of the victim watch time series.
#[derive(Debug, Clone, Copy)]
struct VictimWatch {
    node: NodeId,
    bin: SimDuration,
}

/// Configuration of the arrival (offered-load) watch.
#[derive(Debug, Clone, Copy)]
struct ArrivalWatch {
    node: NodeId,
    dst: crate::ids::Addr,
    bin: SimDuration,
}

/// Global per-run statistics.
///
/// Per-flow records live in a dense [`FlowSlab`] behind the collector's
/// own [`FlowInterner`]: the accounting calls on the packet hot path cost
/// one interner probe plus an array index, and iteration runs in id
/// (first-seen) order — deterministic, unlike the `std` hash map this
/// replaced.
#[derive(Debug)]
pub struct StatsCollector {
    interner: FlowInterner,
    records: FlowSlab<FlowRecord>,
    watch: Option<VictimWatch>,
    bins: Vec<VictimBin>,
    arrival_watch: Option<ArrivalWatch>,
    arrival_bins: Vec<VictimBin>,
    /// Probe packets emitted by filters, domain-wide.
    pub probes_emitted: u64,
    /// Total packets injected by agents.
    pub total_sent: u64,
    /// Total packets delivered to agents.
    pub total_delivered: u64,
}

impl Default for StatsCollector {
    fn default() -> Self {
        StatsCollector::new()
    }
}

impl StatsCollector {
    /// Creates an empty collector with no victim watch.
    #[must_use]
    pub fn new() -> Self {
        StatsCollector {
            interner: FlowInterner::new(),
            records: FlowSlab::new(),
            watch: None,
            bins: Vec::new(),
            arrival_watch: None,
            arrival_bins: Vec::new(),
            probes_emitted: 0,
            total_sent: 0,
            total_delivered: 0,
        }
    }

    /// Starts recording the *offered load*: every packet arriving at
    /// `node` destined to `dst`, binned by `bin`, counted *before* any
    /// filter or queue can drop it. This is the paper's "arrival rate at
    /// the victim" (its Fig. 4 measurements are taken at the last-hop
    /// router, upstream of the bottleneck link).
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn watch_arrivals(&mut self, node: NodeId, dst: crate::ids::Addr, bin: SimDuration) {
        assert!(!bin.is_zero(), "bin width must be positive");
        self.arrival_watch = Some(ArrivalWatch { node, dst, bin });
    }

    /// Starts recording a delivery time series at `node` with bins of
    /// width `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn watch_victim(&mut self, node: NodeId, bin: SimDuration) {
        assert!(!bin.is_zero(), "bin width must be positive");
        self.watch = Some(VictimWatch { node, bin });
    }

    /// The record slot for `key`, created on first touch.
    fn entry(&mut self, key: FlowKey) -> &mut FlowRecord {
        let id = self.flow_id(key);
        self.records.get_mut(id).expect("just ensured")
    }

    /// Interns `key` into the collector's id space, creating the record
    /// slot on first touch. The id lets hot-path callers skip re-hashing
    /// the 4-tuple on every subsequent accounting call (the simulator
    /// caches it alongside the in-flight packet).
    pub fn flow_id(&mut self, key: FlowKey) -> FlowId {
        let id = self.interner.intern(key);
        if !self.records.contains(id) {
            self.records.insert(id, FlowRecord::default());
        }
        id
    }

    /// The record slot for an id minted by [`StatsCollector::flow_id`].
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this collector.
    fn entry_id(&mut self, id: FlowId) -> &mut FlowRecord {
        self.records
            .get_mut(id)
            .expect("id minted by this collector")
    }

    fn record_id(&mut self, id: FlowId, provenance: Provenance) -> &mut FlowRecord {
        let rec = self.entry_id(id);
        rec.is_attack |= provenance.is_attack;
        rec
    }

    /// Declares a flow's ground truth. Called by the workload layer when
    /// the flow's agent is created so records exist even for flows whose
    /// every packet is dropped.
    pub fn declare_flow(&mut self, key: FlowKey, is_attack: bool, is_tcp: bool) {
        let rec = self.entry(key);
        rec.is_attack = is_attack;
        rec.is_tcp = is_tcp;
    }

    /// Records a packet injection (called by the simulator; public for
    /// metric-layer tests that synthesize collectors).
    pub fn on_sent(&mut self, packet: &Packet) {
        let id = self.flow_id(packet.key);
        self.on_sent_id(id, packet);
    }

    /// Id-keyed variant of [`StatsCollector::on_sent`].
    pub fn on_sent_id(&mut self, id: FlowId, packet: &Packet) {
        self.total_sent += 1;
        self.record_id(id, packet.provenance).sent += 1;
    }

    /// Records a packet arriving at `node` (pre-filter, pre-queue).
    pub fn on_node_arrival(&mut self, packet: &Packet, node: NodeId, now: SimTime) {
        let Some(watch) = self.arrival_watch else {
            return;
        };
        if watch.node != node || packet.key.dst != watch.dst {
            return;
        }
        let idx = (now.as_nanos() / watch.bin.as_nanos()) as usize;
        if idx >= self.arrival_bins.len() {
            self.arrival_bins.resize(idx + 1, VictimBin::default());
        }
        let bin = &mut self.arrival_bins[idx];
        if packet.provenance.is_attack {
            bin.attack_bytes += u64::from(packet.size_bytes);
            bin.attack_packets += 1;
        } else {
            bin.legit_bytes += u64::from(packet.size_bytes);
            bin.legit_packets += 1;
        }
    }

    /// Records a delivery to an agent on `node`.
    pub fn on_delivered(&mut self, packet: &Packet, node: NodeId, now: SimTime) {
        let id = self.flow_id(packet.key);
        self.on_delivered_id(id, packet, node, now);
    }

    /// Id-keyed variant of [`StatsCollector::on_delivered`].
    pub fn on_delivered_id(&mut self, id: FlowId, packet: &Packet, node: NodeId, now: SimTime) {
        self.total_delivered += 1;
        self.record_id(id, packet.provenance).delivered += 1;
        if let Some(watch) = self.watch {
            if watch.node == node {
                let idx = (now.as_nanos() / watch.bin.as_nanos()) as usize;
                if idx >= self.bins.len() {
                    self.bins.resize(idx + 1, VictimBin::default());
                }
                let bin = &mut self.bins[idx];
                if packet.provenance.is_attack {
                    bin.attack_bytes += u64::from(packet.size_bytes);
                    bin.attack_packets += 1;
                } else {
                    bin.legit_bytes += u64::from(packet.size_bytes);
                    bin.legit_packets += 1;
                }
            }
        }
    }

    /// Records a drop with its reason.
    pub fn on_dropped(&mut self, packet: &Packet, reason: DropReason) {
        let id = self.flow_id(packet.key);
        self.on_dropped_id(id, packet, reason);
    }

    /// Id-keyed variant of [`StatsCollector::on_dropped`].
    pub fn on_dropped_id(&mut self, id: FlowId, packet: &Packet, reason: DropReason) {
        let rec = self.record_id(id, packet.provenance);
        match reason {
            DropReason::FilterProbing => rec.dropped_probing += 1,
            DropReason::FilterPermanent => rec.dropped_permanent += 1,
            DropReason::FilterIllegalSource => rec.dropped_illegal += 1,
            DropReason::FilterProportional => rec.dropped_proportional += 1,
            DropReason::FilterRateLimit => rec.dropped_rate_limited += 1,
            DropReason::QueueFull => rec.dropped_queue += 1,
            DropReason::NoRoute | DropReason::HopLimit | DropReason::FilterOther => {
                rec.dropped_other += 1;
            }
        }
    }

    /// Records that an active defense filter examined a packet of `key`.
    pub fn on_atr_seen(&mut self, key: FlowKey) {
        self.entry(key).seen_at_atr += 1;
    }

    /// Records a probe burst toward `key`'s claimed source.
    pub fn on_probe_sent(&mut self, key: FlowKey) {
        self.probes_emitted += 1;
        self.entry(key).probes_sent += 1;
    }

    /// Records a classification decision for `key`.
    pub fn on_flow_declared(&mut self, key: FlowKey, nice: bool) {
        let rec = self.entry(key);
        if nice {
            rec.declared_nice = 1;
        } else {
            rec.declared_malicious = 1;
        }
    }

    /// The record for `key`, if any packet or declaration touched it.
    #[must_use]
    pub fn flow(&self, key: &FlowKey) -> Option<&FlowRecord> {
        self.interner
            .lookup(*key)
            .and_then(|id| self.records.get(id))
    }

    /// Iterates over all flow records in id (first-seen) order.
    pub fn flows(&self) -> impl Iterator<Item = (FlowKey, &FlowRecord)> {
        self.records
            .iter()
            .map(|(id, rec)| (self.interner.resolve(id), rec))
    }

    /// Number of distinct flows observed.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.records.len()
    }

    /// The victim delivery time series (empty unless a watch was set).
    #[must_use]
    pub fn victim_bins(&self) -> &[VictimBin] {
        &self.bins
    }

    /// Width of the victim series bins, if a watch was configured.
    #[must_use]
    pub fn victim_bin_width(&self) -> Option<SimDuration> {
        self.watch.map(|w| w.bin)
    }

    /// The offered-load time series (empty unless an arrival watch was
    /// set).
    #[must_use]
    pub fn arrival_bins(&self) -> &[VictimBin] {
        &self.arrival_bins
    }

    /// Width of the arrival series bins, if an arrival watch was
    /// configured.
    #[must_use]
    pub fn arrival_bin_width(&self) -> Option<SimDuration> {
        self.arrival_watch.map(|w| w.bin)
    }

    /// Cumulative drop counts by reason group, summed over every flow:
    /// `(probing, permanent, illegal, proportional, rate-limited, queue,
    /// other)` — the ledger's drop-counter snapshot.
    #[must_use]
    pub fn drop_totals(&self) -> [u64; 7] {
        let mut totals = [0u64; 7];
        for (_, rec) in self.records.iter() {
            totals[0] += rec.dropped_probing;
            totals[1] += rec.dropped_permanent;
            totals[2] += rec.dropped_illegal;
            totals[3] += rec.dropped_proportional;
            totals[4] += rec.dropped_rate_limited;
            totals[5] += rec.dropped_queue;
            totals[6] += rec.dropped_other;
        }
        totals
    }
}

impl mafic_obs::StateHash for FlowRecord {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_bool(self.is_attack);
        h.write_bool(self.is_tcp);
        h.write_u64(self.sent);
        h.write_u64(self.delivered);
        h.write_u64(self.seen_at_atr);
        h.write_u64(self.dropped_probing);
        h.write_u64(self.dropped_permanent);
        h.write_u64(self.dropped_illegal);
        h.write_u64(self.dropped_proportional);
        h.write_u64(self.dropped_rate_limited);
        h.write_u64(self.dropped_queue);
        h.write_u64(self.dropped_other);
        h.write_u64(self.probes_sent);
        h.write_u64(self.declared_nice);
        h.write_u64(self.declared_malicious);
    }
}

impl mafic_obs::StateHash for VictimBin {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u64(self.legit_bytes);
        h.write_u64(self.attack_bytes);
        h.write_u64(self.legit_packets);
        h.write_u64(self.attack_packets);
    }
}

fn snap_flow_record(rec: &FlowRecord, w: &mut SnapWriter) {
    w.write_bool(rec.is_attack);
    w.write_bool(rec.is_tcp);
    w.write_u64(rec.sent);
    w.write_u64(rec.delivered);
    w.write_u64(rec.seen_at_atr);
    w.write_u64(rec.dropped_probing);
    w.write_u64(rec.dropped_permanent);
    w.write_u64(rec.dropped_illegal);
    w.write_u64(rec.dropped_proportional);
    w.write_u64(rec.dropped_rate_limited);
    w.write_u64(rec.dropped_queue);
    w.write_u64(rec.dropped_other);
    w.write_u64(rec.probes_sent);
    w.write_u64(rec.declared_nice);
    w.write_u64(rec.declared_malicious);
}

fn read_flow_record(r: &mut SnapReader<'_>) -> Result<FlowRecord, SnapError> {
    Ok(FlowRecord {
        is_attack: r.read_bool()?,
        is_tcp: r.read_bool()?,
        sent: r.read_u64()?,
        delivered: r.read_u64()?,
        seen_at_atr: r.read_u64()?,
        dropped_probing: r.read_u64()?,
        dropped_permanent: r.read_u64()?,
        dropped_illegal: r.read_u64()?,
        dropped_proportional: r.read_u64()?,
        dropped_rate_limited: r.read_u64()?,
        dropped_queue: r.read_u64()?,
        dropped_other: r.read_u64()?,
        probes_sent: r.read_u64()?,
        declared_nice: r.read_u64()?,
        declared_malicious: r.read_u64()?,
    })
}

fn snap_bin(bin: &VictimBin, w: &mut SnapWriter) {
    w.write_u64(bin.legit_bytes);
    w.write_u64(bin.attack_bytes);
    w.write_u64(bin.legit_packets);
    w.write_u64(bin.attack_packets);
}

fn read_bin(r: &mut SnapReader<'_>) -> Result<VictimBin, SnapError> {
    Ok(VictimBin {
        legit_bytes: r.read_u64()?,
        attack_bytes: r.read_u64()?,
        legit_packets: r.read_u64()?,
        attack_packets: r.read_u64()?,
    })
}

impl SnapshotState for StatsCollector {
    /// Saves counters, the interner's key slab, every flow record in id
    /// order, and both time series. The watch configurations are
    /// build-time settings (recreated by the scenario builder) and are
    /// not saved.
    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_u64(self.probes_emitted);
        w.write_u64(self.total_sent);
        w.write_u64(self.total_delivered);
        self.interner.snap_save(w);
        w.write_usize(self.records.len());
        for (id, rec) in self.records.iter() {
            w.write_usize(id.index());
            snap_flow_record(rec, w);
        }
        w.write_usize(self.bins.len());
        for bin in &self.bins {
            snap_bin(bin, w);
        }
        w.write_usize(self.arrival_bins.len());
        for bin in &self.arrival_bins {
            snap_bin(bin, w);
        }
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.probes_emitted = r.read_u64()?;
        self.total_sent = r.read_u64()?;
        self.total_delivered = r.read_u64()?;
        self.interner.snap_restore(r)?;
        let n_records = r.read_usize()?;
        self.records = FlowSlab::new();
        for _ in 0..n_records {
            let id = FlowId::from_index(r.read_usize()?);
            self.records.insert(id, read_flow_record(r)?);
        }
        let n_bins = r.read_usize()?;
        self.bins.clear();
        for _ in 0..n_bins {
            self.bins.push(read_bin(r)?);
        }
        let n_arrival = r.read_usize()?;
        self.arrival_bins.clear();
        for _ in 0..n_arrival {
            self.arrival_bins.push(read_bin(r)?);
        }
        Ok(())
    }
}

impl mafic_obs::StateHash for StatsCollector {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u64(self.probes_emitted);
        h.write_u64(self.total_sent);
        h.write_u64(self.total_delivered);
        h.write_usize(self.interner.len());
        h.write_usize(self.records.len());
        for (id, rec) in self.records.iter() {
            h.write_usize(id.index());
            rec.hash_state(h);
        }
        h.write_usize(self.bins.len());
        for bin in &self.bins {
            bin.hash_state(h);
        }
        h.write_usize(self.arrival_bins.len());
        for bin in &self.arrival_bins {
            bin.hash_state(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, AgentId};
    use crate::packet::PacketKind;

    fn pkt(attack: bool) -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            kind: PacketKind::Udp,
            size_bytes: 500,
            created_at: SimTime::ZERO,
            provenance: Provenance {
                origin: AgentId(0),
                is_attack: attack,
            },
            hops: 0,
        }
    }

    #[test]
    fn accounting_by_reason() {
        let mut s = StatsCollector::new();
        let p = pkt(true);
        s.on_sent(&p);
        s.on_dropped(&p, DropReason::FilterProbing);
        s.on_dropped(&p, DropReason::FilterPermanent);
        s.on_dropped(&p, DropReason::QueueFull);
        s.on_dropped(&p, DropReason::NoRoute);
        let rec = s.flow(&p.key).unwrap();
        assert!(rec.is_attack);
        assert_eq!(rec.sent, 1);
        assert_eq!(rec.dropped_probing, 1);
        assert_eq!(rec.dropped_permanent, 1);
        assert_eq!(rec.dropped_queue, 1);
        assert_eq!(rec.dropped_other, 1);
        assert_eq!(rec.dropped_by_filter(), 2);
        assert_eq!(rec.dropped_total(), 4);
    }

    #[test]
    fn victim_series_bins_by_time_and_class() {
        let mut s = StatsCollector::new();
        s.watch_victim(NodeId(3), SimDuration::from_millis(100));
        let legit = pkt(false);
        let attack = pkt(true);
        s.on_delivered(&legit, NodeId(3), SimTime::from_secs_f64(0.05));
        s.on_delivered(&attack, NodeId(3), SimTime::from_secs_f64(0.25));
        // Delivery at a different node is not binned.
        s.on_delivered(&legit, NodeId(9), SimTime::from_secs_f64(0.05));
        let bins = s.victim_bins();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].legit_bytes, 500);
        assert_eq!(bins[0].attack_bytes, 0);
        assert_eq!(bins[2].attack_packets, 1);
        assert_eq!(bins[2].total_bytes(), 500);
        assert_eq!(s.victim_bin_width(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn declare_flow_creates_record_with_truth() {
        let mut s = StatsCollector::new();
        let key = FlowKey::new(Addr::new(9), Addr::new(8), 7, 6);
        s.declare_flow(key, true, false);
        let rec = s.flow(&key).unwrap();
        assert!(rec.is_attack);
        assert!(!rec.is_tcp);
        assert_eq!(rec.sent, 0);
    }

    #[test]
    fn notes_accumulate() {
        let mut s = StatsCollector::new();
        let key = pkt(false).key;
        s.on_atr_seen(key);
        s.on_atr_seen(key);
        s.on_probe_sent(key);
        s.on_flow_declared(key, true);
        let rec = s.flow(&key).unwrap();
        assert_eq!(rec.seen_at_atr, 2);
        assert_eq!(rec.probes_sent, 1);
        assert_eq!(rec.declared_nice, 1);
        assert_eq!(s.probes_emitted, 1);
    }

    #[test]
    fn snapshot_round_trips_records_and_series() {
        let mut s = StatsCollector::new();
        s.watch_victim(NodeId(3), SimDuration::from_millis(100));
        let legit = pkt(false);
        let attack = pkt(true);
        s.on_sent(&legit);
        s.on_sent(&attack);
        s.on_delivered(&legit, NodeId(3), SimTime::from_secs_f64(0.05));
        s.on_dropped(&attack, DropReason::FilterProbing);
        s.on_probe_sent(legit.key);
        let mut w = SnapWriter::new();
        s.snap_save(&mut w);
        let bytes = w.into_bytes();
        // Restore onto a fresh collector carrying the same build-time
        // watch configuration.
        let mut restored = StatsCollector::new();
        restored.watch_victim(NodeId(3), SimDuration::from_millis(100));
        let mut r = SnapReader::new(&bytes);
        restored.snap_restore(&mut r).unwrap();
        assert!(r.is_empty());
        let mut ha = mafic_obs::Fnv64::new();
        let mut hb = mafic_obs::Fnv64::new();
        use mafic_obs::StateHash as _;
        s.hash_state(&mut ha);
        restored.hash_state(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        assert_eq!(restored.flow(&legit.key).unwrap().delivered, 1);
        assert_eq!(restored.drop_totals(), s.drop_totals());
        // The restored interner mints the next id exactly where the
        // original would.
        let new_key = FlowKey::new(Addr::new(70), Addr::new(71), 1, 2);
        assert_eq!(restored.flow_id(new_key), s.flow_id(new_key));
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_rejected() {
        let mut s = StatsCollector::new();
        s.watch_victim(NodeId(0), SimDuration::ZERO);
    }
}
