//! Microbenchmarks of the per-packet hot paths: the MAFIC filter
//! decision, LogLog insertion, flow-label hashing, and — the headline of
//! the interning refactor — hashed-map vs interned-slab flow lookup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mafic::{AddressValidator, FlowLabel, LabelMode, MaficConfig, MaficFilter};
use mafic_loglog::{LogLog, Precision};
use mafic_netsim::testkit::FilterHarness;
use mafic_netsim::{
    Addr, FlowInterner, FlowKey, FlowSlab, Packet, PacketKind, Provenance, SimTime,
};

/// Number of resident flows for the lookup comparison (a mid-size router
/// table; well past any cache-friendly toy size).
const TABLE_FLOWS: u32 = 10_000;

fn flow_key(n: u32) -> FlowKey {
    FlowKey::new(
        Addr::new(0x0A01_0000 | (n & 0xFFFF)),
        Addr::from_octets(10, 200, 0, 1),
        (1024 + (n % 50_000)) as u16,
        80,
    )
}

fn packet(port: u16) -> Packet {
    Packet {
        id: u64::from(port),
        key: FlowKey::new(
            Addr::from_octets(10, 1, 0, 1),
            Addr::from_octets(10, 200, 0, 1),
            port,
            80,
        ),
        kind: PacketKind::Udp,
        size_bytes: 500,
        created_at: SimTime::ZERO,
        provenance: Provenance::infrastructure(),
        hops: 0,
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("mafic_filter_decision", |b| {
        let mut filter = MaficFilter::new(MaficConfig::default(), AddressValidator::AllowAll);
        filter.activate(Addr::from_octets(10, 200, 0, 1));
        let mut h = FilterHarness::new();
        let mut port = 0u16;
        b.iter(|| {
            port = port.wrapping_add(1);
            h.offer_transit(&mut filter, &packet(port))
        });
    });

    c.bench_function("loglog_insert", |b| {
        let mut sketch = LogLog::new(Precision::P10);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            sketch.insert_u64(i);
        });
    });

    c.bench_function("flow_label_hash", |b| {
        let key = packet(1).key;
        b.iter(|| FlowLabel::from_key(key, LabelMode::Hashed).token());
    });

    // The refactor's before/after: per-packet table access keyed by a
    // hashed FlowLabel in a std HashMap (the seed's data path) vs one
    // interner probe plus a dense slab index (the current data path).
    // Each iteration simulates one packet touching per-flow state:
    // derive the table key from the 4-tuple, look the record up, bump it.
    let mut group = c.benchmark_group("flow_lookup");
    group.sample_size(20);

    group.bench_function("hashed_hashmap", |b| {
        // The baseline under comparison — exempt from the workspace-wide
        // HashMap ban, which exists precisely because of this cost (and
        // the iteration-order hazard).
        #[allow(clippy::disallowed_types)]
        let mut table: std::collections::HashMap<FlowLabel, u64> = std::collections::HashMap::new();
        for n in 0..TABLE_FLOWS {
            table.insert(FlowLabel::from_key(flow_key(n), LabelMode::Hashed), 0);
        }
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 1) % TABLE_FLOWS;
            let label = FlowLabel::from_key(black_box(flow_key(n)), LabelMode::Hashed);
            if let Some(count) = table.get_mut(&label) {
                *count += 1;
            }
        });
    });

    group.bench_function("interned_slab", |b| {
        let mut interner = FlowInterner::new();
        let mut table: FlowSlab<u64> = FlowSlab::new();
        for n in 0..TABLE_FLOWS {
            let id = interner.intern(flow_key(n));
            table.insert(id, 0);
        }
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 1) % TABLE_FLOWS;
            let id = interner.intern(black_box(flow_key(n)));
            if let Some(count) = table.get_mut(id) {
                *count += 1;
            }
        });
    });

    // The steady-state case: the id was already minted at node arrival
    // (it rides in PacketEnv), so the filter pays only the slab index.
    group.bench_function("preinterned_slab", |b| {
        let mut interner = FlowInterner::new();
        let mut table: FlowSlab<u64> = FlowSlab::new();
        let ids: Vec<_> = (0..TABLE_FLOWS)
            .map(|n| {
                let id = interner.intern(flow_key(n));
                table.insert(id, 0);
                id
            })
            .collect();
        let mut n = 0usize;
        b.iter(|| {
            n = (n + 1) % ids.len();
            if let Some(count) = table.get_mut(black_box(ids[n])) {
                *count += 1;
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
