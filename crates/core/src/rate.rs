//! Per-flow arrival-rate tracking.
//!
//! MAFIC's classification hinges on one question: did a flow's arrival
//! rate at the router *decrease* after the probe? The tracker keeps a
//! short sliding window of arrival timestamps per flow ("Update arriving
//! Packet Counting" in the paper's Figure 2) and answers rate queries
//! over arbitrary sub-windows — the rate just before the probe
//! (baseline) and the rate just before the 2×RTT deadline.
//!
//! Storage is a dense vector indexed by the interned [`FlowId`]: the
//! per-packet `record` is an array index plus a ring-buffer push, no
//! hashing.

use mafic_netsim::{FlowId, SimDuration, SimTime};
use std::collections::VecDeque;

/// Sliding-window arrival recorder for all victim-bound flows at one
/// router.
#[derive(Debug)]
pub struct ArrivalTracker {
    horizon: SimDuration,
    max_flows: usize,
    /// Arrival windows, indexed densely by flow id. An empty deque means
    /// the flow is untracked (never seen, or evicted).
    flows: Vec<VecDeque<SimTime>>,
    /// Indices of the non-empty windows, in first-tracked order. Bounds
    /// the eviction scan to the tracked population (≤ `max_flows`)
    /// instead of every flow id the domain ever minted.
    active_ids: Vec<u32>,
    /// Clock hand for sampled eviction.
    evict_cursor: usize,
}

impl ArrivalTracker {
    /// Creates a tracker that retains arrivals for `horizon` and at most
    /// `max_flows` flows (the stalest-touched flow is evicted beyond
    /// that).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or `max_flows` is zero.
    #[must_use]
    pub fn new(horizon: SimDuration, max_flows: usize) -> Self {
        assert!(!horizon.is_zero(), "horizon must be positive");
        assert!(max_flows > 0, "max_flows must be positive");
        ArrivalTracker {
            horizon,
            max_flows,
            flows: Vec::new(),
            active_ids: Vec::new(),
            evict_cursor: 0,
        }
    }

    /// Records one arrival of `flow` at `now`.
    pub fn record(&mut self, flow: FlowId, now: SimTime) {
        let idx = flow.index();
        if idx >= self.flows.len() {
            self.flows.resize_with(idx + 1, VecDeque::new);
        }
        if self.flows[idx].is_empty() {
            if self.active_ids.len() >= self.max_flows {
                self.evict_stalest();
            }
            self.active_ids.push(idx as u32);
        }
        let q = &mut self.flows[idx];
        q.push_back(now);
        // Prune beyond the horizon.
        let cutoff = now.saturating_since(SimTime::ZERO);
        let keep_from = if cutoff > self.horizon {
            now.saturating_since(SimTime::ZERO) - self.horizon
        } else {
            SimDuration::ZERO
        };
        let keep_from = SimTime::ZERO + keep_from;
        while let Some(&front) = q.front() {
            if front < keep_from {
                q.pop_front();
            } else {
                break;
            }
        }
    }

    /// Candidates examined per eviction (clock-hand sampling).
    const EVICTION_SAMPLE: usize = 8;

    fn evict_stalest(&mut self) {
        // Approximate stalest-first eviction: sample a bounded window of
        // candidates from a rotating cursor and evict the one with the
        // oldest most-recent arrival (ties to the lowest flow id). A full
        // min-scan would run once per packet of every unseen flow when a
        // spoofed flood pins the tracker at capacity — O(max_flows) on
        // the per-packet path. The sample keeps eviction O(1) and stays
        // deterministic: cursor movement depends only on the event
        // sequence.
        let len = self.active_ids.len();
        if len == 0 {
            return;
        }
        let sample = Self::EVICTION_SAMPLE.min(len);
        let mut best: Option<(SimTime, u32, usize)> = None;
        for i in 0..sample {
            let pos = (self.evict_cursor + i) % len;
            let idx = self.active_ids[pos];
            let last = self.flows[idx as usize]
                .back()
                .copied()
                .unwrap_or(SimTime::ZERO);
            match best {
                Some((b_last, b_idx, _)) if (b_last, b_idx) <= (last, idx) => {}
                _ => best = Some((last, idx, pos)),
            }
        }
        if let Some((_, idx, pos)) = best {
            // Replace rather than clear: an evicted flood flow can hold a
            // full horizon of timestamps, and under sustained eviction
            // pressure retained capacities would grow with every distinct
            // flow ever tracked. The dense index keeps only the empty
            // deque header (a few words) per id.
            self.flows[idx as usize] = VecDeque::new();
            self.active_ids.swap_remove(pos);
            self.evict_cursor = if len > 1 { (pos + 1) % (len - 1) } else { 0 };
        }
    }

    /// Number of arrivals of `flow` within `(end - window, end]`.
    #[must_use]
    pub fn count_in(&self, flow: FlowId, end: SimTime, window: SimDuration) -> usize {
        let Some(q) = self.flows.get(flow.index()) else {
            return 0;
        };
        let since_zero = end.saturating_since(SimTime::ZERO);
        let lo = SimTime::ZERO + (since_zero - since_zero.min(window));
        q.iter().filter(|&&t| t > lo && t <= end).count()
    }

    /// Arrival rate (packets/s) of `flow` over `[end - window, end]`.
    ///
    /// Returns 0 when the window is zero-length.
    #[must_use]
    pub fn rate_in(&self, flow: FlowId, end: SimTime, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.count_in(flow, end, window) as f64 / window.as_secs_f64()
    }

    /// Number of flows currently tracked.
    #[must_use]
    pub fn tracked_flows(&self) -> usize {
        self.active_ids.len()
    }

    /// Drops all state (table flush at pushback end), keeping the dense
    /// allocation for the next activation.
    pub fn clear(&mut self) {
        for q in &mut self.flows {
            q.clear();
        }
        self.active_ids.clear();
        self.evict_cursor = 0;
    }
}

impl mafic_obs::SnapshotState for ArrivalTracker {
    /// Saves the eviction clock and the active windows (in clock order);
    /// `horizon` and `max_flows` are build-time configuration. The dense
    /// `flows` vector is rebuilt sized to the largest saved id — empty
    /// trailing headers are capacity, not state.
    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        w.write_usize(self.evict_cursor);
        w.write_usize(self.active_ids.len());
        for &idx in &self.active_ids {
            w.write_u32(idx);
            let q = &self.flows[idx as usize];
            w.write_usize(q.len());
            for t in q {
                w.write_u64(t.as_nanos());
            }
        }
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        self.evict_cursor = r.read_usize()?;
        let n = r.read_usize()?;
        self.flows.clear();
        self.active_ids.clear();
        for _ in 0..n {
            let idx = r.read_u32()?;
            self.active_ids.push(idx);
            if idx as usize >= self.flows.len() {
                self.flows.resize_with(idx as usize + 1, VecDeque::new);
            }
            let arrivals = r.read_usize()?;
            let q = &mut self.flows[idx as usize];
            for _ in 0..arrivals {
                q.push_back(SimTime::from_nanos(r.read_u64()?));
            }
        }
        Ok(())
    }
}

impl mafic_obs::StateHash for ArrivalTracker {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u64(self.horizon.as_nanos());
        h.write_usize(self.max_flows);
        h.write_usize(self.evict_cursor);
        // `active_ids` order is part of the eviction clock, so hash it
        // positionally; the per-flow windows follow in that same order.
        h.write_usize(self.active_ids.len());
        for &idx in &self.active_ids {
            h.write_u32(idx);
            let q = &self.flows[idx as usize];
            h.write_usize(q.len());
            for t in q {
                h.write_u64(t.as_nanos());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(n: usize) -> FlowId {
        FlowId::from_index(n)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn counts_within_window_only() {
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(10), 64);
        for ms in [100u64, 200, 300, 400, 500] {
            tr.record(flow(1), t(ms));
        }
        // Window (300, 500]: arrivals at 400 and 500.
        assert_eq!(
            tr.count_in(flow(1), t(500), SimDuration::from_millis(200)),
            2
        );
        // Window (0, 500]: all five.
        assert_eq!(
            tr.count_in(flow(1), t(500), SimDuration::from_millis(500)),
            5
        );
        // Other flows are independent.
        assert_eq!(
            tr.count_in(flow(2), t(500), SimDuration::from_millis(500)),
            0
        );
    }

    #[test]
    fn rate_is_count_over_window() {
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(10), 64);
        for ms in (0..10).map(|i| 100 + i * 10) {
            tr.record(flow(1), t(ms));
        }
        // 10 packets in (90, 190] ... window 100ms => 100 pps.
        let rate = tr.rate_in(flow(1), t(190), SimDuration::from_millis(100));
        assert!((rate - 100.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn zero_window_rate_is_zero() {
        let tr = ArrivalTracker::new(SimDuration::from_secs(1), 4);
        assert_eq!(tr.rate_in(flow(1), t(100), SimDuration::ZERO), 0.0);
    }

    #[test]
    fn horizon_prunes_old_arrivals() {
        let mut tr = ArrivalTracker::new(SimDuration::from_millis(100), 4);
        tr.record(flow(1), t(0));
        tr.record(flow(1), t(50));
        tr.record(flow(1), t(500));
        // The t(0) and t(50) arrivals are beyond the 100ms horizon.
        assert_eq!(
            tr.count_in(flow(1), t(500), SimDuration::from_millis(500)),
            1
        );
    }

    #[test]
    fn capacity_evicts_stalest_flow() {
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(10), 2);
        tr.record(flow(1), t(10));
        tr.record(flow(2), t(20));
        tr.record(flow(3), t(30)); // evicts flow 1
        assert_eq!(tr.tracked_flows(), 2);
        assert_eq!(
            tr.count_in(flow(1), t(100), SimDuration::from_millis(100)),
            0
        );
        assert_eq!(
            tr.count_in(flow(2), t(100), SimDuration::from_millis(100)),
            1
        );
    }

    #[test]
    fn clear_resets() {
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(1), 4);
        tr.record(flow(1), t(10));
        tr.clear();
        assert_eq!(tr.tracked_flows(), 0);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let _ = ArrivalTracker::new(SimDuration::ZERO, 4);
    }

    #[test]
    fn snapshot_round_trips_windows_and_eviction_clock() {
        use mafic_obs::{SnapshotState as _, StateHash as _};
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(10), 2);
        tr.record(flow(1), t(10));
        tr.record(flow(2), t(20));
        tr.record(flow(3), t(30)); // forces an eviction, moves the clock
        let mut w = mafic_obs::SnapWriter::new();
        tr.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut back = ArrivalTracker::new(SimDuration::from_secs(10), 2);
        let mut r = mafic_obs::SnapReader::new(&bytes);
        back.snap_restore(&mut r).expect("restore");
        assert!(r.is_empty());

        let digest = |tr: &ArrivalTracker| {
            let mut d = mafic_obs::Fnv64::new();
            tr.hash_state(&mut d);
            d.finish()
        };
        assert_eq!(digest(&tr), digest(&back));
        assert_eq!(back.tracked_flows(), 2);
        assert_eq!(
            back.count_in(flow(3), t(100), SimDuration::from_millis(100)),
            1
        );
    }
}
