//! Extension study: pulsing (shrew-style) zombies vs the 2×RTT probe.
//!
//! A zombie that falls silent during MAFIC's probation window looks
//! responsive and is declared nice — the structural evasion the paper
//! leaves to future work. This test builds the scenario by hand (the
//! standard workload generator only provisions constant-rate zombies)
//! and demonstrates both sides: a constant zombie is condemned, while a
//! pulsed zombie with an idle phase longer than the probation window can
//! survive probing.

use mafic_suite::netsim::{FilterControl, FlowKey, SimDuration, SimTime};
use mafic_suite::transport::{PulseConfig, PulsedSender};
use mafic_suite::workload::{Scenario, ScenarioSpec};

/// Builds the default small scenario and replaces its zombies' agents
/// with pulsed senders of the given configuration.
fn pulsed_scenario(pulse: PulseConfig) -> (Scenario, Vec<FlowKey>) {
    pulsed_scenario_with(pulse, None)
}

/// Like [`pulsed_scenario`], optionally enabling NFT re-validation.
fn pulsed_scenario_with(
    pulse: PulseConfig,
    revalidate: Option<SimDuration>,
) -> (Scenario, Vec<FlowKey>) {
    let spec = ScenarioSpec {
        total_flows: 12,
        n_routers: 6,
        tcp_share: 0.75, // 3 zombies
        spoof_illegal: 0.0,
        spoof_legal: 0.0,
        end: SimTime::from_secs_f64(6.0),
        detection: mafic_suite::workload::DetectionMode::Off,
        detection_fallback: None,
        nft_revalidate_after: revalidate,
        ..ScenarioSpec::default()
    };
    let mut scenario = Scenario::build(spec).expect("build");
    // Swap every attack agent for a pulser on the same flow key.
    let mut attack_keys = Vec::new();
    for (i, flow) in scenario.flows.clone().into_iter().enumerate() {
        if !flow.is_attack {
            continue;
        }
        attack_keys.push(flow.key);
        let node = scenario.sim.agent_node(flow.agent);
        let mut pulser = PulsedSender::new(flow.key, pulse, 100 + i as u64);
        pulser.set_stop_after(SimTime::from_secs_f64(6.0));
        let agent = scenario
            .sim
            .add_agent(node, Box::new(pulser), SimTime::from_secs_f64(1.0));
        let _ = agent;
        // Both the original zombie and the pulser share the flow key; the
        // original must stay silent, so stop it before it ever starts.
        if let Some(old) = scenario
            .sim
            .agent_mut::<mafic_suite::transport::UnresponsiveSender>(flow.agent)
        {
            old.set_stop_after(SimTime::ZERO);
        }
    }
    // Activate MAFIC everywhere at a fixed time (detection disabled above
    // so the swap cannot confuse the monitor).
    let victim = scenario.domain.victim_addr;
    for &(node, _) in &scenario.droppers.clone() {
        scenario.sim.send_control(
            node,
            FilterControl::PushbackStart { victim },
            SimTime::from_secs_f64(1.3),
        );
    }
    (scenario, attack_keys)
}

fn condemned_count(scenario: &Scenario, keys: &[FlowKey]) -> usize {
    keys.iter()
        .filter(|k| {
            scenario
                .sim
                .stats()
                .flow(k)
                .is_some_and(|r| r.declared_malicious > 0)
        })
        .count()
}

fn cleared_count(scenario: &Scenario, keys: &[FlowKey]) -> usize {
    keys.iter()
        .filter(|k| {
            scenario
                .sim
                .stats()
                .flow(k)
                .is_some_and(|r| r.declared_nice > 0)
        })
        .count()
}

#[test]
fn constant_pulse_equivalent_is_condemned() {
    // Degenerate pulser: always bursting (idle = 0) — behaves like a CBR
    // zombie and must be condemned.
    let (mut scenario, keys) = pulsed_scenario(PulseConfig {
        burst_rate_pps: 800.0,
        burst_len: SimDuration::from_millis(400),
        idle_len: SimDuration::from_nanos(1),
        randomize_phase: false,
        ..PulseConfig::default()
    });
    scenario.sim.run_until(SimTime::from_secs_f64(6.0));
    assert_eq!(
        condemned_count(&scenario, &keys),
        keys.len(),
        "always-on pulsers must land in the PDT"
    );
}

#[test]
fn long_idle_pulser_can_evade_the_probe() {
    // Burst 80 ms, silent 600 ms: the silent phase dwarfs the ~2×RTT
    // probation window, so probes sampled near a burst's end observe a
    // "responsive" rate collapse.
    let (mut scenario, keys) = pulsed_scenario(PulseConfig {
        burst_rate_pps: 2_000.0,
        burst_len: SimDuration::from_millis(80),
        idle_len: SimDuration::from_millis(600),
        randomize_phase: true,
        ..PulseConfig::default()
    });
    scenario.sim.run_until(SimTime::from_secs_f64(6.0));
    let cleared = cleared_count(&scenario, &keys);
    let condemned = condemned_count(&scenario, &keys);
    // The defining property of the evasion: at least one pulser slips
    // through the probe test (is declared nice) — MAFIC's structural
    // limitation against shrew-style attackers.
    assert!(
        cleared >= 1,
        "expected at least one evading pulser, got {condemned} condemned / {cleared} cleared"
    );
}

#[test]
fn evasion_is_still_rate_limited_by_the_probing_phase() {
    // Even when pulsers evade classification, the probing phase plus
    // their own duty cycle caps what reaches the victim: the flood is
    // blunted relative to an undefended run.
    let pulse = PulseConfig {
        burst_rate_pps: 2_000.0,
        burst_len: SimDuration::from_millis(80),
        idle_len: SimDuration::from_millis(600),
        randomize_phase: true,
        ..PulseConfig::default()
    };
    let (mut defended, keys) = pulsed_scenario(pulse);
    defended.sim.run_until(SimTime::from_secs_f64(6.0));
    let delivered_defended: u64 = keys
        .iter()
        .filter_map(|k| defended.sim.stats().flow(k).map(|r| r.delivered))
        .sum();
    let sent_defended: u64 = keys
        .iter()
        .filter_map(|k| defended.sim.stats().flow(k).map(|r| r.sent))
        .sum();
    assert!(sent_defended > 0);
    assert!(
        delivered_defended < sent_defended,
        "some pulser traffic must still be shed"
    );
}

#[test]
fn nft_revalidation_suppresses_evading_pulsers() {
    // Anti-pulsing extension: nice verdicts expire after 400 ms, so an
    // evading pulser re-enters probation on (almost) every burst and
    // keeps paying the Pd=90% probing tax. A burst shorter than half the
    // probation window still *classifies* as responsive each time —
    // condemnation is not guaranteed — but the delivered fraction of its
    // traffic drops sharply compared to the never-re-probe baseline.
    let pulse = PulseConfig {
        burst_rate_pps: 2_000.0,
        burst_len: SimDuration::from_millis(80),
        idle_len: SimDuration::from_millis(600),
        randomize_phase: true,
        ..PulseConfig::default()
    };
    let delivered_fraction = |revalidate: Option<SimDuration>| {
        let (mut scenario, keys) = pulsed_scenario_with(pulse, revalidate);
        scenario.sim.run_until(SimTime::from_secs_f64(6.0));
        let (mut delivered, mut sent) = (0u64, 0u64);
        for k in &keys {
            if let Some(r) = scenario.sim.stats().flow(k) {
                delivered += r.delivered;
                sent += r.sent;
            }
        }
        assert!(sent > 0);
        delivered as f64 / sent as f64
    };
    let without = delivered_fraction(None);
    let with = delivered_fraction(Some(SimDuration::from_millis(400)));
    assert!(
        with < without * 0.7,
        "re-validation should cut pulser goodput: {with:.3} vs {without:.3}"
    );
}
