//! The [`AttackStrategy`] trait and the four built-in closed-loop
//! strategies.
//!
//! A strategy is a deterministic state machine driven once per monitor
//! interval by the [`AdversaryController`](crate::AdversaryController).
//! It sees only the [`StrategyCtx`] — per-source deltas, the aggregate
//! loss rate, the controller's seeded RNG, and the public protocol
//! constants — and answers with directives retargeting the attacker's
//! own sources. Strategies hash into the run ledger and serialize into
//! checkpoints exactly like defender components.

use mafic_obs::{Fnv64, SnapError, SnapReader, SnapWriter};
use rand::rngs::SmallRng;

use crate::controller::{AdversaryDirective, SourceObs};
use crate::spec::{AdversarySpec, StrategyKind};

/// Nominal per-source rate scale, in thousandths (the open-loop level).
pub(crate) const NOMINAL_MILLI: u32 = 1000;

/// Everything a strategy may legally observe in one monitor interval.
///
/// This struct *is* the observability boundary: per-source send/ack
/// deltas measured at the attacker's own nodes, an aggregate loss rate
/// derived from them, the controller's seeded RNG, and the public
/// [`AdversarySpec`] constants. Nothing here comes from defender
/// runtime state.
pub struct StrategyCtx<'a> {
    /// Zero-based monitor interval index (0 = first observation).
    pub interval: u64,
    /// Per-source observations for the interval just ended, in stable
    /// source order.
    pub sources: &'a [SourceObs],
    /// Aggregate loss rate over all sources for the interval, in
    /// `[0, 1]`; `0.0` when nothing was sent.
    pub loss_rate: f64,
    /// The controller's seeded RNG — the only randomness a strategy may
    /// use (determinism rule 5).
    pub rng: &'a mut SmallRng,
    /// Public protocol constants and strategy parameters.
    pub spec: &'a AdversarySpec,
}

/// A closed-loop attack strategy.
///
/// Implementations must be pure functions of their own state, the
/// [`StrategyCtx`], and the seeded RNG: no wall-clock, no global state,
/// no defender internals. `hash_state` and the snapshot pair keep the
/// strategy inside the run-ledger and checkpoint contracts.
pub trait AttackStrategy: std::fmt::Debug {
    /// Stable label for ledger components and figure legends.
    fn label(&self) -> &'static str;

    /// Observe one monitor interval and append retargeting directives.
    fn on_interval(&mut self, ctx: &mut StrategyCtx<'_>, out: &mut Vec<AdversaryDirective>);

    /// Folds the strategy's decision state into a ledger hash.
    fn hash_state(&self, h: &mut Fnv64);

    /// Serializes the strategy's decision state.
    fn snap_save(&self, w: &mut SnapWriter);

    /// Restores the strategy's decision state.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncated or malformed payloads.
    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Builds the strategy named by `spec.strategy` for a botnet whose
/// per-source stub indices are `stubs`.
#[must_use]
pub fn build_strategy(spec: &AdversarySpec, stubs: &[u32]) -> Box<dyn AttackStrategy> {
    match spec.strategy {
        StrategyKind::SourceRotation {
            period_intervals,
            active_fraction,
        } => Box::new(SourceRotation::new(
            period_intervals,
            active_fraction,
            stubs.len(),
        )),
        StrategyKind::AttestationShaping {
            step_milli,
            floor_milli,
        } => Box::new(AttestationShaping::new(step_milli, floor_milli)),
        StrategyKind::PulseTuning { boost_milli } => Box::new(PulseTuning::new(boost_milli)),
        StrategyKind::CarpetBombing { period_intervals } => {
            Box::new(CarpetBombing::new(period_intervals, stubs))
        }
    }
}

/// Churn the active source cohort faster than the defense's lease.
///
/// Sources are partitioned round-robin into `cohorts` cohorts; only the
/// cursor cohort transmits, scaled up by the cohort count to preserve
/// the aggregate budget. A paused cohort's meters drain, the victim
/// coordinator observes subsidence and stands its filters down, and by
/// the time the cohort returns its soft state has been flushed — so the
/// defense keeps paying the full detection-and-install latency against
/// a perpetually fresh source set.
#[derive(Debug)]
struct SourceRotation {
    period_intervals: u32,
    cohorts: u32,
    n_sources: usize,
    /// Rotation only pays off when it outruns the lease; see
    /// [`StrategyKind::SourceRotation`]. Latched at construction.
    effective: bool,
    engaged: bool,
    cursor: u32,
    since_rotate: u32,
}

impl SourceRotation {
    fn new(period_intervals: u32, active_fraction: f64, n_sources: usize) -> Self {
        let cohorts = (1.0 / active_fraction).round().max(1.0) as u32;
        SourceRotation {
            period_intervals,
            cohorts,
            n_sources,
            effective: true,
            engaged: false,
            cursor: 0,
            since_rotate: 0,
        }
    }

    /// Emits directives activating cohort `cursor` and pausing all
    /// others, scaled for equal budget.
    fn retarget(&self, out: &mut Vec<AdversaryDirective>) {
        for src in 0..self.n_sources {
            let active = (src as u32) % self.cohorts == self.cursor;
            out.push(AdversaryDirective::SetActive {
                source: src,
                active,
            });
            if active {
                out.push(AdversaryDirective::SetRateScale {
                    source: src,
                    scale_milli: NOMINAL_MILLI * self.cohorts,
                });
            }
        }
    }
}

impl AttackStrategy for SourceRotation {
    fn label(&self) -> &'static str {
        "rotation"
    }

    fn on_interval(&mut self, ctx: &mut StrategyCtx<'_>, out: &mut Vec<AdversaryDirective>) {
        if !self.effective || self.cohorts < 2 || self.n_sources == 0 {
            return;
        }
        if !self.engaged {
            if ctx.loss_rate > ctx.spec.engage_loss {
                self.engaged = true;
                self.since_rotate = 0;
                self.retarget(out);
            }
            return;
        }
        self.since_rotate += 1;
        if self.since_rotate >= self.period_intervals {
            self.since_rotate = 0;
            self.cursor = (self.cursor + 1) % self.cohorts;
            self.retarget(out);
        }
    }

    fn hash_state(&self, h: &mut Fnv64) {
        h.write_bool(self.effective);
        h.write_bool(self.engaged);
        h.write_u32(self.cursor);
        h.write_u32(self.since_rotate);
    }

    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_bool(self.effective);
        w.write_bool(self.engaged);
        w.write_u32(self.cursor);
        w.write_u32(self.since_rotate);
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.effective = r.read_bool()?;
        self.engaged = r.read_bool()?;
        self.cursor = r.read_u32()?;
        self.since_rotate = r.read_u32()?;
        Ok(())
    }
}

/// Hold the aggregate just under the attestation floor.
///
/// On engagement-level loss the shaper steps every source's rate down
/// toward `floor_milli`; upstream boundary meters then see a stream too
/// small to corroborate a flood-scale claim, so attestation-gated
/// escalation starves. When loss falls below half the engage threshold
/// the shaper probes back up toward nominal.
#[derive(Debug)]
struct AttestationShaping {
    step_milli: u32,
    floor_milli: u32,
    scale_milli: u32,
}

impl AttestationShaping {
    fn new(step_milli: u32, floor_milli: u32) -> Self {
        AttestationShaping {
            step_milli,
            floor_milli,
            scale_milli: NOMINAL_MILLI,
        }
    }
}

impl AttackStrategy for AttestationShaping {
    fn label(&self) -> &'static str {
        "attestation"
    }

    fn on_interval(&mut self, ctx: &mut StrategyCtx<'_>, out: &mut Vec<AdversaryDirective>) {
        let prev = self.scale_milli;
        if ctx.loss_rate > ctx.spec.engage_loss {
            self.scale_milli = self
                .scale_milli
                .saturating_sub(self.step_milli)
                .max(self.floor_milli);
        } else if ctx.loss_rate < ctx.spec.engage_loss * 0.5 && self.scale_milli < NOMINAL_MILLI {
            self.scale_milli = (self.scale_milli + self.step_milli).min(NOMINAL_MILLI);
        }
        if self.scale_milli != prev {
            for src in 0..ctx.sources.len() {
                out.push(AdversaryDirective::SetRateScale {
                    source: src,
                    scale_milli: self.scale_milli,
                });
            }
        }
    }

    fn hash_state(&self, h: &mut Fnv64) {
        h.write_u32(self.scale_milli);
    }

    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_u32(self.scale_milli);
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.scale_milli = r.read_u32()?;
        Ok(())
    }
}

/// Period-lock pulses to the coordinator's K-interval hysteresis.
///
/// Once engaged the botnet transmits boosted for `K - 1` intervals and
/// goes dark for one: the dark interval resets the coordinator's
/// consecutive-hot counter, so the K-in-a-row condition for escalation
/// is never met while the time-averaged rate matches the open-loop
/// budget.
#[derive(Debug)]
struct PulseTuning {
    boost_milli: u32,
    engaged: bool,
    phase: u32,
}

impl PulseTuning {
    fn new(boost_milli: u32) -> Self {
        PulseTuning {
            boost_milli,
            engaged: false,
            phase: 0,
        }
    }

    /// Equal-budget active-phase boost for a K-interval period with one
    /// dark phase.
    fn boost(&self, k: u32) -> u32 {
        if self.boost_milli != 0 {
            self.boost_milli
        } else {
            NOMINAL_MILLI * k / (k - 1).max(1)
        }
    }
}

impl AttackStrategy for PulseTuning {
    fn label(&self) -> &'static str {
        "pulse"
    }

    fn on_interval(&mut self, ctx: &mut StrategyCtx<'_>, out: &mut Vec<AdversaryDirective>) {
        let k = ctx.spec.trigger_intervals.max(2);
        if !self.engaged {
            if ctx.loss_rate > ctx.spec.engage_loss {
                self.engaged = true;
                self.phase = 0;
            } else {
                return;
            }
        } else {
            self.phase = (self.phase + 1) % k;
        }
        let dark = self.phase == k - 1;
        let boost = self.boost(k);
        for src in 0..ctx.sources.len() {
            out.push(AdversaryDirective::SetActive {
                source: src,
                active: !dark,
            });
            if !dark {
                out.push(AdversaryDirective::SetRateScale {
                    source: src,
                    scale_milli: boost,
                });
            }
        }
    }

    fn hash_state(&self, h: &mut Fnv64) {
        h.write_bool(self.engaged);
        h.write_u32(self.phase);
    }

    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_bool(self.engaged);
        w.write_u32(self.phase);
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.engaged = r.read_bool()?;
        self.phase = r.read_u32()?;
        Ok(())
    }
}

/// Rotate the whole flood across sibling stub domains.
///
/// Each period only the cursor stub's sources transmit, scaled to the
/// full budget. Every upstream trust ledger then keeps paying fresh
/// install costs for a different requesting domain, diluting per-target
/// install budgets across the sibling set.
#[derive(Debug)]
struct CarpetBombing {
    period_intervals: u32,
    /// Distinct stub indices hosting at least one source, sorted.
    stubs: Vec<u32>,
    /// Per-source stub index, in stable source order.
    source_stub: Vec<u32>,
    engaged: bool,
    cursor: u32,
    since_rotate: u32,
}

impl CarpetBombing {
    fn new(period_intervals: u32, source_stub: &[u32]) -> Self {
        let mut stubs: Vec<u32> = source_stub.to_vec();
        stubs.sort_unstable();
        stubs.dedup();
        CarpetBombing {
            period_intervals,
            stubs,
            source_stub: source_stub.to_vec(),
            engaged: false,
            cursor: 0,
            since_rotate: 0,
        }
    }

    fn retarget(&self, out: &mut Vec<AdversaryDirective>) {
        let active_stub = self.stubs[self.cursor as usize % self.stubs.len()];
        let active_count = self
            .source_stub
            .iter()
            .filter(|&&s| s == active_stub)
            .count()
            .max(1);
        let scale = NOMINAL_MILLI * (self.source_stub.len() as u32) / (active_count as u32);
        for (src, &stub) in self.source_stub.iter().enumerate() {
            let active = stub == active_stub;
            out.push(AdversaryDirective::SetActive {
                source: src,
                active,
            });
            if active {
                out.push(AdversaryDirective::SetRateScale {
                    source: src,
                    scale_milli: scale,
                });
            }
        }
    }
}

impl AttackStrategy for CarpetBombing {
    fn label(&self) -> &'static str {
        "carpet"
    }

    fn on_interval(&mut self, ctx: &mut StrategyCtx<'_>, out: &mut Vec<AdversaryDirective>) {
        // A single stub leaves nothing to rotate across.
        if self.stubs.len() < 2 {
            return;
        }
        if !self.engaged {
            if ctx.loss_rate > ctx.spec.engage_loss {
                self.engaged = true;
                self.since_rotate = 0;
                self.retarget(out);
            }
            return;
        }
        self.since_rotate += 1;
        if self.since_rotate >= self.period_intervals {
            self.since_rotate = 0;
            self.cursor = (self.cursor + 1) % (self.stubs.len() as u32);
            self.retarget(out);
        }
    }

    fn hash_state(&self, h: &mut Fnv64) {
        h.write_bool(self.engaged);
        h.write_u32(self.cursor);
        h.write_u32(self.since_rotate);
    }

    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_bool(self.engaged);
        w.write_u32(self.cursor);
        w.write_u32(self.since_rotate);
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.engaged = r.read_bool()?;
        self.cursor = r.read_u32()?;
        self.since_rotate = r.read_u32()?;
        Ok(())
    }
}

/// Marks a freshly built [`SourceRotation`] ineffective when its period
/// cannot outrun the published lease; called by the controller at
/// construction so the latch is part of deterministic init, not
/// per-interval branching.
pub(crate) fn apply_lease_gate(strategy: &mut Box<dyn AttackStrategy>, spec: &AdversarySpec) {
    if let StrategyKind::SourceRotation {
        period_intervals, ..
    } = spec.strategy
    {
        if period_intervals >= spec.lease_intervals {
            // Rebuild as a permanently idle rotation: rotating slower
            // than the lease cannot evade, so the best response is the
            // open-loop baseline (pinned byte-identical by tests).
            if let StrategyKind::SourceRotation {
                period_intervals,
                active_fraction,
            } = spec.strategy
            {
                let mut idle = SourceRotation::new(period_intervals, active_fraction, 0);
                idle.effective = false;
                *strategy = Box::new(idle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn obs(n: usize) -> Vec<SourceObs> {
        (0..n)
            .map(|i| SourceObs {
                sent_delta: 100,
                delivered_delta: 20,
                stub_index: (i % 3) as u32,
            })
            .collect()
    }

    fn ctx_parts() -> (AdversarySpec, SmallRng) {
        (AdversarySpec::default(), SmallRng::seed_from_u64(7))
    }

    fn drive(
        strategy: &mut dyn AttackStrategy,
        spec: &AdversarySpec,
        rng: &mut SmallRng,
        sources: &[SourceObs],
        interval: u64,
        loss_rate: f64,
    ) -> Vec<AdversaryDirective> {
        let mut out = Vec::new();
        let mut ctx = StrategyCtx {
            interval,
            sources,
            loss_rate,
            rng,
            spec,
        };
        strategy.on_interval(&mut ctx, &mut out);
        out
    }

    /// Sums the nominal-scale budget implied by a directive batch over
    /// `n` sources that all start active at `NOMINAL_MILLI`.
    fn budget_after(n: usize, directives: &[AdversaryDirective]) -> u32 {
        let mut active = vec![true; n];
        let mut scale = vec![NOMINAL_MILLI; n];
        for d in directives {
            match *d {
                AdversaryDirective::SetActive { source, active: a } => active[source] = a,
                AdversaryDirective::SetRateScale {
                    source,
                    scale_milli,
                } => scale[source] = scale_milli,
            }
        }
        (0..n).map(|i| if active[i] { scale[i] } else { 0 }).sum()
    }

    #[test]
    fn rotation_engages_rotates_and_preserves_budget() {
        let (spec, mut rng) = ctx_parts();
        let sources = obs(8);
        let mut s = SourceRotation::new(2, 0.5, sources.len());
        // Quiet interval: no directives before engagement.
        assert!(drive(&mut s, &spec, &mut rng, &sources, 0, 0.1).is_empty());
        // Heavy loss engages and retargets to cohort 0.
        let first = drive(&mut s, &spec, &mut rng, &sources, 1, 0.9);
        assert!(!first.is_empty());
        assert_eq!(budget_after(sources.len(), &first), 8 * NOMINAL_MILLI);
        // One interval later: no rotation yet (period 2).
        assert!(drive(&mut s, &spec, &mut rng, &sources, 2, 0.9).is_empty());
        // Second interval: cohort advances.
        let second = drive(&mut s, &spec, &mut rng, &sources, 3, 0.9);
        assert!(!second.is_empty());
        assert_eq!(budget_after(sources.len(), &second), 8 * NOMINAL_MILLI);
        assert_ne!(first, second, "rotation must move the active cohort");
    }

    #[test]
    fn rotation_cohort_membership_is_round_robin() {
        let (spec, mut rng) = ctx_parts();
        let sources = obs(4);
        let mut s = SourceRotation::new(1, 0.5, sources.len());
        let first = drive(&mut s, &spec, &mut rng, &sources, 0, 0.9);
        // Cohort 0 of 2 = sources 0 and 2 active.
        let mut active = vec![false; 4];
        for d in &first {
            if let AdversaryDirective::SetActive { source, active: a } = *d {
                active[source] = a;
            }
        }
        assert_eq!(active, vec![true, false, true, false]);
    }

    #[test]
    fn lease_gate_disables_slow_rotation_permanently() {
        let spec = AdversarySpec {
            strategy: StrategyKind::SourceRotation {
                period_intervals: 12,
                active_fraction: 0.5,
            },
            ..AdversarySpec::default()
        };
        let mut strategy = build_strategy(&spec, &[0, 0, 1, 1]);
        apply_lease_gate(&mut strategy, &spec);
        let mut rng = SmallRng::seed_from_u64(7);
        let sources = obs(4);
        for i in 0..40 {
            let out = drive(&mut *strategy, &spec, &mut rng, &sources, i, 0.95);
            assert!(out.is_empty(), "gated rotation must never emit directives");
        }
    }

    #[test]
    fn shaping_steps_down_to_floor_then_recovers() {
        let (spec, mut rng) = ctx_parts();
        let sources = obs(3);
        let mut s = AttestationShaping::new(300, 200);
        // Three hot intervals: 1000 -> 700 -> 400 -> 200 (floored).
        for (i, want) in [(0u64, 700u32), (1, 400), (2, 200)] {
            let out = drive(&mut s, &spec, &mut rng, &sources, i, 0.9);
            assert_eq!(out.len(), sources.len());
            assert!(out.iter().all(|d| matches!(
                d,
                AdversaryDirective::SetRateScale { scale_milli, .. } if *scale_milli == want
            )));
        }
        // Still hot at the floor: no change, no directives.
        assert!(drive(&mut s, &spec, &mut rng, &sources, 3, 0.9).is_empty());
        // Loss subsides: steps back up.
        let up = drive(&mut s, &spec, &mut rng, &sources, 4, 0.1);
        assert!(up.iter().all(|d| matches!(
            d,
            AdversaryDirective::SetRateScale { scale_milli, .. } if *scale_milli == 500
        )));
    }

    #[test]
    fn pulse_goes_dark_once_per_hysteresis_window() {
        let (spec, mut rng) = ctx_parts();
        let sources = obs(2);
        let mut s = PulseTuning::new(0);
        // Engage; K = 4 so the cycle is 3 hot + 1 dark.
        let mut dark_count = 0;
        let mut hot_count = 0;
        let _ = drive(&mut s, &spec, &mut rng, &sources, 0, 0.9);
        for i in 1..=8 {
            let out = drive(&mut s, &spec, &mut rng, &sources, i, 0.9);
            let dark = out
                .iter()
                .any(|d| matches!(d, AdversaryDirective::SetActive { active: false, .. }));
            if dark {
                dark_count += 1;
            } else {
                hot_count += 1;
            }
        }
        assert_eq!(dark_count, 2, "one dark interval per 4-interval window");
        assert_eq!(hot_count, 6);
        // Equal-budget boost: 1000 * 4 / 3 = 1333.
        assert_eq!(s.boost(4), 1333);
    }

    #[test]
    fn carpet_rotates_across_stubs_with_full_budget() {
        let (spec, mut rng) = ctx_parts();
        let sources = obs(6); // stubs 0,1,2,0,1,2
        let mut s = CarpetBombing::new(1, &[0, 1, 2, 0, 1, 2]);
        let first = drive(&mut s, &spec, &mut rng, &sources, 0, 0.9);
        assert_eq!(budget_after(sources.len(), &first), 6 * NOMINAL_MILLI);
        let second = drive(&mut s, &spec, &mut rng, &sources, 1, 0.9);
        assert_ne!(first, second, "carpet must move to the next stub");
        assert_eq!(budget_after(sources.len(), &second), 6 * NOMINAL_MILLI);
    }

    #[test]
    fn carpet_single_stub_is_inert() {
        let (spec, mut rng) = ctx_parts();
        let sources = obs(4);
        let mut s = CarpetBombing::new(1, &[0, 0, 0, 0]);
        for i in 0..10 {
            assert!(drive(&mut s, &spec, &mut rng, &sources, i, 0.95).is_empty());
        }
    }

    #[test]
    fn strategies_snapshot_round_trip() {
        let (spec, mut rng) = ctx_parts();
        let sources = obs(6);
        let stubs = [0u32, 1, 2, 0, 1, 2];
        for kind in [
            StrategyKind::SourceRotation {
                period_intervals: 2,
                active_fraction: 0.5,
            },
            StrategyKind::AttestationShaping {
                step_milli: 300,
                floor_milli: 200,
            },
            StrategyKind::PulseTuning { boost_milli: 0 },
            StrategyKind::CarpetBombing {
                period_intervals: 1,
            },
        ] {
            let spec = AdversarySpec {
                strategy: kind,
                ..spec
            };
            let mut a = build_strategy(&spec, &stubs);
            // Advance through engagement plus a few intervals.
            for i in 0..5 {
                let _ = drive(&mut *a, &spec, &mut rng, &sources, i, 0.9);
            }
            let mut w = SnapWriter::new();
            a.snap_save(&mut w);
            let bytes = w.into_bytes();
            let mut b = build_strategy(&spec, &stubs);
            let mut r = SnapReader::new(&bytes);
            b.snap_restore(&mut r).expect("restore");
            assert!(r.is_empty(), "strategy payload fully consumed");
            let mut ha = Fnv64::new();
            let mut hb = Fnv64::new();
            a.hash_state(&mut ha);
            b.hash_state(&mut hb);
            assert_eq!(ha.finish(), hb.finish(), "{}", a.label());
        }
    }
}
