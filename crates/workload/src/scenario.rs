//! Scenario construction: domain + agents + filters, fully wired.

use crate::spec::{DetectionMode, ScenarioSpec};
use mafic::{
    AddressValidator, DropPolicy, LogLogTap, MaficConfig, MaficFilter, ProportionalFilter,
};
use mafic_netsim::{Addr, AgentId, FlowKey, NodeId, SimDuration, SimTime, Simulator};
use mafic_topology::{Domain, DomainConfig, PREFIX_LEN};
use mafic_transport::{
    CbrConfig, CbrProtocol, TcpConfig, TcpSender, UnresponsiveSender, VictimSink,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Spoofing mode of one attack flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpoofMode {
    /// Uses the zombie's genuine address.
    None,
    /// Claims an unallocated (illegal) address.
    Illegal,
    /// Claims a legal address from another subnet.
    LegalOtherSubnet,
}

/// Ground-truth description of one provisioned flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowInfo {
    /// The flow's wire 4-tuple (claimed source included).
    pub key: FlowKey,
    /// The sending agent.
    pub agent: AgentId,
    /// True for attack flows.
    pub is_attack: bool,
    /// True for flows whose data segments are TCP.
    pub is_tcp: bool,
    /// The spoofing mode (always `None` for legitimate flows).
    pub spoof: SpoofMode,
    /// Index of the ingress router the flow enters through.
    pub ingress_index: usize,
}

/// A fully wired scenario, ready to run.
pub struct Scenario {
    /// The simulator holding the domain, agents, and filters.
    pub sim: Simulator,
    /// Topology handles.
    pub domain: Domain,
    /// The spec this scenario was built from.
    pub spec: ScenarioSpec,
    /// All provisioned flows with ground truth.
    pub flows: Vec<FlowInfo>,
    /// `(router, filter index)` of the defense filter on each ingress.
    pub droppers: Vec<(NodeId, usize)>,
    /// `(router, filter index)` of the LogLog tap on each router, in
    /// [`Domain::routers`] order.
    pub taps: Vec<(NodeId, usize)>,
    /// The victim sink agent.
    pub victim_agent: AgentId,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("flows", &self.flows.len())
            .field("droppers", &self.droppers.len())
            .field("taps", &self.taps.len())
            .finish()
    }
}

impl Scenario {
    /// Builds the scenario described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec or derived domain is invalid.
    pub fn build(spec: ScenarioSpec) -> Result<Scenario, String> {
        spec.validate()?;
        let mut rng = SmallRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9));
        let mut sim = Simulator::new(spec.seed);

        let domain_config = DomainConfig {
            n_routers: spec.n_routers,
            n_hosts: spec.total_flows,
            seed: spec.seed ^ 0xD0_4A1,
            ..DomainConfig::default()
        };
        let domain = Domain::build(&mut sim, &domain_config)?;

        // Victim endpoint.
        let victim_agent = sim.add_agent(
            domain.victim_host,
            Box::new(VictimSink::default()),
            SimTime::ZERO,
        );
        sim.bind_local_addr(domain.victim_host, domain.victim_addr, victim_agent);
        sim.stats_mut()
            .watch_victim(domain.victim_host, spec.victim_bin);
        sim.stats_mut()
            .watch_arrivals(domain.victim_router, domain.victim_addr, spec.victim_bin);

        // Filters: tap first (counts arrivals), then the dropper.
        let validator = AddressValidator::Prefixes(
            (0..domain.address_space.ingress_count())
                .map(|i| (domain.address_space.ingress_prefix(i), PREFIX_LEN))
                .chain(std::iter::once((
                    domain.address_space.victim_prefix(),
                    PREFIX_LEN,
                )))
                .collect(),
        );
        let mut taps = Vec::new();
        let routers = domain.routers();
        for &router in &routers {
            let (ingress_links, egress_addrs): (Vec<_>, Vec<Addr>) =
                if router == domain.victim_router {
                    (Vec::new(), vec![domain.victim_addr])
                } else if let Some(ingress_index) =
                    domain.ingress_routers.iter().position(|&r| r == router)
                {
                    let links = domain
                        .hosts
                        .iter()
                        .filter(|h| h.ingress_index == ingress_index)
                        .map(|h| h.uplink)
                        .collect();
                    let addrs = domain
                        .hosts
                        .iter()
                        .filter(|h| h.ingress_index == ingress_index)
                        .map(|h| h.addr)
                        .collect();
                    (links, addrs)
                } else {
                    (Vec::new(), Vec::new())
                };
            let tap = LogLogTap::new(spec.loglog_precision, ingress_links, egress_addrs);
            let idx = sim.add_filter(router, Box::new(tap));
            taps.push((router, idx));
        }

        let mut droppers = Vec::new();
        for (i, &ingress) in domain.ingress_routers.iter().enumerate() {
            let filter_seed = spec
                .seed
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(i as u64);
            let idx = match spec.policy {
                DropPolicy::Mafic => {
                    let config = MaficConfig {
                        drop_probability: spec.drop_probability,
                        timer_rtt_multiplier: spec.timer_rtt_multiplier,
                        decrease_threshold: spec.decrease_threshold,
                        label_mode: spec.label_mode,
                        nft_revalidate_after: spec.nft_revalidate_after,
                        seed: filter_seed,
                        ..MaficConfig::default()
                    };
                    sim.add_filter(
                        ingress,
                        Box::new(MaficFilter::new(config, validator.clone())),
                    )
                }
                DropPolicy::Proportional => sim.add_filter(
                    ingress,
                    Box::new(ProportionalFilter::new(spec.drop_probability, filter_seed)),
                ),
            };
            droppers.push((ingress, idx));
        }

        // Traffic: one host per flow. Legitimate TCP first, zombies last.
        let n_legit = spec.legit_flow_count();
        let n_attack = spec.attack_flow_count();
        debug_assert_eq!(n_legit + n_attack, spec.total_flows);
        let mut flows = Vec::with_capacity(spec.total_flows);

        for (i, host) in domain.hosts.iter().enumerate() {
            let src_port = 1024 + i as u16;
            let is_attack = i >= n_legit;
            if !is_attack {
                let key = FlowKey::new(host.addr, domain.victim_addr, src_port, 80);
                let start = SimTime::ZERO
                    + SimDuration::from_nanos(
                        rng.gen_range(0..=spec.legit_start_spread.as_nanos().max(1)),
                    );
                // Moderate RTO bounds so nice flows regain their share
                // promptly after passing the probe test (Fig. 4b).
                let tcp_config = TcpConfig {
                    min_rto: SimDuration::from_millis(200),
                    max_rto: SimDuration::from_secs(2),
                    ..TcpConfig::default()
                };
                let sender = TcpSender::new(key, tcp_config, false);
                let agent = sim.add_agent(host.node, Box::new(sender), start);
                sim.bind_local_addr(host.node, host.addr, agent);
                sim.stats_mut().declare_flow(key, false, true);
                flows.push(FlowInfo {
                    key,
                    agent,
                    is_attack: false,
                    is_tcp: true,
                    spoof: SpoofMode::None,
                    ingress_index: host.ingress_index,
                });
                continue;
            }
            // Attack flow: pick spoofing and protocol by configured mix.
            let attack_rank = i - n_legit;
            let spoof_roll = (attack_rank as f64 + 0.5) / n_attack as f64;
            let spoof = if spoof_roll < spec.spoof_illegal {
                SpoofMode::Illegal
            } else if spoof_roll < spec.spoof_illegal + spec.spoof_legal {
                SpoofMode::LegalOtherSubnet
            } else {
                SpoofMode::None
            };
            let claimed_src = match spoof {
                SpoofMode::None => host.addr,
                SpoofMode::Illegal => domain.address_space.random_illegal(&mut rng),
                SpoofMode::LegalOtherSubnet => domain
                    .address_space
                    .random_legal_spoof(host.ingress_index, &mut rng)
                    .unwrap_or(host.addr),
            };
            let tcp_like_roll = rng.gen::<f64>();
            let protocol = if tcp_like_roll < spec.attack_tcp_like {
                CbrProtocol::TcpLike
            } else {
                CbrProtocol::Udp
            };
            let key = FlowKey::new(claimed_src, domain.victim_addr, src_port, 80);
            let config = CbrConfig {
                rate_pps: spec.attack_rate_pps(),
                packet_size: 500,
                jitter: 0.2,
                protocol,
            };
            let mut sender =
                UnresponsiveSender::new(key, config, true, spec.seed ^ (i as u64) << 3);
            sender.set_stop_after(spec.end);
            let agent = sim.add_agent(host.node, Box::new(sender), spec.attack_start);
            sim.bind_local_addr(host.node, host.addr, agent);
            sim.stats_mut()
                .declare_flow(key, true, protocol == CbrProtocol::TcpLike);
            flows.push(FlowInfo {
                key,
                agent,
                is_attack: true,
                is_tcp: protocol == CbrProtocol::TcpLike,
                spoof,
                ingress_index: host.ingress_index,
            });
        }

        // Fixed-time detection installs the control messages up front.
        if let DetectionMode::AtTime(at) = spec.detection {
            for &(router, _) in &droppers {
                sim.send_control(
                    router,
                    mafic_netsim::ControlMsg::PushbackStart {
                        victim: domain.victim_addr,
                    },
                    at,
                );
            }
        }

        Ok(Scenario {
            sim,
            domain,
            spec,
            flows,
            droppers,
            taps,
            victim_agent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            total_flows: 10,
            n_routers: 6,
            end: SimTime::from_secs_f64(2.0),
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn build_provisions_everything() {
        let s = Scenario::build(small_spec()).unwrap();
        assert_eq!(s.flows.len(), 10);
        assert_eq!(s.droppers.len(), s.domain.ingress_routers.len());
        assert_eq!(s.taps.len(), s.domain.routers().len());
        let attackers = s.flows.iter().filter(|f| f.is_attack).count();
        assert_eq!(attackers, small_spec().attack_flow_count());
    }

    #[test]
    fn legit_flows_use_genuine_addresses() {
        let s = Scenario::build(small_spec()).unwrap();
        for (flow, host) in s.flows.iter().zip(s.domain.hosts.iter()) {
            if !flow.is_attack {
                assert_eq!(flow.key.src, host.addr);
                assert_eq!(flow.spoof, SpoofMode::None);
            }
        }
    }

    #[test]
    fn spoof_mix_is_respected() {
        let spec = ScenarioSpec {
            total_flows: 40,
            tcp_share: 0.5, // 20 attack flows
            spoof_illegal: 0.25,
            spoof_legal: 0.25,
            ..small_spec()
        };
        let s = Scenario::build(spec).unwrap();
        let attack: Vec<_> = s.flows.iter().filter(|f| f.is_attack).collect();
        assert_eq!(attack.len(), 20);
        let illegal = attack
            .iter()
            .filter(|f| f.spoof == SpoofMode::Illegal)
            .count();
        let legal = attack
            .iter()
            .filter(|f| f.spoof == SpoofMode::LegalOtherSubnet)
            .count();
        assert_eq!(illegal, 5, "25% of 20 attack flows");
        assert_eq!(legal, 5);
        for f in &attack {
            match f.spoof {
                SpoofMode::Illegal => {
                    assert!(!s.domain.address_space.is_legal(f.key.src));
                }
                SpoofMode::LegalOtherSubnet => {
                    assert!(s.domain.address_space.is_legal(f.key.src));
                }
                SpoofMode::None => {}
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = Scenario::build(small_spec()).unwrap();
        let b = Scenario::build(small_spec()).unwrap();
        let keys_a: Vec<_> = a.flows.iter().map(|f| f.key).collect();
        let keys_b: Vec<_> = b.flows.iter().map(|f| f.key).collect();
        assert_eq!(keys_a, keys_b);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let bad = ScenarioSpec {
            total_flows: 0,
            ..ScenarioSpec::default()
        };
        assert!(Scenario::build(bad).is_err());
    }

    #[test]
    fn proportional_policy_installs_baseline_filters() {
        let spec = ScenarioSpec {
            policy: DropPolicy::Proportional,
            ..small_spec()
        };
        let s = Scenario::build(spec).unwrap();
        let (node, idx) = s.droppers[0];
        assert!(s.sim.filter::<ProportionalFilter>(node, idx).is_some());
    }
}
