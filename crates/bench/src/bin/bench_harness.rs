//! End-to-end performance harness: runs pinned scenarios and emits a
//! `BENCH_*.json` perf record (packets/sec end-to-end, ns per table op,
//! figure-suite wall clock, allocation counts, peak arena occupancy).
//!
//! Modes:
//!
//! * `bench_harness --out BENCH_6.json --label 6` — full measurement.
//! * `bench_harness --ci --out BENCH_ci.json` — reduced sizes for CI.
//! * `--gate BENCH_baseline.json` — after measuring, compare end-to-end
//!   packets/sec against the committed baseline and exit non-zero if it
//!   regressed more than [`GATE_TOLERANCE`] (the CI regression gate).
//!
//! Wall-clock timing lives only in this binary; the simulator itself
//! never consults the host clock, so none of this can perturb replay
//! determinism.

// Sanctioned wall-clock user (see `mafic-lint`'s nondet config):
// measuring elapsed time is this harness's purpose, and nothing it
// measures feeds back into simulation state.
#![allow(clippy::disallowed_methods)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mafic_experiments::engine::run_specs;
use mafic_experiments::{sweep, sweep_warm, EngineConfig};
use mafic_netsim::{Addr, FlowInterner, FlowKey, FlowSlab, SimTime};
use mafic_topology::TransitTopology;
use mafic_workload::{
    encode_checkpoint, restore_run, run_scenario, run_spec, AdversarySpec, Scenario, ScenarioSpec,
    StrategyKind,
};

/// Fractional packets/sec regression tolerated by `--gate` (10%).
const GATE_TOLERANCE: f64 = 0.10;

/// Counting wrapper around the system allocator: total allocation calls
/// and bytes requested since process start. Reading the counters before
/// and after a measured region gives that region's allocation count —
/// the before/after evidence for the scratch-buffer-reuse work.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter
// updates are lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout unchanged to `System.alloc`,
    // which upholds the GlobalAlloc contract for it.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    // SAFETY: `ptr`/`layout` came from this allocator's `alloc`, which
    // returned a `System` block of the same layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    // SAFETY: same delegation; `ptr` was allocated by `System` with
    // `layout`, and `new_size` is passed through unmodified.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    // SAFETY: forwards the caller's layout unchanged to
    // `System.alloc_zeroed`, which upholds the contract for it.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// The pinned end-to-end scenario: Table II structure at a size that
/// keeps a measured repetition well under a second. Identical in `--ci`
/// and full mode — the CI gate compares its measurement against the
/// committed full-mode baseline, so the workload must match exactly.
fn e2e_spec(ledger: bool, adversary: bool) -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 40,
        n_routers: 20,
        end: SimTime::from_secs_f64(8.0),
        ledger,
        // The inert closed loop: rotation no faster than the lease
        // emits zero directives, so the run's output must match the
        // adversary-free run byte for byte while still paying the full
        // per-interval hook (feedback harvest + strategy step). The
        // measured delta therefore upper-bounds the hook's cost when
        // the adversary is disabled outright (one `Option` branch).
        adversary: adversary.then(|| {
            AdversarySpec::with_strategy(StrategyKind::SourceRotation {
                period_intervals: AdversarySpec::default().lease_intervals,
                active_fraction: 0.5,
            })
        }),
        seed: 6,
        ..ScenarioSpec::default()
    }
}

struct E2eResult {
    packets: u64,
    best_wall_s: f64,
    packets_per_sec: f64,
    allocs: u64,
    alloc_bytes: u64,
    peak_arena_packets: u64,
}

/// Runs the pinned scenario `reps` times (after one warmup), reporting
/// the best packets/sec plus the allocation count of a single rep.
/// `ledger` toggles run-ledger recording: the default (gated) number
/// keeps it off, and the ledger-on measurement quantifies the
/// per-interval state-hashing overhead.
fn measure_e2e(reps: u32, ledger: bool) -> E2eResult {
    let run_once = || {
        let mut scenario = Scenario::build(e2e_spec(ledger, false)).expect("e2e spec builds");
        let start = Instant::now();
        let outcome = run_scenario(&mut scenario).expect("e2e run succeeds");
        let wall = start.elapsed().as_secs_f64();
        let peak = scenario.sim.packet_arena_peak() as u64;
        (outcome.packets_sent, wall, peak)
    };
    run_once(); // warmup
    let mut best_wall = f64::INFINITY;
    let mut packets = 0u64;
    let mut peak = 0u64;
    let mut allocs = 0u64;
    let mut alloc_bytes = 0u64;
    for rep in 0..reps {
        let before = alloc_snapshot();
        let (sent, wall, p) = run_once();
        let after = alloc_snapshot();
        if rep == 0 {
            allocs = after.0 - before.0;
            alloc_bytes = after.1 - before.1;
        }
        packets = sent;
        peak = p;
        best_wall = best_wall.min(wall);
    }
    E2eResult {
        packets,
        best_wall_s: best_wall,
        packets_per_sec: packets as f64 / best_wall,
        allocs,
        alloc_bytes,
        peak_arena_packets: peak,
    }
}

/// Quantifies the adversary hook's cost when the closed loop has
/// nothing to do: packets/sec with the hook absent vs armed but inert
/// (see [`e2e_spec`]). The two arms alternate rep by rep so host-speed
/// drift lands on both equally, and each arm keeps its best wall time.
/// Outputs are asserted identical — the inert loop may not perturb the
/// run it is measuring.
fn measure_adversary_overhead(reps: u32) -> (f64, f64) {
    let run_once = |adversary: bool| {
        let mut scenario = Scenario::build(e2e_spec(false, adversary)).expect("e2e spec builds");
        let start = Instant::now();
        let outcome = run_scenario(&mut scenario).expect("e2e run succeeds");
        (outcome.packets_sent, start.elapsed().as_secs_f64())
    };
    run_once(false);
    run_once(true); // warm both arms
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut packets = 0u64;
    for _ in 0..reps {
        let (sent_off, wall_off) = run_once(false);
        let (sent_on, wall_on) = run_once(true);
        assert_eq!(sent_off, sent_on, "inert adversary perturbed the run");
        packets = sent_off;
        best_off = best_off.min(wall_off);
        best_on = best_on.min(wall_on);
    }
    (packets as f64 / best_off, packets as f64 / best_on)
}

/// Steady-state per-packet table op: one interner probe plus one dense
/// slab bump over a 10k-flow resident table (the microbench's
/// `interned_slab` case, timed with a plain monotonic clock).
fn measure_table_op() -> f64 {
    const TABLE_FLOWS: u32 = 10_000;
    const OPS: u64 = 2_000_000;
    let flow_key = |n: u32| {
        FlowKey::new(
            Addr::new(0x0A01_0000 | (n & 0xFFFF)),
            Addr::from_octets(10, 200, 0, 1),
            (1024 + (n % 50_000)) as u16,
            80,
        )
    };
    let mut interner = FlowInterner::new();
    let mut table: FlowSlab<u64> = FlowSlab::new();
    for n in 0..TABLE_FLOWS {
        let id = interner.intern(flow_key(n));
        table.insert(id, 0);
    }
    let mut n = 0u32;
    let start = Instant::now();
    for _ in 0..OPS {
        n = (n + 1) % TABLE_FLOWS;
        let id = interner.intern(std::hint::black_box(flow_key(n)));
        if let Some(count) = table.get_mut(id) {
            *count += 1;
        }
    }
    let total = start.elapsed().as_nanos() as f64;
    // Keep the table observable so the loop cannot be optimized away.
    std::hint::black_box(&table);
    total / OPS as f64
}

/// A miniature figure suite: a `Vt` sweep plus one multi-domain cascade
/// point, run serially through the experiment engine (the same code path
/// the figure binaries use).
fn figure_suite_specs(ci: bool) -> Vec<ScenarioSpec> {
    let vts: &[usize] = if ci { &[10, 20] } else { &[10, 20, 30] };
    let seeds: &[u64] = if ci { &[1] } else { &[1, 2] };
    let mut specs = Vec::new();
    for &vt in vts {
        for &seed in seeds {
            specs.push(ScenarioSpec {
                total_flows: vt,
                n_routers: 10,
                end: SimTime::from_secs_f64(3.0),
                seed,
                ..ScenarioSpec::default()
            });
        }
    }
    specs.push(ScenarioSpec {
        domains: 4,
        pushback_depth: 2,
        total_flows: 24,
        n_routers: 8,
        end: SimTime::from_secs_f64(3.0),
        seed: 9,
        ..ScenarioSpec::default()
    });
    specs
}

struct CheckpointResult {
    snapshot_bytes: u64,
    write_ms: f64,
    restore_ms: f64,
}

/// Times the checkpoint paths over the multi-domain cascade scenario:
/// write = probe + serialize + encode (the mid-run capture path),
/// restore = decode + rebuild-from-spec + overlay + digest verification
/// (the whole [`restore_run`] gate, build included).
fn measure_checkpoint(reps: u32) -> CheckpointResult {
    let spec = ScenarioSpec {
        total_flows: 24,
        n_routers: 8,
        domains: 4,
        transit_topology: TransitTopology::Chain { depth: 1 },
        pushback_depth: 2,
        end: SimTime::from_secs_f64(3.0),
        checkpoint_at: Some(SimTime::from_secs_f64(1.5)),
        seed: 9,
        ..ScenarioSpec::default()
    };
    let bytes = run_spec(spec.clone())
        .expect("checkpoint spec runs")
        .checkpoint
        .expect("checkpoint captured");
    let (scenario, state) = restore_run(&spec, &bytes).expect("checkpoint restores");
    let mut write_best = f64::INFINITY;
    let mut restore_best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let rewritten = encode_checkpoint(&scenario, &state);
        write_best = write_best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(&rewritten);
        let start = Instant::now();
        let pair = restore_run(&spec, &bytes).expect("checkpoint restores");
        restore_best = restore_best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(&pair);
    }
    CheckpointResult {
        snapshot_bytes: bytes.len() as u64,
        write_ms: write_best * 1e3,
        restore_ms: restore_best * 1e3,
    }
}

/// Times the pushback-depth sweep cold (every cell from time zero)
/// against warm-started (`sweep_warm`: the shared pre-attack prefix
/// runs once per trial, every other cell branches from the
/// checkpoint). Both run serially so the ratio reflects the skipped
/// prefix work, not pool scheduling. Outputs are asserted equal — a
/// speedup from wrong results would be worse than no speedup.
fn measure_warm_sweep(ci: bool) -> (f64, f64) {
    let xs: Vec<f64> = if ci {
        vec![0.0, 2.0]
    } else {
        vec![0.0, 1.0, 2.0, 3.0]
    };
    let series = vec![("chain".to_string(), ())];
    let cfg = EngineConfig {
        jobs: 1,
        trials: if ci { 1 } else { 2 },
    };
    let make = |_: &(), depth: f64| ScenarioSpec {
        total_flows: 24,
        n_routers: 8,
        domains: 4,
        transit_topology: TransitTopology::Chain { depth: 1 },
        pushback_depth: depth as u32,
        end: SimTime::from_secs_f64(3.0),
        seed: 9,
        ..ScenarioSpec::default()
    };
    let branch_at = make(&(), 0.0).attack_start;
    let start = Instant::now();
    let cold = sweep(&series, &xs, &cfg, make).expect("cold sweep runs");
    let cold_wall = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = sweep_warm(&series, &xs, &cfg, branch_at, make).expect("warm sweep runs");
    let warm_wall = start.elapsed().as_secs_f64();
    assert_eq!(cold, warm, "warm sweep diverged from cold sweep");
    (cold_wall, warm_wall)
}

fn measure_figure_suite(ci: bool) -> (usize, f64) {
    let specs = figure_suite_specs(ci);
    let n = specs.len();
    let start = Instant::now();
    let outcomes = run_specs(specs, 1).expect("figure suite runs");
    let wall = start.elapsed().as_secs_f64();
    std::hint::black_box(&outcomes);
    (n, wall)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Extracts the number following `"key":` from a flat JSON document.
/// The bench records are emitted by this binary with exactly that
/// shape, so a full parser is unnecessary (and unavailable offline).
fn json_lookup(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut ci = false;
    let mut out: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut label = "local".to_string();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--ci" => ci = true,
            "--out" => out = Some(argv.next().expect("--out requires a path")),
            "--gate" => gate = Some(argv.next().expect("--gate requires a baseline path")),
            "--label" => label = argv.next().expect("--label requires a value"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let reps = 3;
    eprintln!("[bench] e2e scenario ({reps} reps, ledger off)...");
    let e2e = measure_e2e(reps, false);
    eprintln!(
        "[bench]   {} packets in {:.3}s best -> {:.0} packets/sec, {} allocs/run, arena peak {}",
        e2e.packets, e2e.best_wall_s, e2e.packets_per_sec, e2e.allocs, e2e.peak_arena_packets
    );
    eprintln!("[bench] e2e scenario ({reps} reps, ledger on)...");
    let e2e_ledger = measure_e2e(reps, true);
    let ledger_overhead_pct =
        (e2e.packets_per_sec / e2e_ledger.packets_per_sec - 1.0).max(0.0) * 100.0;
    eprintln!(
        "[bench]   {:.0} packets/sec with ledger recording ({:.1}% overhead)",
        e2e_ledger.packets_per_sec, ledger_overhead_pct
    );
    let adversary_reps = 10;
    eprintln!("[bench] adversary hook overhead ({adversary_reps} paired reps, inert loop)...");
    let (pps_hook_off, pps_hook_on) = measure_adversary_overhead(adversary_reps);
    let adversary_overhead_pct = (pps_hook_off / pps_hook_on - 1.0).max(0.0) * 100.0;
    eprintln!(
        "[bench]   {pps_hook_off:.0} packets/sec hook off, {pps_hook_on:.0} armed \
         ({adversary_overhead_pct:.1}% overhead)"
    );
    eprintln!("[bench] table op...");
    let ns_per_table_op = measure_table_op();
    eprintln!("[bench]   {ns_per_table_op:.2} ns/op");
    eprintln!("[bench] figure suite...");
    let (suite_runs, suite_wall) = measure_figure_suite(ci);
    eprintln!("[bench]   {suite_runs} runs in {suite_wall:.3}s");
    eprintln!("[bench] checkpoint write/restore ({reps} reps)...");
    let ckpt = measure_checkpoint(reps);
    eprintln!(
        "[bench]   {} snapshot bytes, write {:.3} ms, restore {:.3} ms",
        ckpt.snapshot_bytes, ckpt.write_ms, ckpt.restore_ms
    );
    eprintln!("[bench] warm vs cold sweep...");
    let (cold_wall, warm_wall) = measure_warm_sweep(ci);
    eprintln!(
        "[bench]   cold {cold_wall:.3}s, warm {warm_wall:.3}s ({:.2}x)",
        cold_wall / warm_wall
    );

    let mode = if ci { "ci" } else { "full" };
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"label\": \"{label}\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"packets_per_sec\": {pps},\n",
            "  \"packets_per_sec_ledger\": {pps_ledger},\n",
            "  \"ledger_overhead_pct\": {ledger_overhead},\n",
            "  \"packets_per_sec_adversary\": {pps_adversary},\n",
            "  \"adversary_overhead_pct\": {adversary_overhead},\n",
            "  \"e2e_packets\": {packets},\n",
            "  \"e2e_best_wall_s\": {wall},\n",
            "  \"e2e_allocs\": {allocs},\n",
            "  \"e2e_alloc_bytes\": {alloc_bytes},\n",
            "  \"peak_arena_packets\": {peak},\n",
            "  \"ns_per_table_op\": {table},\n",
            "  \"figure_suite_runs\": {suite_runs},\n",
            "  \"figure_suite_wall_s\": {suite_wall},\n",
            "  \"snapshot_bytes\": {snapshot_bytes},\n",
            "  \"snapshot_write_ms\": {snapshot_write},\n",
            "  \"snapshot_restore_ms\": {snapshot_restore},\n",
            "  \"sweep_cold_wall_s\": {cold_wall},\n",
            "  \"sweep_warm_wall_s\": {warm_wall},\n",
            "  \"warm_sweep_speedup\": {warm_speedup}\n",
            "}}\n"
        ),
        label = label,
        mode = mode,
        pps = json_f(e2e.packets_per_sec),
        pps_ledger = json_f(e2e_ledger.packets_per_sec),
        ledger_overhead = json_f(ledger_overhead_pct),
        pps_adversary = json_f(pps_hook_on),
        adversary_overhead = json_f(adversary_overhead_pct),
        packets = e2e.packets,
        wall = json_f(e2e.best_wall_s),
        allocs = e2e.allocs,
        alloc_bytes = e2e.alloc_bytes,
        peak = e2e.peak_arena_packets,
        table = json_f(ns_per_table_op),
        suite_runs = suite_runs,
        suite_wall = json_f(suite_wall),
        snapshot_bytes = ckpt.snapshot_bytes,
        snapshot_write = json_f(ckpt.write_ms),
        snapshot_restore = json_f(ckpt.restore_ms),
        cold_wall = json_f(cold_wall),
        warm_wall = json_f(warm_wall),
        warm_speedup = json_f(cold_wall / warm_wall),
    );
    if let Some(path) = &out {
        std::fs::write(path, &json).expect("write bench record");
        eprintln!("[bench] wrote {path}");
    }
    print!("{json}");

    if let Some(baseline_path) = gate {
        let doc = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline_pps = json_lookup(&doc, "packets_per_sec")
            .unwrap_or_else(|| panic!("baseline {baseline_path} lacks packets_per_sec"));
        let floor = baseline_pps * (1.0 - GATE_TOLERANCE);
        eprintln!(
            "[gate] measured {:.0} packets/sec vs baseline {:.0} (floor {:.0})",
            e2e.packets_per_sec, baseline_pps, floor
        );
        if e2e.packets_per_sec < floor {
            eprintln!(
                "[gate] FAIL: packets/sec regressed more than {:.0}%",
                GATE_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("[gate] OK");
    }
}
