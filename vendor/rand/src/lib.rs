//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the thin slice of the `rand 0.8` API it actually uses: [`SeedableRng`],
//! [`Rng`] with `gen`/`gen_range`/`gen_bool`, and [`rngs::SmallRng`].
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for its small RNG family — so streams are
//! deterministic per seed, fast, and statistically sound for simulation
//! use. The exact values differ from upstream `rand`, which is fine: every
//! consumer in this workspace treats the stream as an opaque seeded source.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with `gen_range`.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to u64 for sampling arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows back after sampling.
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); the slight bias at spans
    // approaching 2^64 is irrelevant for simulation workloads.
    let x = rng.next_u64();
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range: empty range");
        T::from_u64(lo + sample_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + sample_below(rng, span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SmallRng {
        /// The generator's full internal state, for checkpointing.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured
        /// [`SmallRng::state`]. The all-zero state is invalid for
        /// xoshiro and is remapped exactly as seeding does, so a
        /// restored generator can never stall.
        #[must_use]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(0u64..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn state_round_trips() {
        let mut a = SmallRng::seed_from_u64(7);
        for _ in 0..13 {
            let _ = a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The all-zero state is remapped, never accepted verbatim.
        let z = SmallRng::from_state([0, 0, 0, 0]);
        assert_ne!(z.state(), [0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = rng.gen_range(5u32..5);
    }
}
