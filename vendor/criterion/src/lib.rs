//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], the `criterion_group!`/`criterion_main!` macros, and
//! [`black_box`] — backed by a simple wall-clock timer.
//!
//! Measurement model: each `Bencher::iter` call runs a short warm-up, then
//! measures batches of iterations until either the sample budget or a time
//! cap is reached, and prints the mean time per iteration. No statistics
//! files are written. Passing `--test` (as `cargo test` does for bench
//! targets) runs every closure exactly once for a smoke check.

#![forbid(unsafe_code)]
// Sanctioned wall-clock user: this is the benchmark timer itself. The
// workspace-wide `disallowed-methods` ban on `Instant::now` exists to
// keep wall clocks out of *simulation* code; a bench harness is the
// one place they belong.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timing callback target handed to bench closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Mean nanoseconds per iteration; `None` until `iter` ran, and in
    /// smoke-test mode.
    reported: Option<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, storing the mean duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.config.smoke_test {
            black_box(routine());
            return;
        }
        // Warm-up: one call, which also gives a cost estimate used to pick
        // the batch size so fast routines get enough iterations to time.
        let warm_start = Instant::now();
        black_box(routine());
        let warm = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(5).as_nanos() / warm.as_nanos()).clamp(1, 100_000);
        let per_batch = per_batch as u64;

        let budget = self.config.measure_budget;
        let started = Instant::now();
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        let mut samples = 0usize;
        while samples < self.config.sample_size && started.elapsed() < budget {
            let batch_start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            spent += batch_start.elapsed();
            iters += per_batch;
            samples += 1;
        }
        // Report in float nanoseconds so sub-ns/iter routines don't
        // truncate to zero.
        self.reported = Some(spent.as_secs_f64() * 1e9 / iters.max(1) as f64);
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measure_budget: Duration,
    smoke_test: bool,
}

impl Config {
    fn from_args() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Config {
            sample_size: 10,
            measure_budget: Duration::from_secs(5),
            smoke_test,
        }
    }
}

fn report(name: &str, bencher: Bencher<'_>) {
    match bencher.reported {
        Some(mean_ns) => println!("bench {name:<50} {mean_ns:>12.2} ns/iter"),
        None if bencher.config.smoke_test => println!("bench {name:<50} smoke-tested"),
        None => println!("bench {name:<50} (no measurement taken)"),
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config::from_args(),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            config: &self.config,
            reported: None,
        };
        f(&mut b);
        report(name, b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    // Ties the group's lifetime to the parent Criterion, as upstream does.
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            config: &self.config,
            reported: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut b = Bencher {
            config: &self.config,
            reported: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b);
        self
    }

    /// Finishes the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
