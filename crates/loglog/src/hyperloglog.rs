//! HyperLogLog — the harmonic-mean successor to LogLog.
//!
//! The MAFIC paper uses plain LogLog (following Durand–Flajolet). We also
//! implement HyperLogLog so the ablation benchmarks can quantify how much
//! accuracy the pushback traffic matrix would gain from the stronger
//! estimator at identical register budgets.

use crate::hash::{mix64, rho};
use crate::loglog::{Precision, SketchError};

/// A HyperLogLog cardinality sketch.
///
/// Register layout and merge semantics are identical to [`crate::LogLog`];
/// only the estimator differs (harmonic mean instead of geometric mean),
/// which reduces the standard error from ≈ `1.30/√m` to ≈ `1.04/√m`.
///
/// # Example
///
/// ```
/// use mafic_loglog::{HyperLogLog, Precision};
///
/// let mut s = HyperLogLog::new(Precision::P10);
/// for i in 0u64..30_000 {
///     s.insert_u64(i);
/// }
/// assert!((s.estimate() - 30_000.0).abs() / 30_000.0 < 0.15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: Precision,
    registers: Vec<u8>,
    inserts: u64,
}

impl HyperLogLog {
    /// Creates an empty sketch with the given precision.
    #[must_use]
    pub fn new(precision: Precision) -> Self {
        HyperLogLog {
            precision,
            registers: vec![0; precision.registers()],
            inserts: 0,
        }
    }

    /// The sketch precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Returns `true` if no item has ever been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts == 0
    }

    /// Inserts an already well-mixed 64-bit hash value.
    pub fn insert_hash(&mut self, hash: u64) {
        let k = self.precision.bits();
        let bucket = (hash >> (64 - k)) as usize;
        let suffix_bits = 64 - k;
        let rank = rho(hash & ((1u64 << suffix_bits) - 1), suffix_bits);
        if rank > self.registers[bucket] {
            self.registers[bucket] = rank;
        }
        self.inserts += 1;
    }

    /// Mixes and inserts a 64-bit item.
    pub fn insert_u64(&mut self, item: u64) {
        self.insert_hash(mix64(item));
    }

    /// The HyperLogLog bias constant `α_m`.
    fn alpha(&self) -> f64 {
        let m = self.precision.registers() as f64;
        match self.precision.registers() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        }
    }

    /// Estimates the number of distinct items inserted.
    ///
    /// Uses linear counting in the small-cardinality regime, as in the
    /// original HyperLogLog paper.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.inserts == 0 {
            return 0.0;
        }
        let m = self.precision.registers() as f64;
        let raw: f64 = self.alpha() * m * m
            / self
                .registers
                .iter()
                .map(|&r| 2f64.powi(-i32::from(r)))
                .sum::<f64>();
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Max-merges `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError`] if the precisions differ.
    pub fn merge_from(&mut self, other: &HyperLogLog) -> Result<(), SketchError> {
        if self.precision != other.precision {
            // Route through LogLog's constructor for a uniform error type.
            let l = crate::LogLog::new(self.precision);
            let r = crate::LogLog::new(other.precision);
            return l.merged(&r).map(|_| ());
        }
        for (dst, &src) in self.registers.iter_mut().zip(other.registers.iter()) {
            if src > *dst {
                *dst = src;
            }
        }
        self.inserts += other.inserts;
        Ok(())
    }

    /// Resets all registers.
    pub fn clear(&mut self) {
        self.registers.fill(0);
        self.inserts = 0;
    }
}

impl Default for HyperLogLog {
    fn default() -> Self {
        HyperLogLog::new(Precision::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(HyperLogLog::new(Precision::P8).estimate(), 0.0);
    }

    #[test]
    fn estimate_accuracy() {
        for &n in &[500u64, 5_000, 50_000] {
            let mut s = HyperLogLog::new(Precision::P10);
            for i in 0..n {
                s.insert_u64(i);
            }
            let rel = (s.estimate() - n as f64).abs() / n as f64;
            assert!(rel < 0.15, "n={n} rel={rel}");
        }
    }

    #[test]
    fn hll_beats_loglog_on_average() {
        // Not a strict guarantee per-seed, but across several cardinalities
        // the aggregate error of HLL should not exceed LogLog's.
        let mut hll_err = 0.0;
        let mut ll_err = 0.0;
        for &n in &[2_000u64, 8_000, 32_000, 128_000] {
            let mut h = HyperLogLog::new(Precision::P8);
            let mut l = crate::LogLog::new(Precision::P8);
            for i in 0..n {
                h.insert_u64(i);
                l.insert_u64(i);
            }
            hll_err += (h.estimate() - n as f64).abs() / n as f64;
            ll_err += (l.estimate() - n as f64).abs() / n as f64;
        }
        assert!(hll_err <= ll_err * 1.5, "hll_err={hll_err} ll_err={ll_err}");
    }

    #[test]
    fn merge_is_union() {
        let mut a = HyperLogLog::new(Precision::P10);
        let mut b = HyperLogLog::new(Precision::P10);
        for i in 0u64..10_000 {
            a.insert_u64(i);
        }
        for i in 5_000u64..20_000 {
            b.insert_u64(i);
        }
        a.merge_from(&b).unwrap();
        let rel = (a.estimate() - 20_000.0).abs() / 20_000.0;
        assert!(rel < 0.15, "rel={rel}");
    }

    #[test]
    fn clear_resets() {
        let mut s = HyperLogLog::default();
        s.insert_u64(1);
        s.clear();
        assert!(s.is_empty());
    }
}
