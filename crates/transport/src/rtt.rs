//! RTT estimation (Jacobson/Karels smoothing) for the TCP agents.

use mafic_netsim::SimDuration;

/// Smoothed RTT estimator producing retransmission timeouts.
///
/// Implements the standard `SRTT`/`RTTVAR` smoothing: on each sample,
/// `RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − sample|` and
/// `SRTT ← 7/8·SRTT + 1/8·sample`, with `RTO = SRTT + 4·RTTVAR`
/// clamped to configured bounds.
///
/// # Example
///
/// ```
/// use mafic_transport::RttEstimator;
/// use mafic_netsim::SimDuration;
///
/// let mut est = RttEstimator::new(
///     SimDuration::from_millis(200),
///     SimDuration::from_millis(100),
///     SimDuration::from_secs(5),
/// );
/// est.sample(SimDuration::from_millis(40));
/// assert!(est.srtt().unwrap() >= SimDuration::from_millis(40));
/// assert!(est.rto() >= SimDuration::from_millis(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator with an initial RTO (used before any sample)
    /// and clamping bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min_rto > max_rto`.
    #[must_use]
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto, "min_rto exceeds max_rto");
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial_rto.max(min_rto).min(max_rto),
            min_rto,
            max_rto,
        }
    }

    /// The smoothed RTT, if at least one sample arrived.
    #[must_use]
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The current retransmission timeout.
    #[must_use]
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Feeds one RTT measurement.
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3 + err) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar * 4).max(self.min_rto).min(self.max_rto);
    }

    /// Exponential backoff after a retransmission timeout.
    pub fn backoff(&mut self) {
        self.rto = (self.rto * 2).min(self.max_rto);
    }

    // Snapshot codecs for the mutable estimator state; the clamping
    // bounds are construction-time configuration.
    pub(crate) fn snap_save(&self, w: &mut mafic_netsim::SnapWriter) {
        match self.srtt {
            None => w.write_u8(0),
            Some(s) => {
                w.write_u8(1);
                w.write_u64(s.as_nanos());
            }
        }
        w.write_u64(self.rttvar.as_nanos());
        w.write_u64(self.rto.as_nanos());
    }

    pub(crate) fn snap_restore(
        &mut self,
        r: &mut mafic_netsim::SnapReader<'_>,
    ) -> Result<(), mafic_netsim::SnapError> {
        self.srtt = match r.read_u8()? {
            0 => None,
            1 => Some(SimDuration::from_nanos(r.read_u64()?)),
            tag => {
                return Err(mafic_netsim::SnapError::Malformed(format!(
                    "srtt tag {tag}"
                )))
            }
        };
        self.rttvar = SimDuration::from_nanos(r.read_u64()?);
        self.rto = SimDuration::from_nanos(r.read_u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_millis(200),
            SimDuration::from_millis(50),
            SimDuration::from_secs(4),
        )
    }

    #[test]
    fn initial_rto_is_clamped() {
        let e = RttEstimator::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(50),
            SimDuration::from_secs(4),
        );
        assert_eq!(e.rto(), SimDuration::from_millis(50));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.sample(SimDuration::from_millis(80));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(80)));
        // RTO = 80 + 4*40 = 240ms.
        assert_eq!(e.rto(), SimDuration::from_millis(240));
    }

    #[test]
    fn smoothing_converges_to_stable_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(60));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            (srtt.as_secs_f64() - 0.060).abs() < 0.001,
            "srtt did not converge: {srtt}"
        );
        // With zero variance the RTO approaches SRTT, clamped at min.
        assert!(e.rto() >= SimDuration::from_millis(50));
        assert!(e.rto() <= SimDuration::from_millis(80));
    }

    #[test]
    fn backoff_doubles_until_cap() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        let before = e.rto();
        e.backoff();
        assert_eq!(e.rto(), (before * 2).min(SimDuration::from_secs(4)));
        for _ in 0..10 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "min_rto exceeds max_rto")]
    fn bounds_validated() {
        let _ = RttEstimator::new(
            SimDuration::from_millis(1),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
        );
    }
}
