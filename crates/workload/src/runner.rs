//! Scenario execution with the periodic pushback monitor.
//!
//! The runner steps the simulation in monitor-interval increments. Each
//! step it harvests the per-router LogLog sketch epochs (exactly what the
//! paper's `TrafficMonitor` does), builds the traffic matrix, and feeds
//! the victim detector. On an alarm it sends `PushbackStart` control
//! messages to the identified Attack Transit Routers; the MAFIC filters
//! there take over. At the end it assembles the full [`MetricsReport`].

use crate::scenario::Scenario;
use crate::spec::DetectionMode;
use mafic::LogLogTap;
use mafic_loglog::{DetectorConfig, RouterSketch, TrafficMatrix, VictimDetector, VictimVerdict};
use mafic_metrics::{
    victim_arrival_series, victim_bandwidth_series, BandwidthPoint, MeasureWindows, MetricsReport,
};
use mafic_netsim::{ControlMsg, NodeId, SimDuration, SimTime};

/// Everything a finished run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// The paper's five metrics for this run.
    pub report: MetricsReport,
    /// Offered-load series at the victim router (the paper's Fig. 4b).
    pub series: Vec<BandwidthPoint>,
    /// Delivered-goodput series at the victim host.
    pub goodput_series: Vec<BandwidthPoint>,
    /// When the pushback was triggered (`None` if never).
    pub triggered_at: Option<SimTime>,
    /// Routers that received the pushback request.
    pub atr_nodes: Vec<NodeId>,
    /// Total packets injected during the run.
    pub packets_sent: u64,
    /// Total packets delivered during the run.
    pub packets_delivered: u64,
}

impl RunOutcome {
    /// Convenience accessor: did the defense ever engage?
    #[must_use]
    pub fn defense_engaged(&self) -> bool {
        self.triggered_at.is_some()
    }
}

/// Runs a scenario to completion. The scenario is borrowed, not
/// consumed, so callers can inspect post-run state (tap epochs, filter
/// tables, stats) after the outcome is assembled.
///
/// # Errors
///
/// Returns an error message if the detector configuration is invalid
/// (only possible with a hand-built [`DetectorConfig`]).
pub fn run_scenario(scenario: &mut Scenario) -> Result<RunOutcome, String> {
    let detector_config = DetectorConfig {
        // Epoch cardinalities are per monitor interval; the victim sees
        // a few hundred distinct packets per 100 ms when healthy.
        min_cardinality: 150.0,
        surge_factor: 1.6,
        baseline_weight: 0.3,
        atr_share: 0.02,
        // Train the baseline through the TCP slow-start ramp (~0.8 s).
        warmup_rounds: (0.8 / scenario.spec.monitor_interval.as_secs_f64()).ceil() as u64,
    };
    let mut detector = VictimDetector::new(detector_config)?;
    let mut triggered_at: Option<SimTime> = None;
    let mut atr_nodes: Vec<NodeId> = Vec::new();
    let control_delay = SimDuration::from_millis(5);

    let auto = matches!(scenario.spec.detection, DetectionMode::Auto);
    if let DetectionMode::AtTime(at) = scenario.spec.detection {
        triggered_at = Some(at);
        atr_nodes = scenario.droppers.iter().map(|&(n, _)| n).collect();
    }

    let end = scenario.spec.end;
    let interval = scenario.spec.monitor_interval;
    let mut next_stop = SimTime::ZERO + interval;
    while scenario.sim.now() < end {
        let stop = next_stop.min(end);
        scenario.sim.run_until(stop);
        next_stop = stop + interval;
        // Harvest this epoch's sketches in Domain::routers() order —
        // every interval, triggered or not. Epochs are defined as one
        // monitor interval; skipping the drain after the trigger would
        // let them accumulate for the rest of the run, so any later
        // reader (re-detection, telemetry) would see one stale merged
        // epoch instead of an interval's worth of traffic.
        let sketches: Vec<RouterSketch> = scenario
            .taps
            .iter()
            .map(|&(node, idx)| {
                scenario
                    .sim
                    .filter_mut::<LogLogTap>(node, idx)
                    .expect("tap installed at build time")
                    .take_epoch()
            })
            .collect();
        if !auto || triggered_at.is_some() {
            continue;
        }
        // Victim escalation fallback: if the counting pipeline has not
        // fired within the grace period, every ingress is instructed.
        if let Some(grace) = scenario.spec.detection_fallback {
            let deadline = scenario.spec.attack_start + grace;
            if scenario.sim.now() >= deadline {
                let now = scenario.sim.now();
                let at = now + control_delay;
                for &(node, _) in &scenario.droppers {
                    scenario.sim.send_control(
                        node,
                        ControlMsg::PushbackStart {
                            victim: scenario.domain.victim_addr,
                        },
                        at,
                    );
                    atr_nodes.push(node);
                }
                triggered_at = Some(at);
                continue;
            }
        }
        let matrix = TrafficMatrix::estimate(&sketches).map_err(|e| e.to_string())?;
        if let VictimVerdict::UnderAttack(alarm) = detector.observe(&matrix) {
            let routers = scenario.domain.routers();
            let victim_router = routers[alarm.victim.0];
            // Only a last-hop alarm for *our* victim counts; ingress
            // routers also have egress traffic (ACKs toward hosts).
            if victim_router != scenario.domain.victim_router {
                continue;
            }
            let now = scenario.sim.now();
            let at = now + control_delay;
            for &(id, _contribution) in &alarm.attack_transit_routers {
                let node = routers[id.0];
                // Never instruct the victim's own router; MAFIC runs at
                // the ingress ATRs.
                if node == scenario.domain.victim_router {
                    continue;
                }
                scenario.sim.send_control(
                    node,
                    ControlMsg::PushbackStart {
                        victim: scenario.domain.victim_addr,
                    },
                    at,
                );
                atr_nodes.push(node);
            }
            if !atr_nodes.is_empty() {
                triggered_at = Some(at);
            }
        }
    }

    // β windows: "before" covers only the attack-raging period between
    // attack start and the trigger; "after" sits right behind the trigger
    // (the paper reports the cut achieved within ~2×RTT, before the nice
    // flows regain their bandwidth shares).
    let trigger_anchor = triggered_at.unwrap_or(scenario.spec.attack_start);
    let raging = trigger_anchor.saturating_since(scenario.spec.attack_start);
    let windows = MeasureWindows {
        trigger_at: trigger_anchor,
        before: raging
            .max(SimDuration::from_millis(50))
            .min(SimDuration::from_millis(500)),
        settle: SimDuration::from_millis(50),
        after: SimDuration::from_millis(200),
    };
    let stats = scenario.sim.stats();
    let report = MetricsReport::from_stats(stats, &windows);
    let series = victim_arrival_series(stats);
    let goodput_series = victim_bandwidth_series(stats);
    Ok(RunOutcome {
        report,
        series,
        goodput_series,
        triggered_at,
        atr_nodes,
        packets_sent: stats.total_sent,
        packets_delivered: stats.total_delivered,
    })
}

/// Builds and runs a scenario in one call, averaging is the caller's job.
///
/// # Errors
///
/// Propagates build and run errors.
pub fn run_spec(spec: crate::spec::ScenarioSpec) -> Result<RunOutcome, String> {
    run_scenario(&mut Scenario::build(spec)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn quick_spec() -> ScenarioSpec {
        ScenarioSpec {
            total_flows: 12,
            n_routers: 6,
            attack_start: SimTime::from_secs_f64(0.8),
            end: SimTime::from_secs_f64(3.0),
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn auto_detection_triggers_and_cuts_attack() {
        let outcome = run_spec(quick_spec()).unwrap();
        assert!(outcome.defense_engaged(), "detector must fire: {outcome:?}");
        let t = outcome.triggered_at.unwrap();
        assert!(
            t > quick_spec().attack_start,
            "trigger {t} before attack start"
        );
        assert!(
            t < quick_spec().attack_start + SimDuration::from_millis(600),
            "detection too slow: {t}"
        );
        assert!(!outcome.atr_nodes.is_empty());
        // The defense must drop the bulk of the attack.
        assert!(
            outcome.report.accuracy_pct > 90.0,
            "accuracy {:.2}%",
            outcome.report.accuracy_pct
        );
    }

    #[test]
    fn fixed_time_detection_runs_without_monitor() {
        let spec = ScenarioSpec {
            detection: DetectionMode::AtTime(SimTime::from_secs_f64(1.0)),
            ..quick_spec()
        };
        let outcome = run_spec(spec).unwrap();
        assert_eq!(outcome.triggered_at, Some(SimTime::from_secs_f64(1.0)));
        assert!(outcome.report.accuracy_pct > 90.0);
    }

    #[test]
    fn detection_off_never_drops() {
        let spec = ScenarioSpec {
            detection: DetectionMode::Off,
            ..quick_spec()
        };
        let outcome = run_spec(spec).unwrap();
        assert!(!outcome.defense_engaged());
        assert_eq!(outcome.report.attack_dropped, 0);
        assert_eq!(outcome.report.attack_seen, 0, "no ATR accounting when idle");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_spec(quick_spec()).unwrap();
        let b = run_spec(quick_spec()).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.triggered_at, b.triggered_at);
        assert_eq!(a.packets_sent, b.packets_sent);
    }

    #[test]
    fn taps_stay_epoch_scoped_after_trigger() {
        let mut scenario = Scenario::build(quick_spec()).unwrap();
        let outcome = run_scenario(&mut scenario).unwrap();
        assert!(outcome.defense_engaged(), "precondition: defense fired");
        // The monitor drains the taps every interval, triggered or not.
        // The final drain happens at `end`, so a post-run reader sees an
        // interval-scoped (here: empty) epoch — not every packet since
        // the trigger merged into one stale epoch.
        let taps = scenario.taps.clone();
        for (node, idx) in taps {
            let tap = scenario
                .sim
                .filter_mut::<LogLogTap>(node, idx)
                .expect("tap installed at build time");
            let epoch = tap.take_epoch();
            assert_eq!(epoch.source_cardinality(), 0.0, "stale sources at {node:?}");
            assert_eq!(
                epoch.destination_cardinality(),
                0.0,
                "stale destinations at {node:?}"
            );
        }
    }

    #[test]
    fn legit_flows_survive_the_defense() {
        let outcome = run_spec(quick_spec()).unwrap();
        // The whole point of MAFIC: legitimate flows keep most of their
        // packets.
        assert!(
            outcome.report.legit_drop_pct < 20.0,
            "legit drop rate {:.2}%",
            outcome.report.legit_drop_pct
        );
        assert!(
            outcome.report.flows.legit_condemned <= outcome.report.flows.legit_flows / 4,
            "too many legit flows condemned: {:?}",
            outcome.report.flows
        );
    }
}
