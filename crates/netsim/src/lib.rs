//! # mafic-netsim
//!
//! A deterministic discrete-event network simulator — the substrate the
//! MAFIC reproduction runs on, standing in for NS-2.
//!
//! The simulator models:
//!
//! * **Nodes** (routers and hosts) with exact-match host routes plus a
//!   default route,
//! * **Simplex links** with bandwidth (serialization delay), propagation
//!   delay, and bounded drop-tail queues,
//! * **Agents** — end-host endpoints (TCP senders, sinks, attack zombies
//!   live in `mafic-transport`) driven by packet deliveries and timers,
//! * **Packet filters** — router-resident hooks (the MAFIC dropper, the
//!   LogLog traffic taps) that can drop, emit probes, and keep timers,
//! * a **control plane** for pushback start/stop messages, and
//! * a global [`StatsCollector`] with per-flow ground-truth accounting.
//!
//! Everything is single-threaded and deterministic: the event queue breaks
//! timestamp ties by insertion order, and no component consults ambient
//! randomness (agents own seeded RNGs supplied by the workload layer).
//!
//! # Example
//!
//! ```
//! use mafic_netsim::*;
//!
//! let mut sim = Simulator::new(42);
//! let router = sim.add_node("router");
//! let host = sim.add_node("host");
//! let (to_host, _back) = sim.add_duplex_link(router, host, LinkSpec::default());
//! let addr = Addr::from_octets(10, 0, 0, 1);
//! sim.add_route(router, addr, to_host);
//! let sink = sim.add_agent(host, Box::new(CountingSink::new()), SimTime::ZERO);
//! sim.bind_local_addr(host, addr, sink);
//! let key = FlowKey::new(Addr::from_octets(10, 0, 9, 9), addr, 1000, 80);
//! sim.inject_packet(router, key, PacketKind::Udp, 500, false, SimTime::ZERO);
//! sim.run_until(SimTime::from_secs_f64(0.1));
//! assert_eq!(sim.stats().flow(&key).unwrap().delivered, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod agent;
pub mod arena;
pub mod event;
pub mod filter;
pub mod flows;
pub mod ids;
pub mod link;
pub mod node;
pub mod packet;
pub mod sim;
pub mod stats;
pub mod testkit;
pub mod time;
pub mod trace;
mod wheel;

pub use agent::{Agent, AgentCtx, CountingSink};
// Checkpoint vocabulary, re-exported so layers that depend only on
// netsim (e.g. mafic-transport) can implement the snapshot hooks
// without adding a manifest edge to mafic-obs.
pub use arena::PacketRef;
pub use event::FilterControl;
pub use filter::{FilterAction, FilterCtx, PacketEnv, PacketFilter, PassthroughFilter, StatNote};
pub use flows::{FlowId, FlowInterner, FlowSlab};
pub use ids::{Addr, AgentId, LinkId, NodeId};
pub use link::LinkSpec;
pub use mafic_obs::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotHeader, SnapshotState};
pub use packet::{
    read_control_msg, read_flow_key, snap_control_msg, snap_flow_key, ControlMsg, ControlVerb,
    DenyReason, DropReason, FlowKey, Packet, PacketKind, Provenance, RequesterId,
    CONTROL_PROTOCOL_VERSION,
};
pub use sim::{RunSummary, Simulator};
pub use stats::{FlowRecord, StatsCollector, VictimBin};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceEvent};
