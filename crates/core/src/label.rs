//! Flow labels — the table keys of the MAFIC algorithm.
//!
//! The paper labels each flow by the 4-tuple `{src IP, dst IP, src port,
//! dst port}` and, "to minimize the storage overhead", stores only the
//! output of a hash function over the label rather than the label itself.
//! Both modes are implemented; the hashed mode is the default and the
//! full-key mode exists for the memory/collision ablation.

use mafic_loglog::hash::{mix2, mix64};
use mafic_netsim::FlowKey;
use std::fmt;

/// How flows are keyed in the SFT/NFT/PDT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LabelMode {
    /// Store a 64-bit hash of the 4-tuple (the paper's choice).
    #[default]
    Hashed,
    /// Store the full 4-tuple (no collisions, more memory).
    Full,
}

impl LabelMode {
    /// Approximate memory footprint of one stored label under this
    /// mode, in bytes — the single source of truth for table-memory
    /// accounting (ablations and policy cost reports).
    #[must_use]
    pub fn stored_bytes(self) -> usize {
        match self {
            LabelMode::Hashed => 8,
            LabelMode::Full => 12,
        }
    }
}

/// A table key for one flow.
///
/// # Example
///
/// ```
/// use mafic::label::{FlowLabel, LabelMode};
/// use mafic_netsim::{Addr, FlowKey};
///
/// let key = FlowKey::new(Addr::new(1), Addr::new(2), 3, 4);
/// let hashed = FlowLabel::from_key(key, LabelMode::Hashed);
/// let full = FlowLabel::from_key(key, LabelMode::Full);
/// assert_eq!(hashed, FlowLabel::from_key(key, LabelMode::Hashed));
/// assert_ne!(hashed, full);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowLabel {
    /// Hash of the 4-tuple.
    Hashed(u64),
    /// The 4-tuple itself.
    Full(FlowKey),
}

impl FlowLabel {
    /// Derives the label for `key` under the given mode.
    #[must_use]
    pub fn from_key(key: FlowKey, mode: LabelMode) -> Self {
        match mode {
            LabelMode::Hashed => {
                let (a, b) = key.as_words();
                FlowLabel::Hashed(mix2(a, b))
            }
            LabelMode::Full => FlowLabel::Full(key),
        }
    }

    /// A 64-bit token identifying this label (used for timer tokens).
    #[must_use]
    pub fn token(self) -> u64 {
        match self {
            FlowLabel::Hashed(h) => h,
            FlowLabel::Full(key) => {
                let (a, b) = key.as_words();
                mix64(mix2(a, b) ^ 0x5AB3)
            }
        }
    }

    /// Approximate memory footprint of one stored label, in bytes
    /// (delegates to [`LabelMode::stored_bytes`]).
    #[must_use]
    pub fn stored_bytes(self) -> usize {
        match self {
            FlowLabel::Hashed(_) => LabelMode::Hashed,
            FlowLabel::Full(_) => LabelMode::Full,
        }
        .stored_bytes()
    }
}

impl fmt::Display for FlowLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowLabel::Hashed(h) => write!(f, "label#{h:016x}"),
            FlowLabel::Full(key) => write!(f, "label[{key}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(Addr::new(0x0A000001), Addr::new(0x0AC80001), port, 80)
    }

    #[test]
    fn hashed_labels_are_stable_and_distinct() {
        let a = FlowLabel::from_key(key(1), LabelMode::Hashed);
        let b = FlowLabel::from_key(key(1), LabelMode::Hashed);
        let c = FlowLabel::from_key(key(2), LabelMode::Hashed);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn full_labels_preserve_the_tuple() {
        match FlowLabel::from_key(key(7), LabelMode::Full) {
            FlowLabel::Full(k) => assert_eq!(k, key(7)),
            other => panic!("expected full label, got {other:?}"),
        }
    }

    #[test]
    fn tokens_are_stable_per_label() {
        let l = FlowLabel::from_key(key(9), LabelMode::Hashed);
        assert_eq!(l.token(), l.token());
        let f = FlowLabel::from_key(key(9), LabelMode::Full);
        assert_eq!(f.token(), f.token());
        // Hashed and full tokens need not match, but both must be stable.
    }

    #[test]
    fn stored_bytes_reflect_mode() {
        assert_eq!(
            FlowLabel::from_key(key(1), LabelMode::Hashed).stored_bytes(),
            8
        );
        assert_eq!(
            FlowLabel::from_key(key(1), LabelMode::Full).stored_bytes(),
            12
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!FlowLabel::from_key(key(1), LabelMode::Hashed)
            .to_string()
            .is_empty());
        assert!(!FlowLabel::from_key(key(1), LabelMode::Full)
            .to_string()
            .is_empty());
    }
}
