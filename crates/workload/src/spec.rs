//! Scenario specification — the experiment parameter surface.
//!
//! One [`ScenarioSpec`] captures everything the paper's evaluation
//! sweeps: traffic volume `Vt`, TCP share `Γ`, flow rate `R`, drop
//! probability `Pd`, domain size `N`, plus the spoofing mix, the drop
//! policy under test, and all timing anchors. Defaults follow Table II.

use mafic::{DropPolicy, LabelMode};
use mafic_loglog::Precision;
use mafic_netsim::{SimDuration, SimTime};
use mafic_topology::TransitTopology;

/// How the pushback trigger is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// The LogLog set-union monitor detects the surge and identifies the
    /// ATRs (the full pipeline of the paper).
    Auto,
    /// Activate the defense at a fixed time on every ingress router
    /// (isolates MAFIC behaviour from detector behaviour).
    AtTime(SimTime),
    /// Never activate (undefended baseline runs).
    Off,
}

/// The paper's nominal per-source sending rates (Fig. 3b series).
///
/// `R` is given in the paper both as packets/s and as a bit rate; with
/// the 500-byte segments used throughout, the three series map to the
/// packet rates below (see DESIGN.md §4 for the substitution note).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NominalRate {
    /// "100 kbps" — 25 packets/s at 500-byte packets.
    R100k,
    /// "500 kbps" — 125 packets/s.
    R500k,
    /// "1 Mbps" — 250 packets/s (Table II default).
    R1M,
}

impl NominalRate {
    /// Packets per second for this nominal rate.
    #[must_use]
    pub fn pps(self) -> f64 {
        match self {
            NominalRate::R100k => 25.0,
            NominalRate::R500k => 125.0,
            NominalRate::R1M => 250.0,
        }
    }

    /// Display label matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NominalRate::R100k => "R=100k",
            NominalRate::R500k => "R=500k",
            NominalRate::R1M => "R=1M",
        }
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// `Vt` — total number of flows (Table II: 50).
    pub total_flows: usize,
    /// `Γ` — fraction of flows that are legitimate TCP (Table II: 0.95);
    /// the remainder are unresponsive attack flows.
    pub tcp_share: f64,
    /// `R` — nominal per-source rate in packets/s (Table II: "1M").
    pub flow_rate_pps: f64,
    /// Aggregate attack volume as a multiple of `R × Vt`, split evenly
    /// across the zombies. 1.0 roughly doubles the offered load.
    pub attack_load_factor: f64,
    /// Fraction of attack flows emitting TCP-looking segments (the rest
    /// send UDP).
    pub attack_tcp_like: f64,
    /// Fraction of attack flows spoofing an *illegal* source address.
    pub spoof_illegal: f64,
    /// Fraction of attack flows spoofing a *legal* address from another
    /// subnet (the rest use their own address).
    pub spoof_legal: f64,
    /// `N` — number of routers in the domain (Table II: 40).
    pub n_routers: usize,
    /// Number of stub domains, the victim's included. `1` is the
    /// paper's single-domain scenario; `>= 2` builds a multi-domain
    /// internet where flows split round-robin over the stubs and
    /// remote traffic crosses a transit tier to reach the victim.
    pub domains: usize,
    /// Shape of the transit (provider) tier between the source stubs
    /// and the victim domain. Ignored when `domains == 1`.
    pub transit_topology: TransitTopology,
    /// Escalation budget of the cascaded pushback: how many hops
    /// upstream of the victim domain the defense may travel (`0` =
    /// victim-domain-only, today's single-domain behaviour; each
    /// transit level costs one hop, the source stubs one more).
    pub pushback_depth: u32,
    /// Escalation threshold as a fraction of the victim link capacity:
    /// a defending domain escalates upstream while the victim-bound
    /// aggregate entering its ATRs stays above this for the trigger
    /// window. Ignored when `domains == 1`.
    pub escalation_threshold: f64,
    /// `Pd` — the probing drop probability (Table II: 0.9).
    pub drop_probability: f64,
    /// Which drop policy runs at the ATRs.
    pub policy: DropPolicy,
    /// Flow-label storage model for table-memory accounting; drop
    /// behaviour is label-collision-free in every mode since tables are
    /// keyed by exact interned flow ids.
    pub label_mode: LabelMode,
    /// Probation timer as a multiple of the flow RTT (paper: 2).
    pub timer_rtt_multiplier: f64,
    /// Responsiveness threshold for the probe decision.
    pub decrease_threshold: f64,
    /// Optional NFT re-validation period (anti-pulsing extension; the
    /// paper's algorithm never re-probes).
    pub nft_revalidate_after: Option<SimDuration>,
    /// LogLog sketch precision for the pushback taps.
    pub loglog_precision: Precision,
    /// How the pushback trigger is decided.
    pub detection: DetectionMode,
    /// In [`DetectionMode::Auto`], if the sketch monitor has not raised
    /// the alarm this long after the attack begins, the victim escalates
    /// and pushback is forced at every ingress (a victim experiencing
    /// collapse notifies its upstreams even without the counting
    /// pipeline). `None` disables the fallback.
    pub detection_fallback: Option<SimDuration>,
    /// Monitor sampling interval (traffic-matrix epochs).
    pub monitor_interval: SimDuration,
    /// When legitimate flows start (staggered up to `legit_start_spread`).
    pub legit_start_spread: SimDuration,
    /// When the attack begins.
    pub attack_start: SimTime,
    /// End of the simulated run.
    pub end: SimTime,
    /// Victim time-series bin width.
    pub victim_bin: SimDuration,
    /// Master seed; all component seeds derive from it.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            total_flows: 50,
            tcp_share: 0.95,
            flow_rate_pps: NominalRate::R1M.pps(),
            attack_load_factor: 1.0,
            attack_tcp_like: 0.5,
            spoof_illegal: 0.25,
            spoof_legal: 0.25,
            n_routers: 40,
            domains: 1,
            transit_topology: TransitTopology::Chain { depth: 2 },
            pushback_depth: 0,
            escalation_threshold: 0.25,
            drop_probability: 0.9,
            policy: DropPolicy::Mafic,
            label_mode: LabelMode::Hashed,
            timer_rtt_multiplier: 2.0,
            decrease_threshold: 0.7,
            nft_revalidate_after: None,
            loglog_precision: Precision::P10,
            detection: DetectionMode::Auto,
            detection_fallback: Some(SimDuration::from_millis(500)),
            monitor_interval: SimDuration::from_millis(100),
            legit_start_spread: SimDuration::from_millis(500),
            attack_start: SimTime::from_secs_f64(1.0),
            end: SimTime::from_secs_f64(8.0),
            victim_bin: SimDuration::from_millis(50),
            seed: 1,
        }
    }
}

impl ScenarioSpec {
    /// Number of legitimate TCP flows.
    #[must_use]
    pub fn legit_flow_count(&self) -> usize {
        self.total_flows - self.attack_flow_count()
    }

    /// Number of attack flows — at least one whenever flows exist, so the
    /// "under attack" scenarios stay meaningful across the `Γ` sweep.
    #[must_use]
    pub fn attack_flow_count(&self) -> usize {
        if self.total_flows == 0 {
            return 0;
        }
        let raw = ((1.0 - self.tcp_share) * self.total_flows as f64).round() as usize;
        raw.clamp(1, self.total_flows)
    }

    /// Per-zombie sending rate in packets/s.
    #[must_use]
    pub fn attack_rate_pps(&self) -> f64 {
        let attackers = self.attack_flow_count();
        if attackers == 0 {
            return 0.0;
        }
        self.attack_load_factor * self.flow_rate_pps * self.total_flows as f64 / attackers as f64
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_flows == 0 {
            return Err("total_flows must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.tcp_share) {
            return Err(format!(
                "tcp_share must be in [0, 1], got {}",
                self.tcp_share
            ));
        }
        if self.flow_rate_pps.is_nan() || self.flow_rate_pps <= 0.0 {
            return Err("flow_rate_pps must be positive".into());
        }
        if self.attack_load_factor.is_nan() || self.attack_load_factor < 0.0 {
            return Err("attack_load_factor must be >= 0".into());
        }
        for (name, v) in [
            ("attack_tcp_like", self.attack_tcp_like),
            ("spoof_illegal", self.spoof_illegal),
            ("spoof_legal", self.spoof_legal),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if self.spoof_illegal + self.spoof_legal > 1.0 + 1e-9 {
            return Err("spoof_illegal + spoof_legal must not exceed 1".into());
        }
        if self.n_routers < 3 {
            return Err(format!("n_routers must be >= 3, got {}", self.n_routers));
        }
        if self.domains == 0 {
            return Err("domains must be >= 1".into());
        }
        if self.domains > 64 {
            return Err(format!("domains must be <= 64, got {}", self.domains));
        }
        self.transit_topology.validate()?;
        if self.domains == 1 && self.pushback_depth > 0 {
            return Err("pushback_depth > 0 requires domains >= 2".into());
        }
        if !self.escalation_threshold.is_finite() || self.escalation_threshold <= 0.0 {
            return Err(format!(
                "escalation_threshold must be finite and > 0, got {}",
                self.escalation_threshold
            ));
        }
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err("drop_probability must be in [0, 1]".into());
        }
        if !self.timer_rtt_multiplier.is_finite() || self.timer_rtt_multiplier <= 0.0 {
            return Err(format!(
                "timer_rtt_multiplier must be finite and > 0, got {}",
                self.timer_rtt_multiplier
            ));
        }
        if !(0.0..=1.0).contains(&self.decrease_threshold) {
            return Err(format!(
                "decrease_threshold must be in [0, 1], got {}",
                self.decrease_threshold
            ));
        }
        if self.attack_start >= self.end {
            return Err("attack_start must precede end".into());
        }
        if self.monitor_interval.is_zero() {
            return Err("monitor_interval must be positive".into());
        }
        if self.victim_bin.is_zero() {
            return Err("victim_bin must be positive (it bins the victim series)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let s = ScenarioSpec::default();
        assert_eq!(s.total_flows, 50);
        assert!((s.tcp_share - 0.95).abs() < 1e-9);
        assert_eq!(s.n_routers, 40);
        assert!((s.drop_probability - 0.9).abs() < 1e-9);
        assert_eq!(s.flow_rate_pps, 250.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn flow_split_respects_gamma() {
        let s = ScenarioSpec {
            total_flows: 100,
            tcp_share: 0.8,
            ..ScenarioSpec::default()
        };
        assert_eq!(s.attack_flow_count(), 20);
        assert_eq!(s.legit_flow_count(), 80);
    }

    #[test]
    fn at_least_one_attacker() {
        let s = ScenarioSpec {
            total_flows: 10,
            tcp_share: 1.0,
            ..ScenarioSpec::default()
        };
        assert_eq!(s.attack_flow_count(), 1);
        assert_eq!(s.legit_flow_count(), 9);
    }

    #[test]
    fn attack_rate_splits_total_volume() {
        let s = ScenarioSpec {
            total_flows: 50,
            tcp_share: 0.9, // 5 attackers
            flow_rate_pps: 100.0,
            attack_load_factor: 1.0,
            ..ScenarioSpec::default()
        };
        // Total attack = 1.0 × 100 × 50 = 5000 pps over 5 zombies.
        assert!((s.attack_rate_pps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn nominal_rates_map_to_pps() {
        assert_eq!(NominalRate::R100k.pps(), 25.0);
        assert_eq!(NominalRate::R500k.pps(), 125.0);
        assert_eq!(NominalRate::R1M.pps(), 250.0);
        assert_eq!(NominalRate::R1M.label(), "R=1M");
    }

    #[test]
    fn validation_catches_bad_specs() {
        let base = ScenarioSpec::default();
        assert!(ScenarioSpec {
            total_flows: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ScenarioSpec {
            tcp_share: 1.5,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ScenarioSpec {
            n_routers: 2,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ScenarioSpec {
            spoof_illegal: 0.7,
            spoof_legal: 0.7,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ScenarioSpec {
            attack_start: SimTime::from_secs_f64(9.0),
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validation_catches_bad_timer_multiplier() {
        let base = ScenarioSpec::default();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ScenarioSpec {
                timer_rtt_multiplier: bad,
                ..base.clone()
            }
            .validate()
            .expect_err(&format!("timer_rtt_multiplier {bad} must be rejected"));
            assert!(err.contains("timer_rtt_multiplier"), "{err}");
        }
    }

    #[test]
    fn validation_catches_bad_decrease_threshold() {
        let base = ScenarioSpec::default();
        for bad in [-0.1, 1.1, f64::NAN] {
            let err = ScenarioSpec {
                decrease_threshold: bad,
                ..base.clone()
            }
            .validate()
            .expect_err(&format!("decrease_threshold {bad} must be rejected"));
            assert!(err.contains("decrease_threshold"), "{err}");
        }
    }

    #[test]
    fn validation_catches_bad_multi_domain_fields() {
        let base = ScenarioSpec::default();
        for (label, bad) in [
            (
                "zero domains",
                ScenarioSpec {
                    domains: 0,
                    ..base.clone()
                },
            ),
            (
                "too many domains",
                ScenarioSpec {
                    domains: 65,
                    ..base.clone()
                },
            ),
            (
                "depth without domains",
                ScenarioSpec {
                    pushback_depth: 1,
                    ..base.clone()
                },
            ),
            (
                "zero threshold",
                ScenarioSpec {
                    domains: 2,
                    escalation_threshold: 0.0,
                    ..base.clone()
                },
            ),
            (
                "zero tree fanout",
                ScenarioSpec {
                    domains: 2,
                    transit_topology: TransitTopology::Tree {
                        depth: 1,
                        fanout: 0,
                    },
                    ..base.clone()
                },
            ),
        ] {
            assert!(bad.validate().is_err(), "{label} must be rejected");
        }
        let multi = ScenarioSpec {
            domains: 3,
            pushback_depth: 3,
            ..base
        };
        assert!(multi.validate().is_ok());
    }

    #[test]
    fn validation_catches_zero_victim_bin() {
        let err = ScenarioSpec {
            victim_bin: SimDuration::ZERO,
            ..ScenarioSpec::default()
        }
        .validate()
        .expect_err("zero victim_bin must be rejected");
        assert!(err.contains("victim_bin"), "{err}");
    }
}
