//! Deterministic observability for MAFIC simulation runs.
//!
//! This crate sits *below* `mafic-netsim` in the layering DAG and has no
//! dependencies at all: it defines the vocabulary every other layer uses
//! to describe its own state — a 64-bit FNV-1a hasher ([`Fnv64`]), the
//! [`StateHash`] trait, and the **run ledger**: a build-metadata header
//! plus one chained per-component state hash per monitor interval,
//! exported as JSONL and diffable down to the first diverging interval
//! and component.
//!
//! The ledger exists so a determinism failure is *bisectable*: instead
//! of "whole-run digests differ", the differ answers "interval 17,
//! component `dom3/coord`". Recording is strictly opt-in — when a run
//! does not ask for a ledger nothing in this crate executes on the hot
//! path (one branch per monitor interval, zero per packet).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod diff;
mod fnv;
mod json;
mod ledger;
mod snap;

pub use diff::{diff_ledgers, Divergence, DivergenceReport};
pub use fnv::{fnv64, Fnv64};
pub use json::{parse_json_line, JsonValue};
pub use ledger::{IntervalProbe, IntervalRecord, LedgerBuilder, LedgerHeader, RunLedger};
pub use snap::{
    SnapError, SnapReader, SnapWriter, Snapshot, SnapshotHeader, SnapshotState, SNAP_MAGIC,
    SNAP_VERSION,
};

/// Ledger wire-format version; bump on any incompatible JSONL change.
pub const LEDGER_VERSION: u32 = 1;

/// Anything that can fold its observable state into an FNV hasher.
///
/// Implementations must visit fields in a fixed, documented order and
/// must *exclude* pure caches (memoized lookups that are recomputed from
/// hashed state) and RNG internals (two replays of the same seed carry
/// identical RNG streams, so hashing the stream adds nothing while
/// coupling the ledger to `rand`'s private layout).
pub trait StateHash {
    /// Fold this component's state into `h`.
    fn hash_state(&self, h: &mut Fnv64);
}
