//! Per-requester trust: budgets, replay suppression, and attestation.
//!
//! The cascaded pushback of PR 3 honored any request arriving at a
//! domain boundary — the control plane had no notion of *who* was
//! asking or *how much* they may ask for. The [`TrustLedger`] closes
//! that hole. Every upstream coordinator keeps one; before a
//! [`mafic_netsim::ControlVerb::Request`] (or a fresh-install
//! `Refresh`) touches the filters, the ledger vets it:
//!
//! 1. **Version** — the envelope must carry
//!    [`CONTROL_PROTOCOL_VERSION`]; anything else is
//!    [`DenyReason::BadVersion`].
//! 2. **Authorization** — the (channel-authenticated) requester must be
//!    a *downstream* neighbor on a victim-bound path through this
//!    domain ([`TrustLedger::authorize`], wired at build time from the
//!    topology). Anyone else is [`DenyReason::UntrustedRequester`] —
//!    a source stub cannot "ask" its own provider to cut a victim off.
//! 3. **Replay** — the envelope nonce must advance past the last nonce
//!    accepted from this requester ([`DenyReason::Replayed`]).
//! 4. **Attestation** — the claimed victim-bound aggregate must be
//!    corroborated by this domain's own boundary meter: observed inflow
//!    must reach `attestation_fraction` of the claim. A requester
//!    claiming a flood the upstream does not see — the "victim" is
//!    observed receiving normally — is asking for drops against
//!    legitimate traffic ([`DenyReason::Uncorroborated`]). This is the
//!    defense against *malicious pushback* even from a compromised but
//!    otherwise authorized neighbor.
//! 5. **Budget** — each requester may cause at most `request_budget`
//!    fresh filter installs here ([`DenyReason::BudgetExhausted`]).
//!
//! Checks run in that order, so the cheapest identity failures shadow
//! the stateful ones and every denial maps to exactly one
//! [`DenyReason`].

use mafic_netsim::{Addr, ControlMsg, DenyReason, RequesterId, CONTROL_PROTOCOL_VERSION};
use std::collections::BTreeMap;

/// Tunables of a domain's trust ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustConfig {
    /// Fresh filter installs each requester may cause at this domain
    /// over a run. `0` refuses every install (a domain that never
    /// defends on request).
    pub request_budget: u32,
    /// Fraction of a claimed victim-bound aggregate that this domain's
    /// own meter must corroborate before an install is granted. `0`
    /// disables attestation (the unguarded PR 3 behaviour).
    pub attestation_fraction: f64,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            // Generous next to the one-or-two installs an honest
            // cascade needs, tight next to a spammer.
            request_budget: 8,
            // Tolerates a 4-way split of the aggregate across sibling
            // upstreams (tree fanouts up to 4 stay corroborable).
            attestation_fraction: 0.25,
        }
    }
}

/// Denials issued, tallied by [`DenyReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenyTally {
    /// [`DenyReason::BadVersion`] denials.
    pub bad_version: u64,
    /// [`DenyReason::UntrustedRequester`] denials.
    pub untrusted: u64,
    /// [`DenyReason::Replayed`] denials.
    pub replayed: u64,
    /// [`DenyReason::Uncorroborated`] denials.
    pub uncorroborated: u64,
    /// [`DenyReason::BudgetExhausted`] denials.
    pub budget_exhausted: u64,
}

impl DenyTally {
    /// Total denials across every reason.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bad_version
            + self.untrusted
            + self.replayed
            + self.uncorroborated
            + self.budget_exhausted
    }

    /// Counts one denial for `reason`.
    pub fn count(&mut self, reason: DenyReason) {
        match reason {
            DenyReason::BadVersion => self.bad_version += 1,
            DenyReason::UntrustedRequester => self.untrusted += 1,
            DenyReason::Replayed => self.replayed += 1,
            DenyReason::Uncorroborated => self.uncorroborated += 1,
            DenyReason::BudgetExhausted => self.budget_exhausted += 1,
        }
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &DenyTally) {
        self.bad_version += other.bad_version;
        self.untrusted += other.untrusted;
        self.replayed += other.replayed;
        self.uncorroborated += other.uncorroborated;
        self.budget_exhausted += other.budget_exhausted;
    }
}

/// Per-requester running state.
#[derive(Debug, Clone, Copy, Default)]
struct RequesterState {
    /// Is this requester a downstream neighbor allowed to ask here?
    authorized: bool,
    /// Is this identity one of our *upstream* escalation targets, whose
    /// replies (`Deny`, `Report`) we accept?
    upstream: bool,
    /// Highest nonce accepted from this requester so far.
    last_nonce: u64,
    /// Fresh installs already charged to this requester.
    installs: u32,
}

/// The per-domain trust state over every requester ever heard from.
///
/// Deterministic by construction: a `BTreeMap` keyed by [`RequesterId`]
/// (an address), no ambient hashing.
#[derive(Debug, Clone)]
pub struct TrustLedger {
    config: TrustConfig,
    requesters: BTreeMap<RequesterId, RequesterState>,
    granted_installs: u64,
    denies: DenyTally,
}

impl TrustLedger {
    /// Creates an empty ledger (nobody authorized yet).
    #[must_use]
    pub fn new(config: TrustConfig) -> Self {
        TrustLedger {
            config,
            requesters: BTreeMap::new(),
            granted_installs: 0,
            denies: DenyTally::default(),
        }
    }

    /// Marks `requester` as an authorized downstream neighbor. Wired at
    /// scenario-build time from the inverted escalation topology.
    pub fn authorize(&mut self, requester: RequesterId) {
        self.requesters.entry(requester).or_default().authorized = true;
    }

    /// True if `requester` may ask this domain for drops.
    #[must_use]
    pub fn is_authorized(&self, requester: RequesterId) -> bool {
        self.requesters
            .get(&requester)
            .is_some_and(|s| s.authorized)
    }

    /// Marks `identity` as one of this domain's upstream escalation
    /// targets, whose downstream replies (`Deny`, `Report`) are
    /// believed. Wired at scenario-build time.
    pub fn authorize_upstream(&mut self, identity: RequesterId) {
        self.requesters.entry(identity).or_default().upstream = true;
    }

    /// Tallies a denial decided by the coordinator outside the ledger's
    /// own checks (e.g. a renewal from someone other than the lessor),
    /// so every `Deny` sent stays visible in the denial counters.
    pub fn note_denial(&mut self, reason: DenyReason) {
        self.denies.count(reason);
    }

    /// Vets a downstream-flowing reply (`Deny`, `Report`): protocol
    /// version, sender is a known upstream target, nonce advances.
    /// Failures are tallied but never answered (replying to a reply
    /// invites ping-pong).
    ///
    /// # Errors
    ///
    /// Returns the [`DenyReason`] on failure.
    pub fn vet_upstream(&mut self, msg: &ControlMsg) -> Result<(), DenyReason> {
        self.vet_sender(msg, |state| state.upstream)
    }

    /// Fresh installs granted across all requesters.
    #[must_use]
    pub fn granted_installs(&self) -> u64 {
        self.granted_installs
    }

    /// Denials issued so far, by reason.
    #[must_use]
    pub fn denies(&self) -> &DenyTally {
        &self.denies
    }

    /// Identity-level vetting shared by every verb: version, requester
    /// authorization, nonce monotonicity. Accepting advances the
    /// requester's nonce watermark.
    ///
    /// # Errors
    ///
    /// Returns (and tallies) the [`DenyReason`] on failure.
    pub fn vet_identity(&mut self, msg: &ControlMsg) -> Result<(), DenyReason> {
        self.vet_sender(msg, |state| state.authorized)
    }

    /// The shared sender vetting both directions run through: protocol
    /// version, the direction-specific trust flag selected by
    /// `trusted`, nonce monotonicity (one watermark per sender, shared
    /// across directions). Accepting advances the watermark; failures
    /// are tallied.
    fn vet_sender(
        &mut self,
        msg: &ControlMsg,
        trusted: fn(&RequesterState) -> bool,
    ) -> Result<(), DenyReason> {
        if msg.version != CONTROL_PROTOCOL_VERSION {
            self.denies.count(DenyReason::BadVersion);
            return Err(DenyReason::BadVersion);
        }
        let state = self.requesters.entry(msg.requester).or_default();
        if !trusted(state) {
            self.denies.count(DenyReason::UntrustedRequester);
            return Err(DenyReason::UntrustedRequester);
        }
        if msg.nonce <= state.last_nonce {
            self.denies.count(DenyReason::Replayed);
            return Err(DenyReason::Replayed);
        }
        state.last_nonce = msg.nonce;
        Ok(())
    }

    /// Vets a fresh filter install (a `Request`, or a `Refresh` whose
    /// lease lapsed): identity checks, then attestation, then the
    /// per-requester install budget (charged on success).
    ///
    /// Attestation, with `attestation_fraction > 0`:
    ///
    /// * a `Request` carries `claimed_bps = Some(c)` — denied as
    ///   [`DenyReason::Uncorroborated`] when the claim itself is below
    ///   `floor_bps` (by the requester's own numbers the victim is
    ///   receiving normal traffic, so drops are unwarranted) or when
    ///   the domain's own `inflow_bps` does not reach
    ///   `attestation_fraction × c` (the claim is not corroborated
    ///   locally);
    /// * a fresh-install `Refresh` carries no claim
    ///   (`claimed_bps = None`) — denied unless `inflow_bps` itself
    ///   reaches `floor_bps` (a locally observed attack-scale
    ///   aggregate), so the refresh path cannot be used to smuggle an
    ///   install past attestation.
    ///
    /// `floor_bps` is the domain's own escalation threshold.
    ///
    /// # Errors
    ///
    /// Returns (and tallies) the [`DenyReason`] on failure.
    pub fn vet_install(
        &mut self,
        msg: &ControlMsg,
        claimed_bps: Option<f64>,
        floor_bps: f64,
        inflow_bps: f64,
    ) -> Result<(), DenyReason> {
        self.vet_identity(msg)?;
        if self.config.attestation_fraction > 0.0 {
            let corroborated = match claimed_bps {
                Some(claimed) => {
                    claimed >= floor_bps && inflow_bps >= self.config.attestation_fraction * claimed
                }
                None => inflow_bps >= floor_bps,
            };
            if !corroborated {
                self.denies.count(DenyReason::Uncorroborated);
                return Err(DenyReason::Uncorroborated);
            }
        }
        let state = self
            .requesters
            .get_mut(&msg.requester)
            .expect("vet_identity inserted the requester");
        if state.installs >= self.config.request_budget {
            self.denies.count(DenyReason::BudgetExhausted);
            return Err(DenyReason::BudgetExhausted);
        }
        state.installs += 1;
        self.granted_installs += 1;
        Ok(())
    }
}

impl mafic_obs::StateHash for DenyTally {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u64(self.bad_version);
        h.write_u64(self.untrusted);
        h.write_u64(self.replayed);
        h.write_u64(self.uncorroborated);
        h.write_u64(self.budget_exhausted);
    }
}

impl mafic_obs::StateHash for TrustLedger {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u32(self.config.request_budget);
        h.write_f64(self.config.attestation_fraction);
        h.write_u64(self.granted_installs);
        self.denies.hash_state(h);
        h.write_usize(self.requesters.len());
        // BTreeMap iterates in sorted RequesterId order — deterministic.
        for (id, state) in &self.requesters {
            h.write_u32(id.addr().as_u32());
            h.write_bool(state.authorized);
            h.write_bool(state.upstream);
            h.write_u64(state.last_nonce);
            h.write_u32(state.installs);
        }
    }
}

impl mafic_obs::SnapshotState for TrustLedger {
    /// Serializes the requester table wholesale. The `authorized` and
    /// `upstream` flags are build-time wiring, but they live in the
    /// same map entries as the mutable nonce/install state, so the
    /// whole entry is carried and the restored table is byte-equal to
    /// the captured one.
    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        w.write_usize(self.requesters.len());
        for (id, state) in &self.requesters {
            w.write_u32(id.addr().as_u32());
            w.write_bool(state.authorized);
            w.write_bool(state.upstream);
            w.write_u64(state.last_nonce);
            w.write_u32(state.installs);
        }
        w.write_u64(self.granted_installs);
        w.write_u64(self.denies.bad_version);
        w.write_u64(self.denies.untrusted);
        w.write_u64(self.denies.replayed);
        w.write_u64(self.denies.uncorroborated);
        w.write_u64(self.denies.budget_exhausted);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        let n = r.read_usize()?;
        self.requesters = BTreeMap::new();
        for _ in 0..n {
            let id = RequesterId::new(Addr::new(r.read_u32()?));
            let state = RequesterState {
                authorized: r.read_bool()?,
                upstream: r.read_bool()?,
                last_nonce: r.read_u64()?,
                installs: r.read_u32()?,
            };
            self.requesters.insert(id, state);
        }
        self.granted_installs = r.read_u64()?;
        self.denies.bad_version = r.read_u64()?;
        self.denies.untrusted = r.read_u64()?;
        self.denies.replayed = r.read_u64()?;
        self.denies.uncorroborated = r.read_u64()?;
        self.denies.budget_exhausted = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::{Addr, ControlVerb};

    const VICTIM: Addr = Addr::new(0x0AC8_0001);

    fn requester() -> RequesterId {
        RequesterId::new(Addr::new(0x0BFA_0001))
    }

    fn request(nonce: u64, aggregate_bps: u64) -> ControlMsg {
        ControlMsg::new(
            requester(),
            nonce,
            ControlVerb::Request {
                victim: VICTIM,
                aggregate_bps,
                budget: 2,
            },
        )
    }

    fn ledger(budget: u32, fraction: f64) -> TrustLedger {
        let mut l = TrustLedger::new(TrustConfig {
            request_budget: budget,
            attestation_fraction: fraction,
        });
        l.authorize(requester());
        l
    }

    /// Floor used across these tests: the default escalation threshold.
    const FLOOR: f64 = 312_500.0;

    #[test]
    fn authorized_corroborated_request_is_granted_and_charged() {
        let mut l = ledger(2, 0.25);
        assert_eq!(
            l.vet_install(&request(1, 1_000_000), Some(1e6), FLOOR, 800_000.0),
            Ok(())
        );
        assert_eq!(l.granted_installs(), 1);
        assert_eq!(l.denies().total(), 0);
    }

    #[test]
    fn unknown_requester_is_untrusted() {
        let mut l = TrustLedger::new(TrustConfig::default());
        let err = l.vet_install(&request(1, 1_000_000), Some(1e6), FLOOR, 1e9);
        assert_eq!(err, Err(DenyReason::UntrustedRequester));
        assert_eq!(l.denies().untrusted, 1);
        assert_eq!(l.granted_installs(), 0);
    }

    #[test]
    fn wrong_version_is_denied_before_anything_else() {
        let mut l = ledger(8, 0.0);
        let mut msg = request(1, 0);
        msg.version = 1;
        assert_eq!(l.vet_identity(&msg), Err(DenyReason::BadVersion));
        assert_eq!(l.denies().bad_version, 1);
    }

    #[test]
    fn nonces_must_advance() {
        let mut l = ledger(8, 0.0);
        assert!(l.vet_identity(&request(5, 0)).is_ok());
        assert_eq!(l.vet_identity(&request(5, 0)), Err(DenyReason::Replayed));
        assert_eq!(l.vet_identity(&request(4, 0)), Err(DenyReason::Replayed));
        assert!(l.vet_identity(&request(6, 0)).is_ok());
        assert_eq!(l.denies().replayed, 2);
    }

    #[test]
    fn uncorroborated_claim_is_denied_without_charging_budget() {
        let mut l = ledger(2, 0.25);
        // Claims 8 MB/s; the meter sees 400 kB/s of normal traffic.
        let err = l.vet_install(&request(1, 8_000_000), Some(8e6), FLOOR, 400_000.0);
        assert_eq!(err, Err(DenyReason::Uncorroborated));
        assert_eq!(l.denies().uncorroborated, 1);
        // The budget is untouched: a later honest request still fits.
        assert_eq!(
            l.vet_install(&request(2, 1_000_000), Some(1e6), FLOOR, 900_000.0),
            Ok(())
        );
    }

    #[test]
    fn sub_floor_claims_are_denied_even_when_truthful() {
        // A malicious requester cannot dodge attestation by truthfully
        // claiming the victim's (small, legitimate) aggregate: claims
        // below the attack-scale floor are unwarranted by definition.
        let mut l = ledger(2, 0.25);
        let err = l.vet_install(&request(1, 100_000), Some(1e5), FLOOR, 1e5);
        assert_eq!(err, Err(DenyReason::Uncorroborated));
    }

    #[test]
    fn refresh_installs_need_locally_observed_attack_scale() {
        let mut l = ledger(2, 0.25);
        // No claim (fresh install from a Refresh): local inflow below
        // the floor is denied, at or above the floor is granted.
        let err = l.vet_install(&request(1, 0), None, FLOOR, FLOOR * 0.5);
        assert_eq!(err, Err(DenyReason::Uncorroborated));
        assert_eq!(
            l.vet_install(&request(2, 0), None, FLOOR, FLOOR * 2.0),
            Ok(())
        );
    }

    #[test]
    fn zero_fraction_disables_attestation() {
        let mut l = ledger(2, 0.0);
        assert_eq!(
            l.vet_install(&request(1, 8_000_000), Some(8e6), FLOOR, 0.0),
            Ok(())
        );
    }

    #[test]
    fn budget_exhaustion_denies_further_installs() {
        let mut l = ledger(1, 0.0);
        assert!(l.vet_install(&request(1, 0), Some(0.0), FLOOR, 0.0).is_ok());
        let err = l.vet_install(&request(2, 0), Some(0.0), FLOOR, 0.0);
        assert_eq!(err, Err(DenyReason::BudgetExhausted));
        assert_eq!(l.denies().budget_exhausted, 1);
        assert_eq!(l.granted_installs(), 1);
    }

    #[test]
    fn budgets_are_per_requester() {
        let other = RequesterId::new(Addr::new(0x0CFA_0001));
        let mut l = ledger(1, 0.0);
        l.authorize(other);
        assert!(l.vet_install(&request(1, 0), Some(0.0), FLOOR, 0.0).is_ok());
        let from_other = ControlMsg::new(
            other,
            1,
            ControlVerb::Request {
                victim: VICTIM,
                aggregate_bps: 0,
                budget: 0,
            },
        );
        assert!(l.vet_install(&from_other, Some(0.0), FLOOR, 0.0).is_ok());
        assert_eq!(l.granted_installs(), 2);
    }

    #[test]
    fn upstream_replies_are_vetted_separately_from_requesters() {
        let upstream = RequesterId::new(Addr::new(0x0DFA_0001));
        let mut l = ledger(1, 0.0);
        l.authorize_upstream(upstream);
        let reply = |nonce| {
            ControlMsg::new(
                upstream,
                nonce,
                ControlVerb::Report {
                    victim: VICTIM,
                    aggregate_bps: 0,
                },
            )
        };
        assert_eq!(l.vet_upstream(&reply(1)), Ok(()));
        assert_eq!(l.vet_upstream(&reply(1)), Err(DenyReason::Replayed));
        // A downstream-authorized requester is not an upstream.
        let from_requester = ControlMsg::new(
            requester(),
            7,
            ControlVerb::Report {
                victim: VICTIM,
                aggregate_bps: 0,
            },
        );
        assert_eq!(
            l.vet_upstream(&from_requester),
            Err(DenyReason::UntrustedRequester)
        );
    }

    #[test]
    fn tally_totals_and_merges() {
        let mut a = DenyTally::default();
        a.count(DenyReason::BadVersion);
        a.count(DenyReason::BudgetExhausted);
        let mut b = DenyTally::default();
        b.count(DenyReason::Uncorroborated);
        b.merge(&a);
        assert_eq!(b.total(), 3);
        assert_eq!(b.bad_version, 1);
        assert_eq!(b.uncorroborated, 1);
    }

    #[test]
    fn snapshot_round_trips_nonces_installs_and_tallies() {
        use mafic_obs::{SnapshotState, StateHash};
        let mut l = TrustLedger::new(TrustConfig::default());
        l.authorize(requester());
        // A granted install advances the nonce, the install count, and
        // the grant counter; a replay bumps the deny tally.
        assert_eq!(
            l.vet_install(&request(1, 10_000), None, 1000.0, 9000.0),
            Ok(())
        );
        assert_eq!(
            l.vet_install(&request(1, 10_000), None, 1000.0, 9000.0),
            Err(DenyReason::Replayed)
        );
        let mut w = mafic_obs::SnapWriter::new();
        l.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = TrustLedger::new(TrustConfig::default());
        restored.authorize(requester());
        let mut r = mafic_obs::SnapReader::new(&bytes);
        restored.snap_restore(&mut r).expect("restore succeeds");
        assert!(r.is_empty());
        let digest = |l: &TrustLedger| {
            let mut h = mafic_obs::Fnv64::new();
            l.hash_state(&mut h);
            h.finish()
        };
        assert_eq!(digest(&l), digest(&restored));
        // Replay protection survives the round trip.
        assert_eq!(
            restored.vet_install(&request(1, 10_000), None, 1000.0, 9000.0),
            Err(DenyReason::Replayed)
        );
        assert_eq!(
            restored.vet_install(&request(2, 10_000), None, 1000.0, 9000.0),
            Ok(())
        );
    }
}
