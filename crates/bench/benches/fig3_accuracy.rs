//! Fig. 3 bench: the accuracy measurement under the three drop
//! probabilities (panel a) and the three source rates (panel b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mafic_bench::bench_spec;
use mafic_workload::{run_spec, NominalRate, ScenarioSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_accuracy");
    group.sample_size(10);
    for pd in [0.7, 0.8, 0.9] {
        group.bench_with_input(BenchmarkId::new("panel_a_pd", pd), &pd, |b, &pd| {
            b.iter(|| {
                let outcome = run_spec(ScenarioSpec {
                    drop_probability: pd,
                    ..bench_spec()
                })
                .expect("run");
                assert!(outcome.report.accuracy_pct > 90.0);
            });
        });
    }
    for rate in [NominalRate::R100k, NominalRate::R500k, NominalRate::R1M] {
        group.bench_with_input(
            BenchmarkId::new("panel_b_rate", rate.label()),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    run_spec(ScenarioSpec {
                        flow_rate_pps: rate.pps(),
                        ..bench_spec()
                    })
                    .expect("run")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
