//! Per-router sketch pairs for the set-union counting pushback technique.
//!
//! Every router `R_i` in the protected domain keeps two sketches:
//!
//! * `S_i` — distinct packets that *enter* the domain through `R_i`
//!   (the router is the packet's ingress), and
//! * `D_i` — distinct packets that *leave* the domain through `R_i`
//!   (the router is the packet's egress / last hop).
//!
//! Each packet is identified by a domain-unique 64-bit id (in the MAFIC
//! simulator the packet id; in a deployment an invariant header digest).
//! The traffic-matrix entry `a_ij` then follows from inclusion–exclusion
//! over max-merged sketches — see [`crate::matrix::TrafficMatrix`].

use crate::loglog::{LogLog, Precision, SketchError};

/// The `(S_i, D_i)` sketch pair a single router maintains.
///
/// # Example
///
/// ```
/// use mafic_loglog::{RouterSketch, Precision};
///
/// let mut ingress = RouterSketch::new(Precision::P10);
/// let mut egress = RouterSketch::new(Precision::P10);
/// for packet_id in 0u64..5_000 {
///     ingress.record_source(packet_id);
///     egress.record_destination(packet_id);
/// }
/// let a = ingress.flow_estimate(&egress).unwrap();
/// assert!((a - 5_000.0).abs() / 5_000.0 < 0.3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouterSketch {
    source: LogLog,
    destination: LogLog,
}

impl RouterSketch {
    /// Creates an empty sketch pair at the given precision.
    #[must_use]
    pub fn new(precision: Precision) -> Self {
        RouterSketch {
            source: LogLog::new(precision),
            destination: LogLog::new(precision),
        }
    }

    /// Records a packet injected into the domain at this router (`S_i`).
    pub fn record_source(&mut self, packet_id: u64) {
        self.source.insert_u64(packet_id);
    }

    /// Records a packet leaving the domain at this router (`D_i`).
    pub fn record_destination(&mut self, packet_id: u64) {
        self.destination.insert_u64(packet_id);
    }

    /// Estimated `|S_i|` — distinct packets injected here.
    #[must_use]
    pub fn source_cardinality(&self) -> f64 {
        self.source.estimate()
    }

    /// Estimated `|D_i|` — distinct packets delivered here.
    #[must_use]
    pub fn destination_cardinality(&self) -> f64 {
        self.destination.estimate()
    }

    /// The raw source sketch (for the distributed max-merge protocol).
    #[must_use]
    pub fn source_sketch(&self) -> &LogLog {
        &self.source
    }

    /// The raw destination sketch.
    #[must_use]
    pub fn destination_sketch(&self) -> &LogLog {
        &self.destination
    }

    /// Mutable access to the source sketch (checkpoint restore).
    pub fn source_sketch_mut(&mut self) -> &mut LogLog {
        &mut self.source
    }

    /// Mutable access to the destination sketch (checkpoint restore).
    pub fn destination_sketch_mut(&mut self) -> &mut LogLog {
        &mut self.destination
    }

    /// Estimates `a_ij = |S_i ∩ D_j|`: the number of distinct packets that
    /// entered at `self` and left at `egress`.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError`] on precision mismatch.
    pub fn flow_estimate(&self, egress: &RouterSketch) -> Result<f64, SketchError> {
        self.source.intersection_estimate(&egress.destination)
    }

    /// Clears both sketches (pushback epoch rollover).
    pub fn clear(&mut self) {
        self.source.clear();
        self.destination.clear();
    }

    /// True if neither sketch has seen a packet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.source.is_empty() && self.destination.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let s = RouterSketch::new(Precision::P8);
        assert!(s.is_empty());
        assert_eq!(s.source_cardinality(), 0.0);
        assert_eq!(s.destination_cardinality(), 0.0);
    }

    #[test]
    fn disjoint_routers_have_near_zero_flow() {
        let mut i = RouterSketch::new(Precision::P12);
        let mut e = RouterSketch::new(Precision::P12);
        for id in 0u64..20_000 {
            i.record_source(id);
        }
        for id in 100_000u64..120_000 {
            e.record_destination(id);
        }
        let a = i.flow_estimate(&e).unwrap();
        // Truth is 0; sketch noise scales with |union| ≈ 40k at ~2% error.
        assert!(a < 4_000.0, "flow estimate {a} for disjoint sets");
    }

    #[test]
    fn full_overlap_flow_estimate() {
        let mut i = RouterSketch::new(Precision::P12);
        let mut e = RouterSketch::new(Precision::P12);
        for id in 0u64..30_000 {
            i.record_source(id);
            e.record_destination(id);
        }
        let a = i.flow_estimate(&e).unwrap();
        assert!((a - 30_000.0).abs() / 30_000.0 < 0.3, "flow {a}");
    }

    #[test]
    fn partial_overlap_is_monotone_in_truth() {
        // More true overlap should give a larger estimate, comparing
        // 25% overlap against 75% overlap at the same sizes.
        let build = |overlap: u64| {
            let mut i = RouterSketch::new(Precision::P12);
            let mut e = RouterSketch::new(Precision::P12);
            for id in 0u64..20_000 {
                i.record_source(id);
            }
            for id in (20_000 - overlap)..(40_000 - overlap) {
                e.record_destination(id);
            }
            i.flow_estimate(&e).unwrap()
        };
        let small = build(5_000);
        let large = build(15_000);
        assert!(
            large > small,
            "estimates not monotone: 15k-overlap={large} 5k-overlap={small}"
        );
    }

    #[test]
    fn clear_empties_both() {
        let mut s = RouterSketch::new(Precision::P8);
        s.record_source(1);
        s.record_destination(2);
        s.clear();
        assert!(s.is_empty());
    }
}
