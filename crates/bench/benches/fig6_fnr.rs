//! Fig. 6 bench: false-negative measurement across the three sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mafic_bench::{bench_spec, bench_spec_with_vt};
use mafic_workload::{run_spec, ScenarioSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_false_negative");
    group.sample_size(10);
    for vt in [10usize, 20, 30] {
        group.bench_with_input(BenchmarkId::new("panel_a_vt", vt), &vt, |b, &vt| {
            b.iter(|| {
                let outcome = run_spec(bench_spec_with_vt(vt)).expect("run");
                assert!(outcome.report.false_negative_pct < 10.0);
            });
        });
    }
    for gamma in [0.55, 0.75, 0.95] {
        group.bench_with_input(
            BenchmarkId::new("panel_b_gamma", format!("{:.0}", gamma * 100.0)),
            &gamma,
            |b, &gamma| {
                b.iter(|| {
                    run_spec(ScenarioSpec {
                        tcp_share: gamma,
                        ..bench_spec()
                    })
                    .expect("run")
                });
            },
        );
    }
    for n in [6usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("panel_c_routers", n), &n, |b, &n| {
            b.iter(|| {
                run_spec(ScenarioSpec {
                    n_routers: n,
                    ..bench_spec()
                })
                .expect("run")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
