//! Determinism replay tests: the contract the interned-FlowId data path
//! and the timer wheel must uphold.
//!
//! The simulator promises that identical `ScenarioSpec` + seed replay the
//! exact same event sequence. These tests pin that down at the coarsest
//! observable level — byte-identical digests of the full run output —
//! so any accidental reintroduction of iteration-order or hasher-state
//! dependence fails loudly. Runs record a [`mafic_suite::obs::RunLedger`]
//! so a failure names the first diverging interval and component instead
//! of dumping two multi-kilobyte digests.

use mafic_suite::netsim::SimTime;
use mafic_suite::obs::diff_ledgers;
use mafic_suite::workload::{run_spec, RunOutcome, ScenarioSpec};

fn spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 14,
        n_routers: 7,
        end: SimTime::from_secs_f64(3.0),
        ledger: true,
        trace_capacity: 64,
        seed,
        ..ScenarioSpec::default()
    }
}

/// Serializes everything a run produces into one digest string. `Debug`
/// formatting is stable for a fixed build, so byte equality of digests
/// means the runs were observably identical.
fn digest(outcome: &RunOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:?}\n", outcome.report));
    out.push_str(&format!("{:?}\n", outcome.triggered_at));
    out.push_str(&format!("{:?}\n", outcome.atr_nodes));
    out.push_str(&format!(
        "sent={} delivered={}\n",
        outcome.packets_sent, outcome.packets_delivered
    ));
    for p in &outcome.series {
        out.push_str(&format!("{p:?}\n"));
    }
    for p in &outcome.goodput_series {
        out.push_str(&format!("{p:?}\n"));
    }
    out
}

/// Asserts two runs replayed identically; on mismatch, panics with the
/// ledger differ's report (first diverging interval + component) rather
/// than raw digest soup.
fn assert_replay(a: &RunOutcome, b: &RunOutcome) {
    let (la, lb) = (
        a.ledger.as_ref().expect("ledger on"),
        b.ledger.as_ref().expect("ledger on"),
    );
    let report = diff_ledgers(la, lb);
    assert!(
        report.is_identical(),
        "replay diverged:\n{report}\ntrace tail (run a):\n{}",
        a.trace_tail.join("\n")
    );
    assert_eq!(
        la.to_jsonl(),
        lb.to_jsonl(),
        "ledgers must serialize byte-identically"
    );
    assert_eq!(digest(a), digest(b), "replays must be byte-identical");
}

#[test]
fn identical_spec_and_seed_replay_byte_identically() {
    let a = run_spec(spec(1)).expect("run a");
    let b = run_spec(spec(1)).expect("run b");
    assert_replay(&a, &b);
}

#[test]
fn two_consecutive_replays_of_a_second_seed_also_match() {
    // The acceptance bar asks for the replay to hold on consecutive runs;
    // a second seed guards against a fluke of one particular schedule.
    let a = run_spec(spec(77)).expect("run a");
    let b = run_spec(spec(77)).expect("run b");
    assert_replay(&a, &b);
}

#[test]
fn different_seeds_differ() {
    let a = run_spec(spec(1)).expect("run a");
    let b = run_spec(spec(2)).expect("run b");
    assert_ne!(digest(&a), digest(&b), "seed must perturb the run");
    // The differ must *name* the divergence, not just detect it.
    let report = diff_ledgers(a.ledger.as_ref().unwrap(), b.ledger.as_ref().unwrap());
    assert!(!report.is_identical(), "perturbed seed must diverge");
    let text = report.to_string();
    assert!(
        text.contains("interval") && text.contains("component"),
        "report must name interval and component: {text}"
    );
}

/// The event-loop accounting itself (processed/scheduled counts, final
/// clock) replays identically — a tighter probe into the merged
/// heap + timer-wheel loop than the report digest.
#[test]
fn run_summary_accounting_replays_identically() {
    use mafic_suite::workload::Scenario;

    let run = |seed: u64| {
        let mut scenario = Scenario::build(spec(seed)).expect("build");
        let summary = scenario.sim.run_until(SimTime::from_secs_f64(3.0));
        (
            summary.events_processed,
            summary.events_scheduled,
            summary.ended_at_nanos,
            scenario.sim.flow_interner().len(),
        )
    };
    assert_eq!(run(5), run(5));
}
