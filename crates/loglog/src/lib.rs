//! # mafic-loglog
//!
//! Cardinality sketches and set-union traffic-matrix estimation used by the
//! MAFIC pushback pipeline.
//!
//! The MAFIC paper (Chen, Kwok, Hwang, ICDCSW 2005) identifies *Attack
//! Transit Routers* (ATRs) with the set-union counting technique of its
//! companion report: every router keeps a [`LogLog`] sketch of the distinct
//! packets it injects into the domain (`S_i`) and of the distinct packets
//! that leave the domain through it (`D_j`). Because LogLog registers are
//! max-merged, the union cardinality `|S_i ∪ D_j|` is computable without any
//! extra per-packet state, and the traffic matrix follows from the
//! inclusion–exclusion identity
//!
//! ```text
//! a_ij = |S_i ∩ D_j| = |S_i| + |D_j| − |S_i ∪ D_j|
//! ```
//!
//! This crate provides:
//!
//! * [`LogLog`] — the Durand–Flajolet LogLog counter (`O(log log n)` space),
//! * [`HyperLogLog`] — the harmonic-mean variant, used by the ablation
//!   benchmarks to quantify the accuracy/memory trade-off,
//! * [`RouterSketch`] — the per-router `(S, D)` pair,
//! * [`TrafficMatrix`] — the estimated `a_ij` matrix with victim detection
//!   and ATR identification ([`AtrReport`]),
//! * [`hash`] — the 64-bit mixing/hashing helpers shared across the
//!   workspace.
//!
//! # Example
//!
//! ```
//! use mafic_loglog::{LogLog, Precision};
//!
//! let mut sketch = LogLog::new(Precision::P10);
//! for packet_id in 0u64..50_000 {
//!     sketch.insert_u64(packet_id);
//! }
//! let estimate = sketch.estimate();
//! let err = (estimate - 50_000.0).abs() / 50_000.0;
//! assert!(err < 0.10, "LogLog estimate off by {err}");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod detector;
pub mod hash;
pub mod hyperloglog;
pub mod loglog;
pub mod matrix;
pub mod setunion;

pub use detector::{AtrReport, DetectorConfig, VictimDetector, VictimVerdict};
pub use hyperloglog::HyperLogLog;
pub use loglog::{LogLog, Precision, SketchError};
pub use matrix::{RouterSketchId, TrafficMatrix};
pub use setunion::RouterSketch;
