//! Regenerates Fig. 9: partial deployment of heterogeneous per-domain
//! defenses. One participation-fraction × transit-policy sweep feeds
//! both panels; a third section reports what each policy costs the
//! routers that run it (table state, timer events) at full
//! participation.

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    if let Err(e) = run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(cfg: &EngineConfig) -> Result<(), String> {
    let sweeps = figures::sweep_partial_deployment(cfg)?;
    println!("{}", figures::fig9a_from_sweep(&sweeps));
    println!("{}", figures::fig9b_from_sweep(&sweeps));
    print!("{}", figures::fig9_cost_summary(cfg)?);
    Ok(())
}
