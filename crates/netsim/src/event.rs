//! The event scheduler.
//!
//! A binary heap of `(time, sequence)` keyed events. The monotonically
//! increasing sequence number breaks ties deterministically: two events
//! scheduled for the same instant fire in the order they were scheduled,
//! which keeps whole-simulation replays bit-identical for a given seed.

use crate::ids::{AgentId, LinkId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Control-plane message delivered to a node's filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterControl {
    /// Activate defense dropping for traffic destined to `victim`.
    PushbackStart {
        /// Address of the victim host under attack.
        victim: crate::ids::Addr,
    },
    /// Deactivate defense dropping and flush all tables.
    PushbackStop,
}

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A packet finishes propagating and arrives at `node`.
    DeliverToNode {
        /// Receiving node.
        node: NodeId,
        /// The packet, by value.
        packet: Packet,
        /// The link it arrived on (`None` for locally injected packets).
        via: Option<LinkId>,
    },
    /// A link finishes serializing its current packet.
    LinkTxDone {
        /// The transmitting link.
        link: LinkId,
    },
    /// Wake an agent's timer.
    AgentWake {
        /// The agent to wake.
        agent: AgentId,
        /// Caller-chosen token identifying which timer fired.
        token: u64,
    },
    /// Start an agent (first activation).
    AgentStart {
        /// The agent to start.
        agent: AgentId,
    },
    /// Wake a packet filter's timer.
    FilterTimer {
        /// Node hosting the filter.
        node: NodeId,
        /// Index of the filter within the node's filter chain.
        filter_index: usize,
        /// Caller-chosen token.
        token: u64,
    },
    /// Deliver a control-plane message to every filter on `node`.
    Control {
        /// Receiving node.
        node: NodeId,
        /// The message.
        msg: FilterControl,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic event queue ordered by `(time, insertion sequence)`.
#[derive(Debug, Default)]
pub(crate) struct Scheduler {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    scheduled_total: u64,
}

impl Scheduler {
    pub(crate) fn new() -> Self {
        Scheduler::default()
    }

    /// Schedules `kind` to fire at `at`.
    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    /// Removes and returns the earliest event, if any.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|s| (s.at, s.kind))
    }

    /// The timestamp of the next event without removing it.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub(crate) fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn wake(agent: u32, token: u64) -> EventKind {
        EventKind::AgentWake {
            agent: AgentId(agent),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        let t1 = SimTime::ZERO + SimDuration::from_millis(10);
        let t2 = SimTime::ZERO + SimDuration::from_millis(5);
        s.schedule(t1, wake(0, 1));
        s.schedule(t2, wake(0, 2));
        assert_eq!(s.pop().unwrap().0, t2);
        assert_eq!(s.pop().unwrap().0, t1);
        assert!(s.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for token in 0..100 {
            s.schedule(t, wake(0, token));
        }
        for expect in 0..100 {
            match s.pop().unwrap().1 {
                EventKind::AgentWake { token, .. } => assert_eq!(token, expect),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn counters_track_activity() {
        let mut s = Scheduler::new();
        assert_eq!(s.len(), 0);
        s.schedule(SimTime::ZERO, wake(0, 0));
        s.schedule(SimTime::ZERO, wake(0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.scheduled_total(), 2);
        assert_eq!(s.peek_time(), Some(SimTime::ZERO));
        let _ = s.pop();
        assert_eq!(s.len(), 1);
        assert_eq!(s.scheduled_total(), 2);
    }
}
