//! Regenerates Fig. 5(a)–(c): false positive rates.

use mafic_experiments::{figures, trial_count};

fn main() {
    let trials = trial_count();
    for result in [
        figures::fig5a(trials),
        figures::fig5b(trials),
        figures::fig5c(trials),
    ] {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
