//! The workload error type.
//!
//! Everything below the workload layer reports errors as plain strings
//! (field-naming messages from validators and builders). The workload
//! boundary is where callers start to care *which stage* failed — a bad
//! spec is a caller bug, a topology failure is a builder bug, a
//! detection failure is a pipeline bug — so [`WorkloadError`] wraps the
//! strings into a typed, `std::error::Error`-implementing enum.

use mafic_obs::SnapError;
use std::fmt;

/// Why a scenario could not be built or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The [`crate::ScenarioSpec`] failed validation.
    Spec(String),
    /// The domain / internet topology could not be built.
    Topology(String),
    /// The detection pipeline (detector config, traffic-matrix
    /// estimation) failed.
    Detection(String),
    /// A checkpoint snapshot failed to decode, matched the wrong run
    /// identity, or produced a state-hash mismatch on restore.
    Snapshot(SnapError),
    /// Anything else, converted from a plain string.
    Other(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Spec(msg) => write!(f, "invalid scenario spec: {msg}"),
            WorkloadError::Topology(msg) => write!(f, "topology build failed: {msg}"),
            WorkloadError::Detection(msg) => write!(f, "detection pipeline failed: {msg}"),
            WorkloadError::Snapshot(e) => write!(f, "snapshot restore failed: {e}"),
            WorkloadError::Other(msg) => f.write_str(msg),
        }
    }
}

/// Snapshot decode/restore failures carry their typed cause.
impl From<SnapError> for WorkloadError {
    fn from(e: SnapError) -> Self {
        WorkloadError::Snapshot(e)
    }
}

impl std::error::Error for WorkloadError {}

/// Shim for call sites that still produce bare strings.
impl From<String> for WorkloadError {
    fn from(msg: String) -> Self {
        WorkloadError::Other(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stage() {
        assert_eq!(
            WorkloadError::Spec("total_flows must be >= 1".into()).to_string(),
            "invalid scenario spec: total_flows must be >= 1"
        );
        assert!(WorkloadError::Topology("x".into())
            .to_string()
            .contains("topology"));
        assert!(WorkloadError::Detection("x".into())
            .to_string()
            .contains("detection"));
    }

    #[test]
    fn implements_error_and_from_string() {
        fn takes_error(_e: &dyn std::error::Error) {}
        let e: WorkloadError = String::from("boom").into();
        assert_eq!(e, WorkloadError::Other("boom".into()));
        takes_error(&e);
    }
}
