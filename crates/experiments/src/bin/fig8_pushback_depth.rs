//! Regenerates Fig. 8: inter-domain pushback depth vs residual attack
//! rate at the victim and collateral damage. One depth sweep feeds both
//! panels. `MAFIC_WARM_SWEEP=1` branches the sweep from a shared-prefix
//! checkpoint instead of running every cell cold — the output is
//! byte-identical either way (pinned by `tests/checkpoint.rs`).

use mafic_experiments::{figures, warm_sweep_from_env_or_exit, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    let sweeps = if warm_sweep_from_env_or_exit() {
        figures::sweep_pushback_depth_warm(&cfg)
    } else {
        figures::sweep_pushback_depth(&cfg)
    };
    match sweeps {
        Ok(sweeps) => {
            println!("{}", figures::fig8a_from_sweep(&sweeps));
            println!("{}", figures::fig8b_from_sweep(&sweeps));
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
