//! Regenerates Tables I and II plus a measured default-configuration run.

fn main() {
    print!("{}", mafic_experiments::tables::table_i());
    println!();
    print!("{}", mafic_experiments::tables::table_ii());
    println!();
    match mafic_experiments::tables::default_run_summary() {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
