//! # mafic-transport
//!
//! Transport-layer agents for the MAFIC network simulator: the traffic
//! sources and sinks whose reaction (or non-reaction) to packet loss is
//! what MAFIC's probing discriminates on.
//!
//! * [`TcpSender`] / [`TcpSink`] — a Reno-style TCP pair: slow start,
//!   congestion avoidance, fast retransmit on three duplicate ACKs, RTO
//!   with backoff, and timestamp echoing. A compliant sender halves its
//!   window on a MAFIC probe burst, making its arrival rate drop within
//!   one RTT — the signature of a "nice" flow.
//! * [`UnresponsiveSender`] — constant-rate UDP or TCP-looking senders
//!   that ignore all feedback: the attack zombies (and the occasional
//!   legitimate-but-unresponsive source whose collateral cost the paper
//!   accepts).
//! * [`RttEstimator`] — Jacobson/Karels RTT smoothing shared by the TCP
//!   machinery.
//!
//! # Example
//!
//! ```
//! use mafic_transport::{TcpConfig, TcpSender};
//! use mafic_netsim::{Addr, FlowKey};
//!
//! let key = FlowKey::new(
//!     Addr::from_octets(10, 0, 0, 1),
//!     Addr::from_octets(10, 9, 0, 1),
//!     5000,
//!     80,
//! );
//! let sender = TcpSender::new(key, TcpConfig::default(), false);
//! assert_eq!(sender.cwnd(), 2.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod cbr;
pub mod pulse;
pub mod rtt;
pub mod sink;
pub mod tcp;
pub mod victim;

pub use cbr::{CbrConfig, CbrProtocol, UnresponsiveSender};
pub use pulse::{PulseConfig, PulsedSender};
pub use rtt::RttEstimator;
pub use sink::TcpSink;
pub use tcp::{TcpConfig, TcpPhase, TcpSender};
pub use victim::VictimSink;
