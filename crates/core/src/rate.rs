//! Per-flow arrival-rate tracking.
//!
//! MAFIC's classification hinges on one question: did a flow's arrival
//! rate at the router *decrease* after the probe? The tracker keeps a
//! short sliding window of arrival timestamps per flow label ("Update
//! arriving Packet Counting" in the paper's Figure 2) and answers rate
//! queries over arbitrary sub-windows — the rate just before the probe
//! (baseline) and the rate just before the 2×RTT deadline.

use crate::label::FlowLabel;
use mafic_netsim::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Sliding-window arrival recorder for all victim-bound flows at one
/// router.
#[derive(Debug)]
pub struct ArrivalTracker {
    horizon: SimDuration,
    max_flows: usize,
    flows: HashMap<FlowLabel, VecDeque<SimTime>>,
}

impl ArrivalTracker {
    /// Creates a tracker that retains arrivals for `horizon` and at most
    /// `max_flows` flows (oldest-touched flows are evicted beyond that).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or `max_flows` is zero.
    #[must_use]
    pub fn new(horizon: SimDuration, max_flows: usize) -> Self {
        assert!(!horizon.is_zero(), "horizon must be positive");
        assert!(max_flows > 0, "max_flows must be positive");
        ArrivalTracker {
            horizon,
            max_flows,
            flows: HashMap::new(),
        }
    }

    /// Records one arrival of `label` at `now`.
    pub fn record(&mut self, label: FlowLabel, now: SimTime) {
        if self.flows.len() >= self.max_flows && !self.flows.contains_key(&label) {
            self.evict_stalest(now);
        }
        let q = self.flows.entry(label).or_default();
        q.push_back(now);
        // Prune beyond the horizon.
        let cutoff = now.saturating_since(SimTime::ZERO);
        let keep_from = if cutoff > self.horizon {
            now.saturating_since(SimTime::ZERO) - self.horizon
        } else {
            SimDuration::ZERO
        };
        let keep_from = SimTime::ZERO + keep_from;
        while let Some(&front) = q.front() {
            if front < keep_from {
                q.pop_front();
            } else {
                break;
            }
        }
    }

    fn evict_stalest(&mut self, _now: SimTime) {
        // Evict the flow with the oldest most-recent arrival.
        if let Some((&victim, _)) = self
            .flows
            .iter()
            .min_by_key(|(_, q)| q.back().copied().unwrap_or(SimTime::ZERO))
        {
            self.flows.remove(&victim);
        }
    }

    /// Number of arrivals of `label` within `(end - window, end]`.
    #[must_use]
    pub fn count_in(&self, label: FlowLabel, end: SimTime, window: SimDuration) -> usize {
        let Some(q) = self.flows.get(&label) else {
            return 0;
        };
        let since_zero = end.saturating_since(SimTime::ZERO);
        let lo = SimTime::ZERO + (since_zero - since_zero.min(window));
        q.iter().filter(|&&t| t > lo && t <= end).count()
    }

    /// Arrival rate (packets/s) of `label` over `[end - window, end]`.
    ///
    /// Returns 0 when the window is zero-length.
    #[must_use]
    pub fn rate_in(&self, label: FlowLabel, end: SimTime, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.count_in(label, end, window) as f64 / window.as_secs_f64()
    }

    /// Number of flows currently tracked.
    #[must_use]
    pub fn tracked_flows(&self) -> usize {
        self.flows.len()
    }

    /// Drops all state (table flush at pushback end).
    pub fn clear(&mut self) {
        self.flows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelMode;
    use mafic_netsim::{Addr, FlowKey};

    fn label(n: u16) -> FlowLabel {
        FlowLabel::from_key(
            FlowKey::new(Addr::new(1), Addr::new(2), n, 80),
            LabelMode::Hashed,
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn counts_within_window_only() {
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(10), 64);
        for ms in [100u64, 200, 300, 400, 500] {
            tr.record(label(1), t(ms));
        }
        // Window (300, 500]: arrivals at 400 and 500.
        assert_eq!(tr.count_in(label(1), t(500), SimDuration::from_millis(200)), 2);
        // Window (0, 500]: all five.
        assert_eq!(tr.count_in(label(1), t(500), SimDuration::from_millis(500)), 5);
        // Other labels are independent.
        assert_eq!(tr.count_in(label(2), t(500), SimDuration::from_millis(500)), 0);
    }

    #[test]
    fn rate_is_count_over_window() {
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(10), 64);
        for ms in (0..10).map(|i| 100 + i * 10) {
            tr.record(label(1), t(ms));
        }
        // 10 packets in (90, 190] ... window 100ms => 100 pps.
        let rate = tr.rate_in(label(1), t(190), SimDuration::from_millis(100));
        assert!((rate - 100.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn zero_window_rate_is_zero() {
        let tr = ArrivalTracker::new(SimDuration::from_secs(1), 4);
        assert_eq!(tr.rate_in(label(1), t(100), SimDuration::ZERO), 0.0);
    }

    #[test]
    fn horizon_prunes_old_arrivals() {
        let mut tr = ArrivalTracker::new(SimDuration::from_millis(100), 4);
        tr.record(label(1), t(0));
        tr.record(label(1), t(50));
        tr.record(label(1), t(500));
        // The t(0) and t(50) arrivals are beyond the 100ms horizon.
        assert_eq!(tr.count_in(label(1), t(500), SimDuration::from_millis(500)), 1);
    }

    #[test]
    fn capacity_evicts_stalest_flow() {
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(10), 2);
        tr.record(label(1), t(10));
        tr.record(label(2), t(20));
        tr.record(label(3), t(30)); // evicts label(1)
        assert_eq!(tr.tracked_flows(), 2);
        assert_eq!(tr.count_in(label(1), t(100), SimDuration::from_millis(100)), 0);
        assert_eq!(tr.count_in(label(2), t(100), SimDuration::from_millis(100)), 1);
    }

    #[test]
    fn clear_resets() {
        let mut tr = ArrivalTracker::new(SimDuration::from_secs(1), 4);
        tr.record(label(1), t(10));
        tr.clear();
        assert_eq!(tr.tracked_flows(), 0);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let _ = ArrivalTracker::new(SimDuration::ZERO, 4);
    }
}
