//! The event scheduler.
//!
//! A 4-ary min-heap of `(time, sequence)` keyed events. The monotonically
//! increasing sequence number breaks ties deterministically: two events
//! scheduled for the same instant fire in the order they were scheduled,
//! which keeps whole-simulation replays bit-identical for a given seed.

use crate::arena::PacketRef;
use crate::ids::{Addr, AgentId, LinkId, NodeId};
use crate::time::SimTime;
use mafic_obs::{SnapError, SnapReader, SnapWriter};

/// Control-plane message delivered to a node's filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterControl {
    /// Activate defense dropping for traffic destined to `victim`.
    PushbackStart {
        /// Address of the victim host under attack.
        victim: crate::ids::Addr,
    },
    /// Deactivate defense dropping and flush all tables.
    PushbackStop,
}

/// What happens when an event fires.
///
/// Packet payloads live in the simulator's packet arena; events carry
/// only 4-byte [`PacketRef`] handles, so heap entries stay small, `Copy`,
/// and sift operations never memcpy packet bodies.
#[derive(Debug, Clone, Copy)]
pub enum EventKind {
    /// A locally injected packet arrives at `node` (link deliveries ride
    /// [`EventKind::LinkDeliver`], so no arriving-link field is needed).
    DeliverToNode {
        /// Receiving node.
        node: NodeId,
        /// Arena handle of the packet.
        packet: PacketRef,
    },
    /// Drain the link's delivery FIFO: every queued packet whose
    /// propagation completes at or before this instant arrives at the
    /// link's far end in one pass.
    LinkDeliver {
        /// The delivering link.
        link: LinkId,
    },
    /// Wake an agent's timer.
    AgentWake {
        /// The agent to wake.
        agent: AgentId,
        /// Caller-chosen token identifying which timer fired.
        token: u64,
    },
    /// Start an agent (first activation).
    AgentStart {
        /// The agent to start.
        agent: AgentId,
    },
    /// Wake a packet filter's timer.
    FilterTimer {
        /// Node hosting the filter.
        node: NodeId,
        /// Index of the filter within the node's filter chain. Narrowed
        /// to `u32` so the variant — and with it the whole enum — stays
        /// within 16 payload bytes.
        filter_index: u32,
        /// Caller-chosen token.
        token: u64,
    },
    /// Deliver a control-plane message to every filter on `node`.
    Control {
        /// Receiving node.
        node: NodeId,
        /// The message.
        msg: FilterControl,
    },
}

/// The heap's branching factor. Four children per node halves the tree
/// depth of a binary heap: sift-down — the hot operation, every pop pays
/// one — does half the entry moves for the same number of comparisons,
/// and the child scan reads one contiguous cache line.
const HEAP_ARITY: usize = 4;

/// Deterministic event queue ordered by `(time, insertion sequence)`.
///
/// A hand-rolled 4-ary min-heap in SoA layout: packed keys and event
/// payloads live in two parallel arrays. The key packs `(time, seq)`
/// into one `u128` (`time` in the high 64 bits), so the lexicographic
/// tie-break rule is a single integer comparison and the heap order is
/// a *total* order — any correct priority queue pops the exact same
/// sequence, which is what keeps replays bit-identical across
/// representation changes like this one.
///
/// The SoA split matters for the hot path: sift-down scans a node's
/// four children, and with keys packed contiguously that scan reads
/// exactly one 64-byte cache line instead of striding over interleaved
/// event payloads. Sifts move entries into a hole instead of swapping
/// (`EventKind` is `Copy`), and a freshly scheduled event — usually the
/// latest deadline in the queue — settles after one parent comparison.
#[derive(Debug, Default)]
pub(crate) struct Scheduler {
    keys: Vec<u128>,
    kinds: Vec<EventKind>,
    next_seq: u64,
}

#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

impl Scheduler {
    pub(crate) fn new() -> Self {
        Scheduler::default()
    }

    /// Schedules `kind` to fire at `at`.
    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let key = pack(at, self.next_seq);
        self.next_seq += 1;
        let mut hole = self.keys.len();
        self.keys.push(key);
        self.kinds.push(kind);
        while hole > 0 {
            let parent = (hole - 1) / HEAP_ARITY;
            if self.keys[parent] <= key {
                break;
            }
            self.keys[hole] = self.keys[parent];
            self.kinds[hole] = self.kinds[parent];
            hole = parent;
        }
        self.keys[hole] = key;
        self.kinds[hole] = kind;
    }

    /// Removes and returns the earliest event, if any.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let &key = self.keys.first()?;
        let kind = self.kinds[0];
        let last_key = self.keys.pop().expect("heap is non-empty");
        let last_kind = self.kinds.pop().expect("heap is non-empty");
        let len = self.keys.len();
        if len > 0 {
            // Bottom-up deletion (Wegener): walk the min-child path from
            // the root all the way to a leaf, moving each level's minimum
            // up into the hole — no per-level comparison against the
            // displaced entry, so the descent loop is branch-predictable.
            let mut hole = 0;
            loop {
                let first_child = hole * HEAP_ARITY + 1;
                if first_child >= len {
                    break;
                }
                let end = (first_child + HEAP_ARITY).min(len);
                let mut best = first_child;
                let mut best_key = self.keys[first_child];
                for child in first_child + 1..end {
                    let child_key = self.keys[child];
                    if child_key < best_key {
                        best = child;
                        best_key = child_key;
                    }
                }
                self.keys[hole] = best_key;
                self.kinds[hole] = self.kinds[best];
                hole = best;
            }
            // Then sift the displaced last entry up from that leaf hole.
            // It came from the bottom of the heap, so it almost always
            // belongs near the bottom and this loop exits immediately.
            while hole > 0 {
                let parent = (hole - 1) / HEAP_ARITY;
                if self.keys[parent] <= last_key {
                    break;
                }
                self.keys[hole] = self.keys[parent];
                self.kinds[hole] = self.kinds[parent];
                hole = parent;
            }
            self.keys[hole] = last_key;
            self.kinds[hole] = last_kind;
        }
        Some((unpack_time(key), kind))
    }

    /// The timestamp of the next event without removing it.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&key| unpack_time(key))
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub(crate) fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Folds the full heap state into `h` for the run ledger.
    ///
    /// Heap storage order is itself deterministic (identical schedule/
    /// pop sequences produce identical arrays), so hashing the raw SoA
    /// arrays in index order is both cheap and replay-stable.
    pub(crate) fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u64(self.next_seq);
        h.write_usize(self.keys.len());
        for &key in &self.keys {
            h.write_u128(key);
        }
        for kind in &self.kinds {
            hash_event_kind(kind, h);
        }
    }

    /// Serializes the heap for a checkpoint: raw SoA arrays in storage
    /// order, which restore verbatim (heap order is a property of the
    /// arrays, not of the process that produced them).
    pub(crate) fn snap_save(&self, w: &mut SnapWriter) {
        w.write_u64(self.next_seq);
        w.write_usize(self.keys.len());
        for &key in &self.keys {
            w.write_u128(key);
        }
        for kind in &self.kinds {
            snap_event_kind(kind, w);
        }
    }

    /// Overlays checkpointed heap state.
    pub(crate) fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_seq = r.read_u64()?;
        let n = r.read_usize()?;
        let mut keys = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            keys.push(r.read_u128()?);
        }
        let mut kinds = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            kinds.push(read_event_kind(r)?);
        }
        self.keys = keys;
        self.kinds = kinds;
        Ok(())
    }
}

/// Serializes one event payload for a checkpoint; tags mirror
/// [`hash_event_kind`].
pub(crate) fn snap_event_kind(kind: &EventKind, w: &mut SnapWriter) {
    match kind {
        EventKind::DeliverToNode { node, packet } => {
            w.write_u8(0);
            w.write_u32(node.0);
            w.write_u32(packet.0);
        }
        EventKind::LinkDeliver { link } => {
            w.write_u8(1);
            w.write_u32(link.0);
        }
        EventKind::AgentWake { agent, token } => {
            w.write_u8(2);
            w.write_u32(agent.0);
            w.write_u64(*token);
        }
        EventKind::AgentStart { agent } => {
            w.write_u8(3);
            w.write_u32(agent.0);
        }
        EventKind::FilterTimer {
            node,
            filter_index,
            token,
        } => {
            w.write_u8(4);
            w.write_u32(node.0);
            w.write_u32(*filter_index);
            w.write_u64(*token);
        }
        EventKind::Control { node, msg } => {
            w.write_u8(5);
            w.write_u32(node.0);
            match msg {
                FilterControl::PushbackStart { victim } => {
                    w.write_u8(0);
                    w.write_u32(victim.as_u32());
                }
                FilterControl::PushbackStop => w.write_u8(1),
            }
        }
    }
}

/// Reads one event payload written by [`snap_event_kind`].
pub(crate) fn read_event_kind(r: &mut SnapReader<'_>) -> Result<EventKind, SnapError> {
    Ok(match r.read_u8()? {
        0 => EventKind::DeliverToNode {
            node: NodeId(r.read_u32()?),
            packet: PacketRef(r.read_u32()?),
        },
        1 => EventKind::LinkDeliver {
            link: LinkId(r.read_u32()?),
        },
        2 => EventKind::AgentWake {
            agent: AgentId(r.read_u32()?),
            token: r.read_u64()?,
        },
        3 => EventKind::AgentStart {
            agent: AgentId(r.read_u32()?),
        },
        4 => EventKind::FilterTimer {
            node: NodeId(r.read_u32()?),
            filter_index: r.read_u32()?,
            token: r.read_u64()?,
        },
        5 => EventKind::Control {
            node: NodeId(r.read_u32()?),
            msg: match r.read_u8()? {
                0 => FilterControl::PushbackStart {
                    victim: Addr::new(r.read_u32()?),
                },
                1 => FilterControl::PushbackStop,
                tag => {
                    return Err(SnapError::Malformed(format!("filter-control tag {tag}")));
                }
            },
        },
        tag => return Err(SnapError::Malformed(format!("event-kind tag {tag}"))),
    })
}

/// Encodes one event payload for hashing: a discriminant tag byte
/// followed by the variant's fields.
pub(crate) fn hash_event_kind(kind: &EventKind, h: &mut mafic_obs::Fnv64) {
    match kind {
        EventKind::DeliverToNode { node, packet } => {
            h.write_u8(0);
            h.write_u32(node.0);
            h.write_u32(packet.0);
        }
        EventKind::LinkDeliver { link } => {
            h.write_u8(1);
            h.write_u32(link.0);
        }
        EventKind::AgentWake { agent, token } => {
            h.write_u8(2);
            h.write_u32(agent.0);
            h.write_u64(*token);
        }
        EventKind::AgentStart { agent } => {
            h.write_u8(3);
            h.write_u32(agent.0);
        }
        EventKind::FilterTimer {
            node,
            filter_index,
            token,
        } => {
            h.write_u8(4);
            h.write_u32(node.0);
            h.write_u32(*filter_index);
            h.write_u64(*token);
        }
        EventKind::Control { node, msg } => {
            h.write_u8(5);
            h.write_u32(node.0);
            match msg {
                FilterControl::PushbackStart { victim } => {
                    h.write_u8(0);
                    h.write_u32(victim.as_u32());
                }
                FilterControl::PushbackStop => h.write_u8(1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn wake(agent: u32, token: u64) -> EventKind {
        EventKind::AgentWake {
            agent: AgentId(agent),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        let t1 = SimTime::ZERO + SimDuration::from_millis(10);
        let t2 = SimTime::ZERO + SimDuration::from_millis(5);
        s.schedule(t1, wake(0, 1));
        s.schedule(t2, wake(0, 2));
        assert_eq!(s.pop().unwrap().0, t2);
        assert_eq!(s.pop().unwrap().0, t1);
        assert!(s.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for token in 0..100 {
            s.schedule(t, wake(0, token));
        }
        for expect in 0..100 {
            match s.pop().unwrap().1 {
                EventKind::AgentWake { token, .. } => assert_eq!(token, expect),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_round_trips_heap_state() {
        let mut s = Scheduler::new();
        s.schedule(
            SimTime::from_nanos(50),
            EventKind::DeliverToNode {
                node: NodeId(1),
                packet: PacketRef(7),
            },
        );
        s.schedule(
            SimTime::from_nanos(10),
            EventKind::LinkDeliver { link: LinkId(2) },
        );
        s.schedule(
            SimTime::from_nanos(10),
            EventKind::Control {
                node: NodeId(3),
                msg: FilterControl::PushbackStart {
                    victim: Addr::new(9),
                },
            },
        );
        let _ = s.pop();
        let mut w = SnapWriter::new();
        s.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Scheduler::new();
        let mut r = SnapReader::new(&bytes);
        restored.snap_restore(&mut r).unwrap();
        assert!(r.is_empty());
        let mut ha = mafic_obs::Fnv64::new();
        let mut hb = mafic_obs::Fnv64::new();
        s.hash_state(&mut ha);
        restored.hash_state(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        // The restored heap continues popping in the same total order.
        assert_eq!(s.pop().unwrap().0, restored.pop().unwrap().0);
    }

    #[test]
    fn counters_track_activity() {
        let mut s = Scheduler::new();
        assert_eq!(s.len(), 0);
        s.schedule(SimTime::ZERO, wake(0, 0));
        s.schedule(SimTime::ZERO, wake(0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.scheduled_total(), 2);
        assert_eq!(s.peek_time(), Some(SimTime::ZERO));
        let _ = s.pop();
        assert_eq!(s.len(), 1);
        assert_eq!(s.scheduled_total(), 2);
    }
}
