//! Runs the DESIGN.md ablations: policy comparison, timer multiplier,
//! label mode, sketch precision.

use mafic_experiments::{ablations, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    let results = [
        ablations::policy_comparison(&cfg),
        ablations::timer_multiplier(&cfg),
        Ok(ablations::label_mode()),
        Ok(ablations::sketch_precision()),
    ];
    for result in results {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
