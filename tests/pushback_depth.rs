//! Acceptance tests for the inter-domain cascaded pushback: on the
//! default multi-domain flood (the Fig. 8 scenario), the victim's
//! residual attack rate must be monotonically non-increasing as
//! `pushback_depth` grows from 0 (victim-domain-only, today's
//! single-domain behaviour) through the transit tier into the source
//! stubs, with collateral damage reported at every depth — and the
//! whole sweep must be deterministic at any engine worker count.

use mafic_suite::experiments::engine::run_specs;
use mafic_suite::experiments::figures::{depth_axis, fig8_spec};
use mafic_suite::workload::{run_spec, RunOutcome};

fn run_depth(depth: u32) -> RunOutcome {
    run_spec(fig8_spec(depth)).expect("fig8 scenario runs")
}

#[test]
fn residual_attack_rate_is_monotone_non_increasing_in_depth() {
    let mut last = f64::INFINITY;
    for &depth in &[0u32, 1, 2, 3] {
        let outcome = run_depth(depth);
        let residual = outcome.report.residual_attack_bps;
        assert!(
            residual <= last + 1e-6,
            "residual rose from {last:.1} to {residual:.1} B/s at depth {depth}"
        );
        // Collateral damage is reported at every depth.
        assert!(
            outcome.report.legit_data_sent > 0,
            "collateral denominator empty at depth {depth}"
        );
        assert!(outcome.report.collateral_pct.is_finite());
        last = residual;
    }
}

#[test]
fn depth_zero_matches_the_uncascaded_defense() {
    let outcome = run_depth(0);
    assert!(outcome.defense_engaged());
    assert_eq!(outcome.max_pushback_depth, 0);
    assert!(outcome.escalations.is_empty());
}

#[test]
fn cascade_reaches_the_budgeted_depth_under_a_sustained_flood() {
    let outcome = run_depth(3);
    assert!(outcome.defense_engaged());
    assert_eq!(
        outcome.max_pushback_depth, 3,
        "the default flood must drive the cascade into the source stubs: {:?}",
        outcome.escalations
    );
    // Escalations activate outward: levels never skip.
    let mut seen_levels: Vec<usize> = outcome.escalations.iter().map(|&(_, d)| d).collect();
    seen_levels.sort_unstable();
    seen_levels.dedup();
    assert!(seen_levels.len() >= 3, "transit tier + stubs all activate");
}

#[test]
fn depth_axis_spans_victim_to_source_stubs() {
    assert_eq!(depth_axis().first(), Some(&0.0));
    assert_eq!(depth_axis().last(), Some(&3.0));
}

#[test]
fn fig8_grid_is_identical_at_one_and_four_workers() {
    let specs: Vec<_> = depth_axis().iter().map(|&d| fig8_spec(d as u32)).collect();
    let serial = run_specs(specs.clone(), 1).expect("serial grid");
    let parallel = run_specs(specs, 4).expect("parallel grid");
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.report, p.report);
        assert_eq!(s.triggered_at, p.triggered_at);
        assert_eq!(s.escalations, p.escalations);
        assert_eq!(s.max_pushback_depth, p.max_pushback_depth);
        assert_eq!(s.packets_sent, p.packets_sent);
    }
}
