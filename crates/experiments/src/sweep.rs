//! Parameter sweeps with trial averaging, executed on the parallel
//! engine: a sweep flattens its `series × x × trial` grid into one flat
//! job list, fans it across the worker pool, and reassembles points in
//! grid order — so output is byte-identical at any worker count.

use crate::engine::{run_jobs, EngineConfig};
use mafic_metrics::MetricsReport;
use mafic_netsim::SimTime;
use mafic_workload::{restore_branch, resume_scenario, run_spec, ScenarioSpec};

/// Derives the spec for trial `t` of `base` (per-trial seed decorrelated
/// with a SplitMix64 increment).
fn trial_spec(base: &ScenarioSpec, t: u64) -> ScenarioSpec {
    ScenarioSpec {
        seed: base
            .seed
            .wrapping_add(t.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ..base.clone()
    }
}

/// Aggregates several reports as if their runs were one pooled run:
/// counts are summed and every percent metric is **recomputed from the
/// summed counts** (ratio of sums). Averaging the per-trial percentages
/// instead (mean of ratios) silently overweights small trials when trial
/// sizes differ, and leaves the printed counts inconsistent with the
/// percentages beside them. The victim rates are per-run intensities
/// with no pooled denominator, so they stay plain means, and β is
/// re-derived from those mean rates.
///
/// # Panics
///
/// Panics if `reports` is empty.
#[must_use]
pub fn average_reports(reports: &[MetricsReport]) -> MetricsReport {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let n = reports.len() as f64;
    let mut out = MetricsReport::default();
    for r in reports {
        out.victim_rate_before += r.victim_rate_before;
        out.victim_rate_after += r.victim_rate_after;
        out.residual_attack_bps += r.residual_attack_bps;
        out.legit_goodput_bps += r.legit_goodput_bps;
        out.legit_data_sent += r.legit_data_sent;
        out.legit_data_lost += r.legit_data_lost;
        out.attack_seen += r.attack_seen;
        out.attack_dropped += r.attack_dropped;
        out.legit_seen += r.legit_seen;
        out.legit_dropped += r.legit_dropped;
        out.legit_dropped_as_malicious += r.legit_dropped_as_malicious;
        out.flows.legit_flows += r.flows.legit_flows;
        out.flows.attack_flows += r.flows.attack_flows;
        out.flows.legit_condemned += r.flows.legit_condemned;
        out.flows.attack_condemned += r.flows.attack_condemned;
        out.flows.legit_cleared += r.flows.legit_cleared;
        out.flows.attack_cleared += r.flows.attack_cleared;
        // Peak occupancy has no pooled denominator: the worst trial is
        // the honest summary. The scratch-recycle tallies are plain
        // event counts, so they pool by summing like the packet counts.
        out.peak_arena_packets = out.peak_arena_packets.max(r.peak_arena_packets);
        out.scratch_inbox_drains += r.scratch_inbox_drains;
        out.scratch_sketch_recycles += r.scratch_sketch_recycles;
        out.victim_source_cardinality += r.victim_source_cardinality;
    }
    out.victim_rate_before /= n;
    out.victim_rate_after /= n;
    out.residual_attack_bps /= n;
    out.legit_goodput_bps /= n;
    out.victim_source_cardinality /= n;
    // One shared definition of the five formulas (mafic-metrics owns it).
    out.recompute_derived();
    out
}

/// Runs every spec on the engine keeping only the reports — grid runs
/// discard the (much larger) time series immediately, so peak memory
/// stays proportional to the grid count, not to full [`RunOutcome`]s.
fn run_reports(specs: Vec<ScenarioSpec>, jobs: usize) -> Result<Vec<MetricsReport>, String> {
    run_jobs(specs, jobs, |spec| {
        run_spec(spec).map(|o| o.report).map_err(|e| e.to_string())
    })
}

/// Runs `base` once per trial seed (fanned across the engine's workers)
/// and aggregates the reports.
///
/// # Errors
///
/// Propagates the first build/run error by trial index.
pub fn run_averaged(base: &ScenarioSpec, cfg: &EngineConfig) -> Result<MetricsReport, String> {
    let specs = (0..cfg.trials).map(|t| trial_spec(base, t)).collect();
    Ok(average_reports(&run_reports(specs, cfg.jobs)?))
}

/// One point of a sweep: the x value and its averaged report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept x value.
    pub x: f64,
    /// The trial-averaged report at this point.
    pub report: MetricsReport,
}

/// One swept series: a legend label plus its points.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeries {
    /// Legend label.
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// Extracts `(x, metric)` pairs via an accessor.
    #[must_use]
    pub fn extract(&self, metric: fn(&MetricsReport) -> f64) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.x, metric(&p.report)))
            .collect()
    }
}

/// Runs a two-dimensional sweep: for each `(series value, x value)` pair
/// `make_spec` produces the scenario, which is run `cfg.trials` times.
/// The whole `series × x × trial` grid is one flat job list on the
/// engine, so every run — not just runs within one point — proceeds in
/// parallel; reassembly follows grid order.
///
/// # Errors
///
/// Propagates the first build/run error by grid index.
pub fn sweep<S: Clone + std::fmt::Debug>(
    series_values: &[(String, S)],
    x_values: &[f64],
    cfg: &EngineConfig,
    make_spec: impl Fn(&S, f64) -> ScenarioSpec,
) -> Result<Vec<SweepSeries>, String> {
    let trials = cfg.trials as usize;
    let mut specs = Vec::with_capacity(series_values.len() * x_values.len() * trials);
    for (_, sv) in series_values {
        for &x in x_values {
            let base = make_spec(sv, x);
            for t in 0..cfg.trials {
                specs.push(trial_spec(&base, t));
            }
        }
    }
    let mut reports = run_reports(specs, cfg.jobs)?.into_iter();
    let mut out = Vec::with_capacity(series_values.len());
    for (label, _) in series_values {
        let mut points = Vec::with_capacity(x_values.len());
        for &x in x_values {
            let point_reports: Vec<MetricsReport> = reports.by_ref().take(trials).collect();
            points.push(SweepPoint {
                x,
                report: average_reports(&point_reports),
            });
        }
        out.push(SweepSeries {
            label: label.clone(),
            points,
        });
    }
    Ok(out)
}

/// Runs the same grid as [`sweep`], warm-started: within each
/// `(series, trial)` group only the **first x cell** runs from time
/// zero — capturing a verified checkpoint at `branch_at` on the way
/// through — and every other cell restores that checkpoint
/// ([`restore_branch`]) and resumes, skipping the shared prefix
/// entirely. Points reassemble in the exact grid order of [`sweep`],
/// so output is byte-identical to the cold sweep at any worker count.
///
/// Only sweeps whose x knob is inert before `branch_at` are eligible
/// (for MAFIC figures: knobs that first matter when the defense
/// triggers, branched before the attack begins). Eligibility is
/// *checked, not assumed*: restore re-verifies every component's state
/// digest against the branch cell's freshly built scenario, so a knob
/// that does perturb the prefix fails loudly with a named component
/// instead of silently producing wrong data.
///
/// # Errors
///
/// Propagates the first build/run/restore error by grid index (donor
/// cells first, then branch cells).
pub fn sweep_warm<S: Clone + std::fmt::Debug>(
    series_values: &[(String, S)],
    x_values: &[f64],
    cfg: &EngineConfig,
    branch_at: SimTime,
    make_spec: impl Fn(&S, f64) -> ScenarioSpec,
) -> Result<Vec<SweepSeries>, String> {
    let trials = cfg.trials as usize;
    let Some((&x0, rest_xs)) = x_values.split_first() else {
        return Ok(series_values
            .iter()
            .map(|(label, _)| SweepSeries {
                label: label.clone(),
                points: Vec::new(),
            })
            .collect());
    };
    // Phase 1 — donors: the first x cell of every (series, trial) runs
    // cold with the checkpoint capture armed.
    let mut donor_specs = Vec::with_capacity(series_values.len() * trials);
    for (_, sv) in series_values {
        let base = make_spec(sv, x0);
        for t in 0..cfg.trials {
            donor_specs.push(ScenarioSpec {
                checkpoint_at: Some(branch_at),
                ..trial_spec(&base, t)
            });
        }
    }
    let donors = run_jobs(donor_specs, cfg.jobs, |spec| {
        let outcome = run_spec(spec).map_err(|e| e.to_string())?;
        let bytes = outcome
            .checkpoint
            .ok_or_else(|| "donor run captured no checkpoint".to_string())?;
        Ok((outcome.report, bytes))
    })?;
    // Phase 2 — branches: every remaining cell overlays its trial's
    // donor checkpoint and resumes mid-run. Cells within one trial
    // share the donor because `trial_spec` gives every cell of a trial
    // the same decorrelated seed — which restore also enforces.
    let mut branch_inputs = Vec::with_capacity(series_values.len() * rest_xs.len() * trials);
    for (s_idx, (_, sv)) in series_values.iter().enumerate() {
        for &x in rest_xs {
            let base = make_spec(sv, x);
            for t in 0..cfg.trials {
                let spec = ScenarioSpec {
                    checkpoint_at: Some(branch_at),
                    ..trial_spec(&base, t)
                };
                branch_inputs.push((s_idx * trials + t as usize, spec));
            }
        }
    }
    let branch_reports = run_jobs(branch_inputs, cfg.jobs, |(donor_idx, spec)| {
        let (mut scenario, state) =
            restore_branch(&spec, &donors[donor_idx].1).map_err(|e| e.to_string())?;
        resume_scenario(&mut scenario, state)
            .map(|o| o.report)
            .map_err(|e| e.to_string())
    })?;
    // Reassemble in [`sweep`] grid order: donor reports fill x₀, branch
    // reports fill the remaining columns.
    let mut branches = branch_reports.into_iter();
    let mut out = Vec::with_capacity(series_values.len());
    for (s_idx, (label, _)) in series_values.iter().enumerate() {
        let mut points = Vec::with_capacity(x_values.len());
        let donor_reports: Vec<MetricsReport> =
            (0..trials).map(|t| donors[s_idx * trials + t].0).collect();
        points.push(SweepPoint {
            x: x0,
            report: average_reports(&donor_reports),
        });
        for &x in rest_xs {
            let point_reports: Vec<MetricsReport> = branches.by_ref().take(trials).collect();
            points.push(SweepPoint {
                x,
                report: average_reports(&point_reports),
            });
        }
        out.push(SweepSeries {
            label: label.clone(),
            points,
        });
    }
    Ok(out)
}

/// Builds a [`crate::FigureData`] from sweep output and a metric accessor.
#[must_use]
pub fn figure_from_sweep(
    id: &str,
    title: &str,
    x_label: &str,
    y_label: &str,
    sweeps: &[SweepSeries],
    metric: fn(&MetricsReport) -> f64,
) -> crate::FigureData {
    let mut fig = crate::FigureData::new(id, title, x_label, y_label);
    for s in sweeps {
        fig.push_series(s.label.clone(), s.extract(metric));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_recomputes_percentages_from_summed_counts() {
        let a = MetricsReport {
            accuracy_pct: 90.0,
            attack_seen: 100,
            attack_dropped: 90,
            ..MetricsReport::default()
        };
        let b = MetricsReport {
            accuracy_pct: 100.0,
            attack_seen: 50,
            attack_dropped: 50,
            ..MetricsReport::default()
        };
        let avg = average_reports(&[a, b]);
        // Ratio of sums: 140/150, not the mean of ratios (95%).
        assert!((avg.accuracy_pct - 140.0 / 150.0 * 100.0).abs() < 1e-9);
        assert!((avg.false_negative_pct - 10.0 / 150.0 * 100.0).abs() < 1e-9);
        assert_eq!(avg.attack_seen, 150);
        assert_eq!(avg.attack_dropped, 140);
    }

    #[test]
    fn averaged_percentages_stay_consistent_with_counts() {
        let a = MetricsReport {
            attack_seen: 1000,
            attack_dropped: 900,
            legit_seen: 1000,
            legit_dropped: 120,
            legit_dropped_as_malicious: 20,
            ..MetricsReport::default()
        };
        let b = MetricsReport {
            attack_seen: 10,
            attack_dropped: 1,
            legit_seen: 10,
            legit_dropped: 10,
            legit_dropped_as_malicious: 10,
            ..MetricsReport::default()
        };
        let avg = average_reports(&[a, b]);
        let expect_acc = avg.attack_dropped as f64 / avg.attack_seen as f64 * 100.0;
        let expect_lr = avg.legit_dropped as f64 / avg.legit_seen as f64 * 100.0;
        let expect_fpr = avg.legit_dropped_as_malicious as f64
            / (avg.attack_seen + avg.legit_seen) as f64
            * 100.0;
        assert!((avg.accuracy_pct - expect_acc).abs() < 1e-9);
        assert!((avg.legit_drop_pct - expect_lr).abs() < 1e-9);
        assert!((avg.false_positive_pct - expect_fpr).abs() < 1e-9);
    }

    #[test]
    fn victim_rates_average_and_beta_follows() {
        let a = MetricsReport {
            victim_rate_before: 100.0,
            victim_rate_after: 40.0,
            ..MetricsReport::default()
        };
        let b = MetricsReport {
            victim_rate_before: 200.0,
            victim_rate_after: 20.0,
            ..MetricsReport::default()
        };
        let avg = average_reports(&[a, b]);
        assert!((avg.victim_rate_before - 150.0).abs() < 1e-9);
        assert!((avg.victim_rate_after - 30.0).abs() < 1e-9);
        assert!((avg.traffic_reduction_pct - 80.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot average zero reports")]
    fn empty_average_rejected() {
        let _ = average_reports(&[]);
    }

    #[test]
    fn warm_sweep_matches_cold_sweep() {
        // The depth knob is inert until the defense triggers, so
        // branching at the attack instant must reproduce the cold grid
        // byte-for-byte — donors, branches, and trial averaging alike.
        let series = vec![("chain".to_string(), ())];
        let xs = vec![0.0, 1.0];
        let cfg = EngineConfig { jobs: 2, trials: 2 };
        let make = |_: &(), depth: f64| ScenarioSpec {
            total_flows: 12,
            n_routers: 6,
            domains: 3,
            transit_topology: mafic_topology::TransitTopology::Chain { depth: 1 },
            pushback_depth: depth as u32,
            attack_start: SimTime::from_secs_f64(0.8),
            end: SimTime::from_secs_f64(3.0),
            ..ScenarioSpec::default()
        };
        let cold = sweep(&series, &xs, &cfg, make).unwrap();
        let warm = sweep_warm(&series, &xs, &cfg, SimTime::from_secs_f64(0.8), make).unwrap();
        assert_eq!(cold, warm);
    }

    #[test]
    fn warm_sweep_with_empty_axis_yields_empty_series() {
        let series = vec![("s".to_string(), ())];
        let cfg = EngineConfig { jobs: 1, trials: 1 };
        let warm = sweep_warm(&series, &[], &cfg, SimTime::ZERO, |(), _| {
            ScenarioSpec::default()
        })
        .unwrap();
        assert_eq!(warm.len(), 1);
        assert!(warm[0].points.is_empty());
    }

    #[test]
    fn sweep_runs_tiny_grid() {
        let series = vec![("Pd=90%".to_string(), 0.9f64)];
        let xs = vec![8.0];
        let cfg = EngineConfig { jobs: 2, trials: 1 };
        let sweeps = sweep(&series, &xs, &cfg, |&pd, x| ScenarioSpec {
            total_flows: x as usize,
            n_routers: 5,
            drop_probability: pd,
            end: mafic_netsim::SimTime::from_secs_f64(2.5),
            ..ScenarioSpec::default()
        })
        .unwrap();
        assert_eq!(sweeps.len(), 1);
        assert_eq!(sweeps[0].points.len(), 1);
        let fig = figure_from_sweep("T", "t", "x", "y", &sweeps, |r| r.accuracy_pct);
        assert_eq!(fig.series.len(), 1);
    }
}
